//! `xpath-lint`: a hand-rolled, token-level scanner enforcing the
//! workspace's concurrency and safety discipline.  No `syn`, no proc-macro
//! machinery — a small Rust lexer (comments, strings, raw strings,
//! char-vs-lifetime) plus token-pattern rules:
//!
//! * **unsafe-safety** — every `unsafe` keyword carries a `// SAFETY:`
//!   comment on or immediately above its line (all crates).
//! * **lock-unwrap** — no `.unwrap()`/`.expect(...)` whose receiver is a
//!   lock or I/O call (`lock`, `join`, `read_line`, `write_all`, ...) in
//!   non-test code of the serving crates (`crates/corpus`, `crates/wire`).
//!   Poison and I/O failure must be handled by policy, not by killing the
//!   worker.
//! * **raw-spawn** — no `std::thread::spawn` in non-test code outside the
//!   sanctioned modules (the bench daemon harness); servers use scoped
//!   threads through `xpath_sync::thread::scope` so nothing outlives its
//!   resources.
//! * **wire-read** — no unbounded read methods (`.read_line`,
//!   `.read_to_end`, `.read_until`, `.read_to_string`) in non-test
//!   `crates/corpus` code: wire input goes through `xpath_wire`'s
//!   length-capped readers.
//! * **std-sync-import** — crates ported to the `xpath_sync` facade
//!   (`crates/corpus`, `crates/pplbin`) must not name `std::sync` lock
//!   types (`Mutex`, `Condvar`, `RwLock`, guards) in non-test code;
//!   `Arc`, atomics, and `OnceLock` stay on `std`.
//!
//! Escapes go in the committed allowlist file `lint.allow` (one
//! `rule path` pair per line) — kept empty for `crates/corpus` and
//! `crates/wire` by acceptance criterion.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `unsafe-safety`).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Modules allowed to call `std::thread::spawn` in non-test code: the bench
/// daemon harness, which intentionally detaches server threads it later
/// shuts down over the wire.
const SANCTIONED_SPAWN_MODULES: &[&str] = &["crates/bench/src/regress.rs"];

/// Crates whose non-test code must route locking through `xpath_sync`.
const FACADE_PORTED_PREFIXES: &[&str] =
    &["crates/corpus/src/", "crates/incr/src/", "crates/pplbin/src/"];

/// Crates whose request paths must not `.unwrap()`/`.expect()` lock or I/O
/// results.
const NO_LOCK_UNWRAP_PREFIXES: &[&str] =
    &["crates/corpus/src/", "crates/incr/src/", "crates/wire/src/"];

/// Where the wire-read rule applies (the daemon/router request paths).
const BOUNDED_READ_PREFIXES: &[&str] = &["crates/corpus/src/"];

/// Receiver method names whose `Result` must not be `unwrap()`ed in serving
/// code: lock acquisition, thread joining, and the I/O calls on request
/// paths.
const RISKY_RECEIVERS: &[&str] = &[
    "lock",
    "join",
    "recv",
    "send",
    "accept",
    "read",
    "write",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_until",
    "write_all",
    "flush",
];

/// `std::sync` identifiers banned in facade-ported crates.
const BANNED_SYNC_IDENTS: &[&str] = &[
    "Mutex",
    "MutexGuard",
    "Condvar",
    "RwLock",
    "RwLockReadGuard",
    "RwLockWriteGuard",
];

/// Unbounded read methods (the wire-read rule).
const UNBOUNDED_READS: &[&str] = &["read_line", "read_to_end", "read_until", "read_to_string"];

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokKind {
    Ident,
    Punct(char),
    Literal,
}

#[derive(Debug, Clone)]
struct Tok {
    kind: TokKind,
    /// Identifier text (empty for puncts/literals).
    text: String,
    line: usize,
}

/// Token stream plus the comment lines (needed for `// SAFETY:` checks).
struct Lexed {
    toks: Vec<Tok>,
    /// (line, comment text) for every `//` and `/* */` comment.
    comments: Vec<(usize, String)>,
}

fn lex(source: &str) -> Lexed {
    let bytes: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = bytes.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start = i;
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            comments.push((line, bytes[start..i].iter().collect()));
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 0i32;
            while i < n {
                if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            comments.push((start_line, bytes[start..i.min(n)].iter().collect()));
            continue;
        }
        // Raw (and raw-byte) strings: r"..." / r#"..."# / br#"..."#.
        if (c == 'r' || c == 'b') && {
            let mut j = i;
            if bytes[j] == 'b' && j + 1 < n && bytes[j + 1] == 'r' {
                j += 1;
            }
            bytes[j] == 'r' && {
                let mut k = j + 1;
                while k < n && bytes[k] == '#' {
                    k += 1;
                }
                k < n && bytes[k] == '"'
            }
        } {
            let tok_line = line;
            if bytes[i] == 'b' {
                i += 1;
            }
            i += 1; // past 'r'
            let mut hashes = 0usize;
            while i < n && bytes[i] == '#' {
                hashes += 1;
                i += 1;
            }
            i += 1; // past opening quote
            while i < n {
                if bytes[i] == '\n' {
                    line += 1;
                } else if bytes[i] == '"' {
                    let mut k = i + 1;
                    let mut seen = 0usize;
                    while k < n && bytes[k] == '#' && seen < hashes {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        i = k;
                        break;
                    }
                }
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Literal, text: String::new(), line: tok_line });
            continue;
        }
        // Plain (and byte) strings.
        if c == '"' || (c == 'b' && i + 1 < n && bytes[i + 1] == '"') {
            let tok_line = line;
            if c == 'b' {
                i += 1;
            }
            i += 1; // past opening quote
            while i < n {
                match bytes[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Tok { kind: TokKind::Literal, text: String::new(), line: tok_line });
            continue;
        }
        // Char literal vs lifetime: 'x' is a literal; 'x followed by
        // anything but a closing quote is a lifetime, lexed punct+ident.
        if c == '\'' {
            let is_char_lit = if i + 1 < n && bytes[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && bytes[i + 2] == '\'' && bytes[i + 1] != '\''
            };
            if is_char_lit {
                let tok_line = line;
                i += 1;
                while i < n {
                    match bytes[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok { kind: TokKind::Literal, text: String::new(), line: tok_line });
            } else {
                toks.push(Tok { kind: TokKind::Punct('\''), text: String::new(), line });
                i += 1;
            }
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_cont(bytes[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: bytes[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            // Numbers never matter to the rules; consume the alphanumeric
            // run so suffixes (1u64) don't turn into idents.
            while i < n && is_ident_cont(bytes[i]) {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Literal, text: String::new(), line });
            continue;
        }
        toks.push(Tok { kind: TokKind::Punct(c), text: String::new(), line });
        i += 1;
    }

    Lexed { toks, comments }
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Line ranges (inclusive) covered by `#[cfg(test)] mod ... { ... }`.
fn test_line_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = toks[i].kind == TokKind::Punct('#')
            && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('[')))
            && toks.get(i + 2).is_some_and(|t| t.text == "cfg")
            && matches!(toks.get(i + 3).map(|t| &t.kind), Some(TokKind::Punct('(')))
            && toks.get(i + 4).is_some_and(|t| t.text == "test")
            && matches!(toks.get(i + 5).map(|t| &t.kind), Some(TokKind::Punct(')')))
            && matches!(toks.get(i + 6).map(|t| &t.kind), Some(TokKind::Punct(']')));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Allow further attributes between the cfg and the item, then
        // require a `mod` item with a brace body.
        let mut j = i + 7;
        while j < toks.len() && toks[j].kind == TokKind::Punct('#') {
            let mut depth = 0i32;
            j += 1;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !(j < toks.len() && toks[j].text == "mod") {
            i += 1;
            continue;
        }
        // Find the opening brace of the mod body, then its match.
        while j < toks.len() && toks[j].kind != TokKind::Punct('{') {
            j += 1;
        }
        let start_line = toks[i].line;
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let end_line = toks.get(j).map_or(usize::MAX, |t| t.line);
        ranges.push((start_line, end_line));
        i = j + 1;
    }
    ranges
}

fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Scan one file's source.  `path` must be repo-relative with forward
/// slashes (e.g. `crates/corpus/src/lib.rs`) — rule scoping keys off it.
pub fn scan_source(path: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let toks = &lexed.toks;
    let tests = test_line_ranges(toks);
    let mut findings = Vec::new();

    rule_unsafe_safety(path, toks, &lexed.comments, &mut findings);
    if NO_LOCK_UNWRAP_PREFIXES.iter().any(|p| path.starts_with(p)) {
        rule_lock_unwrap(path, toks, &tests, &mut findings);
    }
    if !SANCTIONED_SPAWN_MODULES.contains(&path) {
        rule_raw_spawn(path, toks, &tests, &mut findings);
    }
    if BOUNDED_READ_PREFIXES.iter().any(|p| path.starts_with(p)) {
        rule_wire_read(path, toks, &tests, &mut findings);
    }
    if FACADE_PORTED_PREFIXES.iter().any(|p| path.starts_with(p)) {
        rule_std_sync(path, toks, &tests, &mut findings);
    }

    findings.sort_by_key(|f| f.line);
    findings
}

/// Every `unsafe` token needs `// SAFETY:` on its own line or within the
/// three lines above (the contiguous-comment convention).
fn rule_unsafe_safety(
    path: &str,
    toks: &[Tok],
    comments: &[(usize, String)],
    findings: &mut Vec<Finding>,
) {
    for t in toks {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let documented = comments
            .iter()
            .any(|(line, text)| *line + 3 >= t.line && *line <= t.line && text.contains("SAFETY:"));
        if !documented {
            findings.push(Finding {
                rule: "unsafe-safety",
                file: path.to_string(),
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment on or directly above it"
                    .to_string(),
            });
        }
    }
}

/// `.unwrap()` / `.expect(` whose receiver call is a lock/join/io method.
fn rule_lock_unwrap(
    path: &str,
    toks: &[Tok],
    tests: &[(usize, usize)],
    findings: &mut Vec<Finding>,
) {
    for i in 1..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "unwrap" && t.text != "expect") {
            continue;
        }
        if toks[i - 1].kind != TokKind::Punct('.') {
            continue;
        }
        if !matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('('))) {
            continue;
        }
        if in_ranges(tests, t.line) {
            continue;
        }
        let Some(recv) = receiver_method(toks, i - 1) else { continue };
        if RISKY_RECEIVERS.contains(&recv.as_str()) {
            findings.push(Finding {
                rule: "lock-unwrap",
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "`.{}()` on the result of `{recv}()` in a serving path — handle poison/I/O \
                     failure by policy instead of killing the worker",
                    t.text
                ),
            });
        }
    }
}

/// The method name whose call result is consumed at `dot` (the index of a
/// `.` token): matches `name ( ... ) .` and returns `name`.
fn receiver_method(toks: &[Tok], dot: usize) -> Option<String> {
    if dot == 0 || toks[dot - 1].kind != TokKind::Punct(')') {
        return None;
    }
    let mut depth = 0i32;
    let mut j = dot - 1;
    loop {
        match toks[j].kind {
            TokKind::Punct(')') => depth += 1,
            TokKind::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    if j == 0 {
        return None;
    }
    let name = &toks[j - 1];
    (name.kind == TokKind::Ident).then(|| name.text.clone())
}

/// `std::thread::spawn` (or bare `thread::spawn`) outside sanctioned
/// modules and tests.
fn rule_raw_spawn(
    path: &str,
    toks: &[Tok],
    tests: &[(usize, usize)],
    findings: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if toks[i].text != "spawn" || in_ranges(tests, toks[i].line) {
            continue;
        }
        // Need `thread :: spawn` directly before — scope.spawn and the
        // model scheduler's virtual spawn don't match.
        let is_thread_path = i >= 3
            && toks[i - 1].kind == TokKind::Punct(':')
            && toks[i - 2].kind == TokKind::Punct(':')
            && toks[i - 3].text == "thread";
        if !is_thread_path {
            continue;
        }
        // `xpath_sync::thread` and `model::thread` are the facade, not std.
        let qualifier = if i >= 6
            && toks[i - 4].kind == TokKind::Punct(':')
            && toks[i - 5].kind == TokKind::Punct(':')
        {
            Some(toks[i - 6].text.as_str())
        } else {
            None
        };
        if qualifier == Some("xpath_sync") || qualifier == Some("model") {
            continue;
        }
        findings.push(Finding {
            rule: "raw-spawn",
            file: path.to_string(),
            line: toks[i].line,
            message: "raw `std::thread::spawn` outside sanctioned modules — use \
                      `xpath_sync::thread::scope` so threads cannot outlive their resources"
                .to_string(),
        });
    }
}

/// Unbounded read methods on daemon request paths.
fn rule_wire_read(
    path: &str,
    toks: &[Tok],
    tests: &[(usize, usize)],
    findings: &mut Vec<Finding>,
) {
    for i in 1..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !UNBOUNDED_READS.contains(&t.text.as_str()) {
            continue;
        }
        // Method-call form only: `.read_line(` — path-qualified helpers like
        // `std::fs::read_to_string(path)` read local files, not the wire.
        if toks[i - 1].kind != TokKind::Punct('.') {
            continue;
        }
        if !matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('('))) {
            continue;
        }
        if in_ranges(tests, t.line) {
            continue;
        }
        findings.push(Finding {
            rule: "wire-read",
            file: path.to_string(),
            line: t.line,
            message: format!(
                "unbounded `.{}()` on a daemon request path — wire input must go through \
                 `xpath_wire`'s length-capped readers",
                t.text
            ),
        });
    }
}

/// `std::sync` lock types named in facade-ported crates.  Walks the path
/// segments (and `use`-tree braces) following each `std::sync` occurrence,
/// so `Arc<Mutex<..>>` with `Mutex` imported from `xpath_sync` is never a
/// false positive.
fn rule_std_sync(
    path: &str,
    toks: &[Tok],
    tests: &[(usize, usize)],
    findings: &mut Vec<Finding>,
) {
    let punct = |idx: usize, c: char| {
        matches!(toks.get(idx).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
    };
    let check = |tok: &Tok, findings: &mut Vec<Finding>| {
        if BANNED_SYNC_IDENTS.contains(&tok.text.as_str()) {
            findings.push(Finding {
                rule: "std-sync-import",
                file: path.to_string(),
                line: tok.line,
                message: format!(
                    "`std::sync::{}` in a crate ported to the `xpath_sync` facade — import it \
                     from `xpath_sync` instead",
                    tok.text
                ),
            });
        }
    };
    let mut i = 0usize;
    while i + 3 < toks.len() {
        if !(toks[i].text == "std" && punct(i + 1, ':') && punct(i + 2, ':') && toks[i + 3].text == "sync")
            || in_ranges(tests, toks[i].line)
        {
            i += 1;
            continue;
        }
        let mut j = i + 4;
        // Follow `:: segment` chains and a trailing `::{ ... }` use-tree.
        while punct(j, ':') && punct(j + 1, ':') {
            if let Some(tok) = toks.get(j + 2) {
                if tok.kind == TokKind::Ident {
                    check(tok, findings);
                    j += 3;
                    continue;
                }
            }
            if punct(j + 2, '{') {
                let mut depth = 0i32;
                let mut k = j + 2;
                while k < toks.len() {
                    match &toks[k].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokKind::Ident => check(&toks[k], findings),
                        _ => {}
                    }
                    k += 1;
                }
                j = k;
            }
            break;
        }
        i = j.max(i + 4);
    }
}

// ---------------------------------------------------------------------------
// Workspace walking and the allowlist
// ---------------------------------------------------------------------------

/// Parse the allowlist: one `rule path` pair per line; `#` comments and
/// blank lines ignored.
pub fn parse_allowlist(text: &str) -> Vec<(String, String)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (rule, path) = l.split_once(char::is_whitespace)?;
            Some((rule.to_string(), path.trim().to_string()))
        })
        .collect()
}

/// Drop findings covered by the allowlist.
pub fn filter_allowed(findings: Vec<Finding>, allow: &[(String, String)]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| !allow.iter().any(|(rule, path)| rule == f.rule && path == &f.file))
        .collect()
}

/// Every `.rs` file under the workspace's `crates/*/src` trees (library and
/// binary sources; `tests/` directories are integration tests and exempt).
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut stack = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            stack.push(src);
        }
    }
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scan the whole workspace rooted at `root`, applying `root/lint.allow`.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let allow = match fs::read_to_string(root.join("lint.allow")) {
        Ok(text) => parse_allowlist(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut findings = Vec::new();
    for path in workspace_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = fs::read_to_string(&path)?;
        findings.extend(scan_source(&rel, &source));
    }
    Ok(filter_allowed(findings, &allow))
}

// ---------------------------------------------------------------------------
// Mutation self-tests: the lint must flag intentionally-broken snippets and
// pass their repaired twins.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn undocumented_unsafe_is_flagged_and_documented_unsafe_passes() {
        let bad = "
fn f(fd: i32) {
    unsafe { close(fd) };
}
";
        let found = scan_source("crates/corpus/src/reactor.rs", bad);
        assert_eq!(rules(&found), vec!["unsafe-safety"], "{found:?}");

        let good = "
fn f(fd: i32) {
    // SAFETY: fd is owned by this struct and closed exactly once.
    unsafe { close(fd) };
}
";
        assert!(scan_source("crates/corpus/src/reactor.rs", good).is_empty());
    }

    #[test]
    fn safety_comment_must_be_adjacent() {
        let stale = "
// SAFETY: this comment is too far away to cover the block below.




fn f(fd: i32) {
    unsafe { close(fd) };
}
";
        let found = scan_source("crates/corpus/src/reactor.rs", stale);
        assert_eq!(rules(&found), vec!["unsafe-safety"]);
    }

    #[test]
    fn lock_unwrap_in_serving_path_is_flagged() {
        let bad = "
fn f(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
";
        let found = scan_source("crates/corpus/src/router.rs", bad);
        assert_eq!(rules(&found), vec!["lock-unwrap"], "{found:?}");
        // expect() is equally banned.
        let bad2 = bad.replace("unwrap()", "expect(\"poisoned\")");
        let found2 = scan_source("crates/wire/src/lib.rs", &bad2);
        assert_eq!(rules(&found2), vec!["lock-unwrap"], "{found2:?}");
    }

    #[test]
    fn lock_unwrap_rule_is_scoped() {
        let src = "fn f(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }\n";
        // Outside the serving crates: allowed.
        assert!(scan_source("crates/bench/src/lib.rs", src).is_empty());
        // Inside a test module: allowed.
        let in_test = format!("#[cfg(test)]\nmod tests {{\n{src}\n}}\n");
        assert!(scan_source("crates/corpus/src/router.rs", &in_test).is_empty());
        // Recovery (no unwrap) is clean.
        let recovered =
            "fn f(m: &Mutex<u32>) -> u32 {\n    *m.lock().unwrap_or_else(|p| p.into_inner())\n}\n";
        assert!(scan_source("crates/corpus/src/router.rs", recovered).is_empty());
        // unwrap on a non-risky receiver is clean.
        let benign =
            "fn f(v: Vec<u32>) -> u32 { v.first().unwrap() + v.last().expect(\"nonempty\") }\n";
        assert!(scan_source("crates/corpus/src/router.rs", benign).is_empty());
    }

    #[test]
    fn raw_spawn_is_flagged_outside_sanctioned_modules() {
        let bad = "fn f() { std::thread::spawn(|| {}); }\n";
        let found = scan_source("crates/corpus/src/server.rs", bad);
        assert_eq!(rules(&found), vec!["raw-spawn"], "{found:?}");
        // The bench daemon harness is sanctioned.
        assert!(scan_source("crates/bench/src/regress.rs", bad).is_empty());
        // Tests may spawn.
        let in_test = format!("#[cfg(test)]\nmod tests {{\n{bad}\n}}\n");
        assert!(scan_source("crates/corpus/src/server.rs", &in_test).is_empty());
        // The facade's own scoped spawn is fine.
        let facade = "fn f() { xpath_sync::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        assert!(scan_source("crates/corpus/src/server.rs", facade).is_empty());
    }

    #[test]
    fn unbounded_wire_read_is_flagged_in_corpus_only() {
        let bad =
            "fn f(r: &mut impl BufRead) { let mut s = String::new(); r.read_line(&mut s); }\n";
        let found = scan_source("crates/corpus/src/server.rs", bad);
        assert_eq!(rules(&found), vec!["wire-read"], "{found:?}");
        // xpath_wire owns its bounded readers; other crates are out of scope.
        assert!(scan_source("crates/wire/src/lib.rs", bad).is_empty());
        // Path-qualified filesystem reads are not wire input.
        let fs_read = "fn f() { let _ = std::fs::read_to_string(\"x\"); }\n";
        assert!(scan_source("crates/corpus/src/lib.rs", fs_read).is_empty());
    }

    #[test]
    fn std_sync_lock_imports_are_flagged_in_ported_crates() {
        let bad = "use std::sync::{Arc, Mutex};\n";
        let found = scan_source("crates/corpus/src/lib.rs", bad);
        assert_eq!(rules(&found), vec!["std-sync-import"], "{found:?}");
        // Inline qualification is equally banned.
        let inline = "fn f() { let m = std::sync::Mutex::new(0); }\n";
        let found2 = scan_source("crates/pplbin/src/store.rs", inline);
        assert_eq!(rules(&found2), vec!["std-sync-import"], "{found2:?}");
        // Arc, atomics, OnceLock stay on std.
        let ok = "use std::sync::Arc;\nuse std::sync::atomic::{AtomicUsize, Ordering};\nuse std::sync::OnceLock;\n";
        assert!(scan_source("crates/corpus/src/lib.rs", ok).is_empty());
        // `Arc<Mutex<..>>` with the facade's Mutex is not a false positive.
        let arc_of_mutex = "use std::sync::Arc;\nfn f(x: std::sync::Arc<Mutex<u32>>) -> usize { x.lock().map(|_| 1).unwrap_or(0) }\n";
        assert!(scan_source("crates/corpus/src/lib.rs", arc_of_mutex).is_empty());
        // Unported crates may use std::sync directly.
        assert!(scan_source("crates/core/src/lib.rs", bad).is_empty());
    }

    #[test]
    fn lexer_ignores_strings_comments_and_lifetimes() {
        let tricky = r##"
// std::thread::spawn in a comment is fine
fn f<'a>(x: &'a str) -> usize {
    let s = "std::thread::spawn(|| {})";
    let r = r#"m.lock().unwrap()"#;
    let c = '\'';
    let b = b"use std::sync::Mutex;";
    x.len() + s.len() + r.len() + b.len() + (c as usize)
}
"##;
        assert!(scan_source("crates/corpus/src/lib.rs", tricky).is_empty());
    }

    #[test]
    fn allowlist_suppresses_exact_rule_file_pairs() {
        let bad = "fn f() { std::thread::spawn(|| {}); }\n";
        let findings = scan_source("crates/corpus/src/server.rs", bad);
        let allow = parse_allowlist("# comment\nraw-spawn crates/corpus/src/server.rs\n");
        assert!(filter_allowed(findings.clone(), &allow).is_empty());
        let wrong = parse_allowlist("raw-spawn crates/corpus/src/router.rs\n");
        assert_eq!(filter_allowed(findings, &wrong).len(), 1);
    }

    /// Acceptance criterion: the workspace scans clean with the committed
    /// allowlist, and the allowlist stays empty for corpus and wire.
    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = scan_workspace(&root).expect("workspace scan");
        assert!(
            findings.is_empty(),
            "lint violations:\n{}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
        );
        let allow_text = std::fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
        for (_, path) in parse_allowlist(&allow_text) {
            assert!(
                !path.starts_with("crates/corpus/") && !path.starts_with("crates/wire/"),
                "allowlist must stay empty for corpus and wire: {path}"
            );
        }
    }
}
