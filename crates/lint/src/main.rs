//! CLI: scan the workspace from the repo root (or a path given as the first
//! argument), print findings, exit non-zero if any survive the allowlist.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args_os()
        .nth(1)
        .map(PathBuf::from)
        .or_else(|| {
            // When run via `cargo run -p xpath_lint`, the manifest dir points
            // at crates/lint; the workspace root is two levels up.
            std::env::var_os("CARGO_MANIFEST_DIR").map(|d| PathBuf::from(d).join("../.."))
        })
        .unwrap_or_else(|| PathBuf::from("."));

    let findings = match xpath_lint::scan_workspace(&root) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("xpath-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if findings.is_empty() {
        println!("xpath-lint: workspace clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    eprintln!("xpath-lint: {} violation(s)", findings.len());
    ExitCode::FAILURE
}
