//! End-to-end pipeline tests: XML in, answers out, plus the cross-engine
//! consistency checks between the PPLbin matrix engine, the Core XPath 1.0
//! set-based evaluator, the ACQ/Yannakakis path and the HCL algorithm.

use ppl_xpath::prelude::*;
use std::collections::BTreeSet;
use xpath_acq::{answer_acq, hcl_to_acq};
use xpath_ast::binexpr::from_variable_free_path;
use xpath_hcl::{answer_hcl_pplbin, ppl_to_hcl, Hcl};
use xpath_pplbin::{answer_binary, has_successor_set, succ_set};
use xpath_tree::NodeSet;

const BIB_XML: &str = r#"<?xml version="1.0"?>
<bib>
  <book><author/><title/><year/></book>
  <book><author/><author/><title/></book>
  <article><author/><title/></article>
</bib>"#;

#[test]
fn xml_to_answers_end_to_end() {
    let doc = Document::from_xml(BIB_XML).unwrap();
    assert_eq!(doc.label(doc.root()), "bib");

    let pairs = PplQuery::compile(
        "descendant::book[child::author[. is $a] and child::title[. is $t]]",
        &["a", "t"],
    )
    .unwrap();
    let answers = pairs.answers(&doc).unwrap();
    assert_eq!(answers.len(), 3); // 1 + 2 author-title pairs from the books
    for tuple in answers.iter() {
        assert_eq!(doc.label(tuple[0]), "author");
        assert_eq!(doc.label(tuple[1]), "title");
        assert_eq!(doc.tree().parent(tuple[0]), doc.tree().parent(tuple[1]));
        assert_eq!(doc.label(doc.tree().parent(tuple[0]).unwrap()), "book");
    }

    // Including the article: select (publication, title) pairs for books OR
    // articles, exercising union with a shared variable.
    let any_pub = PplQuery::compile(
        "descendant::book[. is $p][child::title[. is $t]] \
         union descendant::article[. is $p][child::title[. is $t]]",
        &["p", "t"],
    );
    // Chained filters share no variables between base and test?  They do
    // here ($p in the base, $t in the test) — that is allowed; sharing the
    // *same* variable would not be.
    let any_pub = any_pub.unwrap();
    let ans = any_pub.answers(&doc).unwrap();
    assert_eq!(ans.len(), 3); // two books + one article, one title each
}

#[test]
fn binary_engines_agree_with_each_other() {
    let doc = Document::from_xml(BIB_XML).unwrap();
    let tree = doc.tree();
    for src in [
        "child::book/child::author",
        "descendant::title",
        "(child::book union child::article)/child::title",
        "child::*[child::author]/child::year",
    ] {
        let bin = from_variable_free_path(&xpath_ast::parse_path(src).unwrap()).unwrap();
        // Matrix engine (Theorem 2).
        let matrix = answer_binary(tree, &bin);
        // Core XPath 1.0 set-based evaluator (except-free fragment only).
        let full = NodeSet::full(tree.len());
        let reachable = succ_set(tree, &bin, &full).unwrap();
        let mut expected = NodeSet::empty(tree.len());
        for (_, v) in matrix.pairs() {
            expected.insert(v);
        }
        assert_eq!(reachable, expected, "{src}");
        let with_succ = has_successor_set(tree, &bin).unwrap();
        assert_eq!(with_succ, matrix.nonempty_rows(), "{src}");
        // High-level BinaryQuery facade.
        let facade = BinaryQuery::compile(src).unwrap();
        assert_eq!(facade.pairs(&doc), matrix.pairs(), "{src}");
    }
}

#[test]
fn yannakakis_agrees_with_the_hcl_algorithm_on_union_free_queries() {
    let doc = Document::from_xml(BIB_XML).unwrap();
    let tree = doc.tree();
    let bin = |s: &str| from_variable_free_path(&xpath_ast::parse_path(s).unwrap()).unwrap();
    let queries: Vec<(Hcl<_>, Vec<Var>)> = vec![
        (
            Hcl::Atom(bin("descendant::book"))
                .then(Hcl::Filter(Box::new(
                    Hcl::Atom(bin("child::author")).then(Hcl::Var(Var::new("a"))),
                )))
                .then(Hcl::Atom(bin("child::title")))
                .then(Hcl::Var(Var::new("t"))),
            vec![Var::new("a"), Var::new("t")],
        ),
        (
            Hcl::Atom(bin("child::*"))
                .then(Hcl::Var(Var::new("p")))
                .then(Hcl::Atom(bin("child::author")))
                .then(Hcl::Var(Var::new("a"))),
            vec![Var::new("p"), Var::new("a")],
        ),
    ];
    for (hcl, output) in queries {
        let via_hcl = answer_hcl_pplbin(tree, &hcl, &output).unwrap();
        let (cq, db) = hcl_to_acq(tree, &hcl, &output).unwrap();
        let via_acq = answer_acq(&cq, &db).unwrap();
        assert_eq!(via_hcl, via_acq, "{hcl}");
    }
}

#[test]
fn fig7_translation_round_trip_preserves_answers() {
    let doc = Document::from_xml(BIB_XML).unwrap();
    let tree = doc.tree();
    let sources = [
        "descendant::book[child::author[. is $a] and child::title[. is $t]]",
        "descendant::author[. is $x] union descendant::title[. is $x]",
        "$x/child::author[. is $y]",
    ];
    for src in sources {
        let ppl = xpath_ast::parse_path(src).unwrap();
        let vars: Vec<Var> = ppl.free_vars().into_iter().collect();
        let hcl = ppl_to_hcl(&ppl).unwrap();
        let direct = answer_hcl_pplbin(tree, &hcl, &vars).unwrap();
        // Translate back to PPL and through the facade pipeline again.
        let back = xpath_hcl::hcl_to_ppl(&hcl);
        let back_hcl = ppl_to_hcl(&back).unwrap();
        let round_tripped = answer_hcl_pplbin(tree, &back_hcl, &vars).unwrap();
        assert_eq!(direct, round_tripped, "{src}");
    }
}

#[test]
fn explain_and_render_produce_readable_reports() {
    let doc = Document::from_xml(BIB_XML).unwrap();
    let q = PplQuery::compile(
        "descendant::book[child::author[. is $a] and child::title[. is $t]]",
        &["a", "t"],
    )
    .unwrap();
    let explain = q.explain();
    assert!(explain.contains("PPL source"));
    assert!(explain.contains("PPLbin atoms"));
    let rendered = q.answers(&doc).unwrap().render(&doc);
    assert!(rendered.contains("$a=author#"));
    assert!(rendered.contains("$t=title#"));
}

#[test]
fn larger_document_smoke_test() {
    // A wider restaurant-guide document through the whole pipeline.
    let attrs = xpath_tree::generate::RESTAURANT_ATTRIBUTES;
    let tree = xpath_tree::generate::restaurants(25, &attrs, 7);
    let doc = Document::from_tree(tree);
    let (query, vars) = xpath_workload::restaurant_query(4);
    let compiled = PplQuery::compile_path(query, vars).unwrap();
    let answers = compiled.answers(&doc).unwrap();
    assert_eq!(answers.len(), 25);
    assert_eq!(answers.arity(), 4);
    // Selecting all 11 attributes: restaurants missing the last column drop
    // out (every 7th), so 25 - 3 = 22 rows.
    let (query11, vars11) = xpath_workload::restaurant_query(11);
    let compiled11 = PplQuery::compile_path(query11, vars11).unwrap();
    let answers11 = compiled11.answers(&doc).unwrap();
    assert_eq!(answers11.len(), 22);
    assert_eq!(answers11.arity(), 11);

    // Cross-check a sample of the unary projection with the binary engine.
    let names = BinaryQuery::compile("descendant::restaurant/child::name").unwrap();
    let name_nodes: BTreeSet<NodeId> = names
        .select_from_root(&doc)
        .into_iter()
        .collect();
    let projected: BTreeSet<NodeId> = answers.iter().map(|t| t[0]).collect();
    assert!(projected.is_subset(&name_nodes));
}
