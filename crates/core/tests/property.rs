//! Property-based tests (proptest) on the core data structures and the
//! evaluation invariants.
//!
//! * random trees: structural invariants, axis successor/relation agreement,
//!   binary-encoding round trips;
//! * random variable-free expressions: Boolean-matrix evaluation agrees with
//!   the Fig. 2 specification semantics, and parse/print round trips hold;
//! * random PPL queries from a template family: the PPL pipeline agrees with
//!   the naive engine.

use ppl_xpath::prelude::*;
use ppl_xpath::Engine;
use proptest::prelude::*;
use xpath_ast::{NameTest, PathExpr, TestExpr};
use xpath_tree::{BinaryTree, Tree, TreeBuilder};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A random tree described by a parent vector: entry `i` holds the parent
/// index (< i + 1) of node `i + 1`.
fn arb_tree(max_nodes: usize, alphabet: usize) -> impl Strategy<Value = Tree> {
    prop::collection::vec(
        (0usize..usize::MAX, 0usize..alphabet),
        0..max_nodes.saturating_sub(1),
    )
    .prop_map(move |spec| {
        let n = spec.len() + 1;
        // parents[i] for i in 1..n, guaranteed < i.
        let parents: Vec<usize> = spec.iter().enumerate().map(|(i, (p, _))| p % (i + 1)).collect();
        let labels: Vec<usize> = std::iter::once(0)
            .chain(spec.iter().map(|(_, l)| *l))
            .collect();
        // Children in increasing order keeps document order == id order.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &p) in parents.iter().enumerate() {
            children[p].push(i + 1);
        }
        let mut b = TreeBuilder::new();
        fn emit(
            node: usize,
            children: &[Vec<usize>],
            labels: &[usize],
            b: &mut TreeBuilder,
        ) {
            b.open(&format!("l{}", labels[node]));
            for &c in &children[node] {
                emit(c, children, labels, b);
            }
            b.close();
        }
        emit(0, &children, &labels, &mut b);
        b.finish().expect("generated tree is balanced")
    })
}

/// Random variable-free Core XPath 2.0 expressions (the PPLbin source
/// fragment): steps, composition, union, intersect, except and filters with
/// and/or/not tests.
fn arb_variable_free(depth: u32) -> impl Strategy<Value = PathExpr> {
    let axis = prop_oneof![
        Just(Axis::SelfAxis),
        Just(Axis::Child),
        Just(Axis::Parent),
        Just(Axis::Descendant),
        Just(Axis::Ancestor),
        Just(Axis::FollowingSibling),
        Just(Axis::PrecedingSibling),
    ];
    let name = prop_oneof![
        Just(NameTest::Wildcard),
        Just(NameTest::name("l0")),
        Just(NameTest::name("l1")),
        Just(NameTest::name("l2")),
    ];
    let leaf = (axis, name).prop_map(|(a, n)| PathExpr::Step(a, n));
    leaf.prop_recursive(depth, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| PathExpr::Seq(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| PathExpr::Union(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| PathExpr::Intersect(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| PathExpr::Except(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| PathExpr::Filter(
                Box::new(a),
                Box::new(TestExpr::Path(b))
            )),
            (inner.clone(), inner).prop_map(|(a, b)| PathExpr::Filter(
                Box::new(a),
                Box::new(TestExpr::Not(Box::new(TestExpr::Path(b))))
            )),
        ]
    })
}

// ---------------------------------------------------------------------------
// Tree properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_trees_satisfy_structural_invariants(tree in arb_tree(40, 3)) {
        prop_assert!(tree.check_invariants().is_ok());
        // Term syntax round trip.
        let reparsed = Tree::from_terms(&tree.to_terms()).unwrap();
        prop_assert_eq!(reparsed.to_terms(), tree.to_terms());
        // XML round trip.
        let xml = xpath_xml::to_xml(&tree);
        let from_xml = xpath_xml::parse(&xml).unwrap();
        prop_assert_eq!(from_xml.to_terms(), tree.to_terms());
    }

    #[test]
    fn axis_iteration_agrees_with_pairwise_relation(tree in arb_tree(25, 3)) {
        for axis in xpath_tree::axes::ALL_AXES {
            for u in tree.nodes() {
                let listed: std::collections::HashSet<_> = tree.axis_iter(axis, u).collect();
                for v in tree.nodes() {
                    prop_assert_eq!(axis.relates(&tree, u, v), listed.contains(&v));
                }
            }
        }
    }

    #[test]
    fn binary_encoding_round_trips(tree in arb_tree(40, 3)) {
        let encoded = BinaryTree::encode(&tree);
        prop_assert_eq!(encoded.decode().to_terms(), tree.to_terms());
        // The encoding has the same node count and no second child at the root.
        prop_assert_eq!(encoded.len(), tree.len());
        prop_assert!(encoded.second_child(encoded.root()).is_none());
    }

    #[test]
    fn lca_is_a_common_ancestor_and_the_deepest_one(tree in arb_tree(30, 2)) {
        let nodes: Vec<NodeId> = tree.nodes().collect();
        for &a in nodes.iter().step_by(3) {
            for &b in nodes.iter().step_by(4) {
                let l = tree.lca(a, b);
                prop_assert!(tree.is_descendant_or_self(a, l));
                prop_assert!(tree.is_descendant_or_self(b, l));
                // No child of l is a common ancestor of both.
                for c in tree.children(l) {
                    prop_assert!(
                        !(tree.is_descendant_or_self(a, c) && tree.is_descendant_or_self(b, c))
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Expression / engine properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn printer_parser_round_trip_on_variable_free_expressions(
        expr in arb_variable_free(3)
    ) {
        let printed = expr.to_string();
        let reparsed = xpath_ast::parse_path(&printed).unwrap();
        prop_assert_eq!(reparsed, expr);
    }

    #[test]
    fn matrix_engine_agrees_with_specification_on_random_expressions(
        tree in arb_tree(14, 3),
        expr in arb_variable_free(2),
    ) {
        let bin = xpath_ast::binexpr::from_variable_free_path(&expr).unwrap();
        let matrix = xpath_pplbin::answer_binary(&tree, &bin).pairs();
        let naive = xpath_naive::answer_binary(&tree, &expr).unwrap();
        prop_assert_eq!(matrix, naive);
    }

    #[test]
    fn ppl_pipeline_agrees_with_naive_on_selection_queries(
        tree in arb_tree(12, 3),
        label in 0usize..3,
        use_union in any::<bool>(),
    ) {
        // A family of 1-ary and 2-ary PPL queries built from the random label.
        let name = format!("l{label}");
        let src = if use_union {
            format!("descendant::{name}[. is $a] union child::*[. is $a]")
        } else {
            format!("descendant::*[child::{name}[. is $a]][. is $b]")
        };
        let query = xpath_ast::parse_path(&src).unwrap();
        let outputs: Vec<Var> = if use_union {
            vec![Var::new("a")]
        } else {
            vec![Var::new("a"), Var::new("b")]
        };
        let doc = Document::from_tree(tree);
        let fast = Engine::Ppl.answer(&doc, &query, &outputs).unwrap();
        let slow = Engine::NaiveEnumeration.answer(&doc, &query, &outputs).unwrap();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn nodeset_operations_match_reference_sets(
        members_a in prop::collection::btree_set(0u32..120, 0..40),
        members_b in prop::collection::btree_set(0u32..120, 0..40),
    ) {
        use std::collections::BTreeSet;
        use xpath_tree::NodeSet;
        let domain = 120;
        let a = NodeSet::from_iter(domain, members_a.iter().map(|&i| NodeId(i)));
        let b = NodeSet::from_iter(domain, members_b.iter().map(|&i| NodeId(i)));
        let union: BTreeSet<u32> = members_a.union(&members_b).copied().collect();
        let inter: BTreeSet<u32> = members_a.intersection(&members_b).copied().collect();
        let diff: BTreeSet<u32> = members_a.difference(&members_b).copied().collect();
        prop_assert_eq!(a.union(&b).iter().map(|n| n.0).collect::<BTreeSet<_>>(), union);
        prop_assert_eq!(a.intersection(&b).iter().map(|n| n.0).collect::<BTreeSet<_>>(), inter);
        prop_assert_eq!(a.difference(&b).iter().map(|n| n.0).collect::<BTreeSet<_>>(), diff);
        prop_assert_eq!(a.complemented().len(), domain - members_a.len());
        prop_assert_eq!(a.len(), members_a.len());
    }
}
