//! Differential tests: the polynomial PPL engine must agree tuple-for-tuple
//! with the exponential specification baseline (Fig. 2 semantics) on every
//! query of a representative suite, over documents of several shapes.

use ppl_xpath::prelude::*;
use ppl_xpath::Engine;
use xpath_tree::generate::{bibliography, random_tree, restaurants, TreeGenConfig, TreeShape};
use xpath_tree::Tree;

/// The PPL query suite used throughout the differential tests: a mix of the
/// paper's examples, wide-tuple queries, unions with shared variables,
/// variable-free operators and goto-style variables.
fn query_suite() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
            vec!["y", "z"],
        ),
        ("descendant::author[. is $a]", vec!["a"]),
        ("descendant::book[. is $b]/child::title[. is $t]", vec!["b", "t"]),
        ("child::*[. is $x]/child::*[. is $y]", vec!["x", "y"]),
        (
            "descendant::author[. is $x] union descendant::title[. is $x]",
            vec!["x"],
        ),
        (
            "descendant::book[child::author[. is $x] or child::title[. is $x]]",
            vec!["x"],
        ),
        ("(descendant::* except descendant::author)[. is $n]", vec!["n"]),
        ("descendant::*[not(child::*)][. is $leaf]", vec!["leaf"]),
        ("$x/child::*[. is $y]", vec!["x", "y"]),
        ("descendant::*[$x is $y]", vec!["x", "y"]),
        (
            "descendant::book[child::author[. is $a]]/following_sibling::book[child::title[. is $t]]",
            vec!["a", "t"],
        ),
        ("descendant::book", vec![]),
        ("descendant::publisher[. is $p]", vec!["p"]),
    ]
}

fn check_all_queries(doc: &Document) {
    for (src, outputs) in query_suite() {
        let query = xpath_ast::parse_path(src).unwrap();
        let vars: Vec<Var> = outputs.iter().map(|n| Var::new(n)).collect();
        let fast = Engine::Ppl.answer(doc, &query, &vars).unwrap();
        let slow = Engine::NaiveEnumeration.answer(doc, &query, &vars).unwrap();
        assert_eq!(
            fast,
            slow,
            "engines disagree on {src:?} over {}",
            doc.to_terms()
        );
    }
}

#[test]
fn engines_agree_on_the_bibliography_document() {
    let doc = Document::from_tree(bibliography(4, 3));
    check_all_queries(&doc);
}

#[test]
fn engines_agree_on_the_restaurant_document() {
    let doc = Document::from_tree(restaurants(3, &["name", "city", "phone"], 2));
    check_all_queries(&doc);
}

#[test]
fn engines_agree_on_random_trees_of_every_shape() {
    for shape in [
        TreeShape::RandomAttachment,
        TreeShape::BoundedBranching { max_children: 3 },
        TreeShape::Path,
        TreeShape::Star,
        TreeShape::Complete { arity: 2 },
    ] {
        let tree = random_tree(&TreeGenConfig {
            size: 12,
            shape,
            alphabet: 3,
            seed: 0xABCD,
        });
        let doc = Document::from_tree(tree);
        check_all_queries(&doc);
    }
}

#[test]
fn engines_agree_on_tiny_and_degenerate_trees() {
    for terms in ["a", "a(a)", "a(a,a,a)", "l0(l1(l0(l1)))"] {
        let doc = Document::from_tree(Tree::from_terms(terms).unwrap());
        check_all_queries(&doc);
    }
}

#[test]
fn answer_sets_are_output_sensitive_not_domain_sized() {
    // A selective query on a larger document: the answer set stays small
    // even though |t|^n is large — the property Theorem 1 is about.
    let doc = Document::from_tree(bibliography(40, 4));
    let q = PplQuery::compile(
        "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        &["y", "z"],
    )
    .unwrap();
    let ans = q.answers(&doc).unwrap();
    // One (author, title) pair per author of each book: books have
    // 1 + (i mod 4) authors.
    let expected: usize = (0..40).map(|i| 1 + (i % 4)).sum();
    assert_eq!(ans.len(), expected);
    assert!(ans.len() < doc.len() * doc.len() / 10);
}
