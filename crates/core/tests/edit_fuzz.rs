//! Differential edit fuzz: incremental maintenance vs full recompilation.
//!
//! The live-document subsystem patches PPLbin matrices in place under tree
//! edits ([`Session::fork_edited`]) instead of recompiling them.  Any bug in
//! the row-range invalidation — a dirty row not recomputed, a stale interval
//! kept, a preimage remapped off by one — shows up as a *wrong answer on a
//! warm session only*, which no single-shot differential test can catch.
//!
//! `run_edit_fuzz` closes that hole: ≥100 random edit scripts over random
//! documents of every generator shape, and after **every** edit the warm
//! session (cache carried through the whole script so far) must agree
//! tuple-for-tuple with a cold full-recompile session on all four engines.

use ppl_xpath::prelude::*;
use std::sync::Arc;
use xpath_tree::generate::{random_tree, TreeGenConfig, TreeShape};
use xpath_workload::edits::random_edit_script;

/// Query suite over the generator alphabet `l0..l2` (plus the off-alphabet
/// relabel target `l3`): name tests, wildcards, shared-variable unions,
/// `except`, negation, goto-style free variables and sibling navigation —
/// every subterm family the incremental patcher handles differently.
fn query_suite() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("descendant::l0[. is $x]", vec!["x"]),
        ("child::*[. is $x]/child::*[. is $y]", vec!["x", "y"]),
        (
            "descendant::l0[. is $x] union descendant::l1[. is $x]",
            vec!["x"],
        ),
        ("descendant::*[child::l1[. is $c]]", vec!["c"]),
        ("(descendant::* except descendant::l2)[. is $n]", vec!["n"]),
        ("descendant::*[not(child::*)][. is $leaf]", vec!["leaf"]),
        ("$x/child::*[. is $y]", vec!["x", "y"]),
        (
            "descendant::l0[. is $a]/following_sibling::*[. is $b]",
            vec!["a", "b"],
        ),
        ("descendant::l1", vec![]),
        ("descendant::*[child::l0 or child::l3][. is $p]", vec!["p"]),
    ]
}

/// Plan `src` on `session` with `engine` forced (the auto planner would
/// route these small fuzz documents to naive, bypassing the warm cache that
/// is the whole point of the exercise).
fn forced_plan(session: &Session, engine: Engine, src: &str, vars: &[&str]) -> QueryPlan {
    Planner::default()
        .plan_with(
            session,
            parse_path(src).unwrap(),
            vars.iter().map(|n| Var::new(n)).collect(),
            Some(engine),
        )
        .unwrap_or_else(|e| panic!("{engine} cannot plan {src:?}: {e}"))
}

/// Replay one random edit script, checking the warm session against a cold
/// recompile on every engine after every edit.
fn run_script(shape: TreeShape, seed: u64, edits: usize) {
    let start = random_tree(&TreeGenConfig {
        size: 8,
        shape,
        alphabet: 3,
        seed,
    });
    let suite = query_suite();
    let mut warm = Session::from_tree(start.clone());
    // Warm the cache before the first edit: cold stores take the trivial
    // recompile path, and the fuzz is about *patched* matrices.
    for (src, vars) in &suite {
        let plan = forced_plan(&warm, Engine::Ppl, src, vars);
        warm.execute(&plan).unwrap();
    }
    assert!(
        warm.cache_stats().compiled > 0,
        "suite must warm the cache for the fuzz to mean anything"
    );
    let mut tree = start;
    for (step, (edit, expected_tree)) in
        random_edit_script(&tree, edits, 3, seed ^ 0x9E3779B9).iter().enumerate()
    {
        let (next, delta) = edit.apply(&tree).unwrap();
        assert_eq!(next.to_terms(), expected_tree.to_terms());
        let next = Arc::new(next);
        let (forked, _) = warm.fork_edited(Arc::clone(&next), &delta);
        let cold = Session::from_shared_tree(Arc::clone(&next));
        for (src, vars) in &suite {
            let got = forked
                .execute(&forced_plan(&forked, Engine::Ppl, src, vars))
                .unwrap();
            for engine in Engine::ALL {
                let expect = cold
                    .execute(&forced_plan(&cold, engine, src, vars))
                    .unwrap();
                assert_eq!(
                    got,
                    expect,
                    "warm session disagrees with cold {engine} on {src:?} \
                     after step {step} ({edit:?}) of seed {seed} over {}",
                    next.to_terms()
                );
            }
        }
        tree = (*next).clone();
        warm = forked;
    }
}

/// The acceptance gate of the live-document subsystem: 100 scripts — every
/// generator shape × 20 seeds, 6 edits each — warm vs cold on all four
/// engines after every single edit.
#[test]
fn run_edit_fuzz() {
    for shape in [
        TreeShape::RandomAttachment,
        TreeShape::BoundedBranching { max_children: 3 },
        TreeShape::Path,
        TreeShape::Star,
        TreeShape::Complete { arity: 2 },
    ] {
        for seed in 0..20 {
            run_script(shape, seed, 6);
        }
    }
}

/// One long script: 60 edits on a single document, so late edits patch
/// matrices that earlier edits already patched (composition of remaps is
/// where off-by-one preimage bugs hide).
#[test]
fn run_edit_fuzz_long_script() {
    run_script(TreeShape::RandomAttachment, 0xFEED, 60);
}

/// Regression seed: a delete-heavy shape (Path trees make every delete chop
/// a whole descendant chain) that once stressed the interval-straddle path.
#[test]
fn run_edit_fuzz_regression_path_deletes() {
    run_script(TreeShape::Path, 0x0BAD_5EED, 24);
}
