//! `pplx` — a small command-line front end for the PPL query engine.
//!
//! ```text
//! USAGE:
//!     pplx --query <XPATH> [--vars y,z] (--file doc.xml | --terms 'a(b,c)' | --stdin)
//!          [--engine ppl|acq|hcl|naive|auto] [--format table|csv] [--explain]
//!          [--kernels dense|adaptive|adaptive_threaded]
//!     pplx --batch <queries.txt> (--file doc.xml | --terms 'a(b,c)' | --stdin)
//!          [--vars y,z] [--engine ...] [--threads N] [--format table|csv]
//!          [--explain] [--stats] [--kernels dense|adaptive|adaptive_threaded]
//!
//! EXAMPLES:
//!     pplx --terms 'bib(book(author,title))' \
//!          --query 'descendant::book[child::author[. is $y] and child::title[. is $z]]' \
//!          --vars y,z
//!
//!     pplx --terms 'bib(book(author,title))' \
//!          --query 'descendant::author[. is $a]' --vars a --engine auto --explain
//!
//!     pplx --terms 'bib(book(author,title))' --batch workload.txt --threads 8 --stats
//! ```
//!
//! Queries are prepared through the planner API (`Session::plan`): parse,
//! Definition 1 check, Fig. 7 translation, and — with `--engine auto` — a
//! cost decision over the four engines (`ppl` cached matrices, `acq`
//! Yannakakis, `hcl` cold Fig. 8, `naive` spec enumeration).  An explicit
//! `--engine` forces one; the default is `ppl`, which rejects queries
//! outside the PPL fragment with Definition 1 diagnostics (only `naive`
//! accepts full Core XPath 2.0, including `for` and variable sharing).
//! `--explain` prints the plan — shape features, the four-engine candidate
//! table, the decision, and the compiled pipeline.
//!
//! ## Batch mode
//!
//! `--batch <file>` answers many queries over one document with shared
//! compilation state: every line is prepared as a plan and the batch is
//! served through `Session::answer_batch_parallel` with `--threads N`
//! worker threads (default 1) hammering the same thread-safe matrix cache.
//! The file holds one query per line; blank lines and `#` comments are
//! skipped.  A line may override the output variables with a ` -> vars`
//! suffix, otherwise `--vars` applies.  `--stats` appends the matrix-cache
//! hit/miss counters and the per-kernel dispatch counts; `--kernels`
//! selects the compilation kernels (the dense baseline exists for A/B
//! timing against the adaptive default).

use ppl_xpath::{Document, Engine, KernelMode, Planner, QueryPlan};
use std::io::Read;
use std::process::ExitCode;
use xpath_ast::{parse_path, Var};

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Options {
    mode: Mode,
    vars: Vec<String>,
    source: Source,
    /// `None` means `--engine auto`: let the planner decide per query.
    engine: Option<Engine>,
    format: Format,
    explain: bool,
    stats: bool,
    kernels: KernelMode,
    threads: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Mode {
    /// A single `--query`.
    Single(String),
    /// A `--batch` file of queries answered with shared compilation state.
    Batch(String),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Source {
    File(String),
    Terms(String),
    Stdin,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Table,
    Csv,
}

const USAGE: &str = "usage: pplx (--query <XPATH> | --batch <file>) [--vars a,b,...] \
(--file <path> | --terms <term-tree> | --stdin) \
[--engine ppl|acq|hcl|naive|auto] [--threads N] [--format table|csv] \
[--explain] [--stats] [--kernels dense|adaptive|adaptive_threaded]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut query = None;
    let mut batch = None;
    let mut vars = Vec::new();
    let mut source = None;
    let mut engine = Some(Engine::Ppl);
    let mut format = Format::Table;
    let mut explain = false;
    let mut stats = false;
    let mut kernels = KernelMode::default();
    let mut threads = 1usize;

    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {flag}"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--query" | "-q" => query = Some(value(&mut i, "--query")?),
            "--batch" | "-b" => batch = Some(value(&mut i, "--batch")?),
            "--stats" => stats = true,
            "--kernels" => {
                let name = value(&mut i, "--kernels")?;
                kernels = KernelMode::parse(&name).ok_or_else(|| {
                    format!("unknown kernel mode '{name}' (expected dense|adaptive|adaptive_threaded)")
                })?;
            }
            "--threads" => {
                let n = value(&mut i, "--threads")?;
                threads = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--threads expects a positive integer, got '{n}'"))?;
            }
            "--vars" | "-v" => {
                vars = value(&mut i, "--vars")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().trim_start_matches('$').to_string())
                    .collect()
            }
            "--file" | "-f" => source = Some(Source::File(value(&mut i, "--file")?)),
            "--terms" | "-t" => source = Some(Source::Terms(value(&mut i, "--terms")?)),
            "--stdin" => source = Some(Source::Stdin),
            "--engine" => {
                let name = value(&mut i, "--engine")?;
                engine = match name.as_str() {
                    "auto" => None,
                    other => Some(Engine::parse(other).ok_or_else(|| {
                        format!("unknown engine '{other}' (expected ppl|acq|hcl|naive|auto)")
                    })?),
                }
            }
            "--format" => {
                format = match value(&mut i, "--format")?.as_str() {
                    "table" => Format::Table,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format '{other}' (expected table|csv)")),
                }
            }
            "--explain" => explain = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        i += 1;
    }

    let mode = match (query, batch) {
        (Some(_), Some(_)) => {
            return Err(format!("--query and --batch are mutually exclusive\n{USAGE}"))
        }
        (Some(q), None) => {
            if threads != 1 {
                return Err("--threads only applies to --batch serving".into());
            }
            Mode::Single(q)
        }
        (None, Some(b)) => Mode::Batch(b),
        (None, None) => return Err(format!("--query or --batch is required\n{USAGE}")),
    };
    Ok(Options {
        mode,
        vars,
        source: source.ok_or_else(|| format!("one of --file/--terms/--stdin is required\n{USAGE}"))?,
        engine,
        format,
        explain,
        stats,
        kernels,
        threads,
    })
}

fn load_document(source: &Source) -> Result<Document, String> {
    match source {
        Source::Terms(terms) => Document::from_terms(terms).map_err(|e| e.to_string()),
        Source::File(path) => {
            let content =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Document::from_xml(&content).map_err(|e| e.to_string())
        }
        Source::Stdin => {
            let mut content = String::new();
            std::io::stdin()
                .read_to_string(&mut content)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            Document::from_xml(&content).map_err(|e| e.to_string())
        }
    }
}

/// Parse one batch line: `<query>` with an optional ` -> v1,v2` variable
/// suffix overriding the default variables.
fn parse_batch_line(line: &str, default_vars: &[String]) -> (String, Vec<String>) {
    match line.rsplit_once("->") {
        Some((query, vars)) => (
            query.trim().to_string(),
            vars.split(',')
                .map(|s| s.trim().trim_start_matches('$').to_string())
                .filter(|s| !s.is_empty())
                .collect(),
        ),
        None => (line.trim().to_string(), default_vars.to_vec()),
    }
}

/// Prepare one query as a plan: parse, compile, and either force the chosen
/// engine or let the planner decide (`--engine auto`).
fn plan_query(
    doc: &Document,
    query: &str,
    vars: &[String],
    engine: Option<Engine>,
) -> Result<QueryPlan, String> {
    let path = parse_path(query).map_err(|e| e.to_string())?;
    let output: Vec<Var> = vars.iter().map(|n| Var::new(n)).collect();
    Planner::default()
        .plan_with(doc.session(), path, output, engine)
        .map_err(|e| e.to_string())
}

fn render_answers(
    out: &mut String,
    doc: &Document,
    answers: &ppl_xpath::AnswerSet,
    vars: &[String],
    format: Format,
) {
    // 0-ary (satisfiability) answers get an explicit boolean rendering —
    // "N answer tuple(s) over ()" plus a bare "()" line reads like noise,
    // especially interleaved with --explain output.
    if vars.is_empty() {
        match format {
            Format::Table => out.push_str(&format!("satisfiable: {}\n", !answers.is_empty())),
            Format::Csv => {
                out.push_str("satisfiable\n");
                out.push_str(if answers.is_empty() { "false\n" } else { "true\n" });
            }
        }
        return;
    }
    match format {
        Format::Table => {
            out.push_str(&format!(
                "{} answer tuple(s) over ({})\n",
                answers.len(),
                vars.join(", ")
            ));
            out.push_str(&answers.render(doc));
        }
        Format::Csv => {
            out.push_str(&vars.join(","));
            out.push('\n');
            for tuple in answers.tuples() {
                let row: Vec<String> = tuple.iter().map(|n| doc.describe(*n)).collect();
                out.push_str(&row.join(","));
                out.push('\n');
            }
        }
    }
}

fn run_single(options: &Options, doc: &Document, query: &str) -> Result<String, String> {
    let plan = plan_query(doc, query, &options.vars, options.engine)?;
    let mut out = String::new();
    if options.explain {
        out.push_str(&plan.explain());
        out.push('\n');
    }
    let answers = doc.session().execute(&plan).map_err(|e| e.to_string())?;
    render_answers(&mut out, doc, &answers, &options.vars, options.format);
    Ok(out)
}

fn run_batch(options: &Options, doc: &Document, path: &str) -> Result<String, String> {
    let content =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut plans: Vec<QueryPlan> = Vec::new();
    let mut specs: Vec<(String, Vec<String>)> = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (query, vars) = parse_batch_line(line, &options.vars);
        let plan = plan_query(doc, &query, &vars, options.engine)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        plans.push(plan);
        specs.push((query, vars));
    }
    if plans.is_empty() {
        return Err(format!("{path}: no queries (blank lines and # comments are skipped)"));
    }

    let answers = doc
        .session()
        .answer_batch_parallel(&plans, options.threads)
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    for (i, ((query, vars), answer)) in specs.iter().zip(&answers).enumerate() {
        out.push_str(&format!("# [{}] {query}\n", i + 1));
        if options.explain {
            out.push_str(&format!(
                "# plan: {} engine ({})\n",
                plans[i].engine().name(),
                if plans[i].is_forced() { "forced" } else { "auto" },
            ));
        }
        render_answers(&mut out, doc, answer, vars, options.format);
    }
    if options.stats {
        let stats = doc.cache_stats();
        out.push_str(&format!(
            "# cache: {} hits, {} misses, {} matrices for {} queries on {} thread(s)\n",
            stats.hits,
            stats.misses,
            stats.compiled,
            plans.len(),
            options.threads,
        ));
        out.push_str(&format!("# kernels: {}\n", stats.kernels));
    }
    Ok(out)
}

fn run(options: &Options) -> Result<String, String> {
    let doc = load_document(&options.source)?;
    doc.set_kernel_mode(options.kernels);
    match &options.mode {
        Mode::Single(query) => run_single(options, &doc, query),
        Mode::Batch(path) => run_batch(options, &doc, path),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&options) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_full_argument_set() {
        let opts = parse_args(&args(&[
            "--query",
            "descendant::a[. is $x]",
            "--vars",
            "$x, y",
            "--terms",
            "r(a,b)",
            "--engine",
            "naive",
            "--format",
            "csv",
            "--explain",
        ]))
        .unwrap();
        assert_eq!(opts.mode, Mode::Single("descendant::a[. is $x]".into()));
        assert_eq!(opts.vars, vec!["x", "y"]);
        assert_eq!(opts.source, Source::Terms("r(a,b)".into()));
        assert_eq!(opts.engine, Some(Engine::NaiveEnumeration));
        assert_eq!(opts.format, Format::Csv);
        assert!(opts.explain);
        assert!(!opts.stats);
        assert_eq!(opts.threads, 1);
    }

    #[test]
    fn parse_engine_flag_accepts_all_five_choices() {
        let engine_of = |name: &str| {
            parse_args(&args(&["--query", "child::a", "--terms", "r(a)", "--engine", name]))
                .unwrap()
                .engine
        };
        assert_eq!(engine_of("ppl"), Some(Engine::Ppl));
        assert_eq!(engine_of("acq"), Some(Engine::Acq));
        assert_eq!(engine_of("hcl"), Some(Engine::Hcl));
        assert_eq!(engine_of("naive"), Some(Engine::NaiveEnumeration));
        assert_eq!(engine_of("auto"), None);
        let default = parse_args(&args(&["--query", "child::a", "--terms", "r(a)"])).unwrap();
        assert_eq!(default.engine, Some(Engine::Ppl));
        assert!(parse_args(&args(&[
            "--query", "child::a", "--terms", "r(a)", "--engine", "zzz",
        ]))
        .unwrap_err()
        .contains("unknown engine"));
    }

    #[test]
    fn parse_kernel_mode_flag() {
        let opts = parse_args(&args(&[
            "--query", "child::a", "--terms", "r(a)", "--kernels", "dense",
        ]))
        .unwrap();
        assert_eq!(opts.kernels, KernelMode::Dense);
        let default = parse_args(&args(&["--query", "child::a", "--terms", "r(a)"])).unwrap();
        assert_eq!(default.kernels, KernelMode::AdaptiveThreaded);
        assert!(parse_args(&args(&[
            "--query", "child::a", "--terms", "r(a)", "--kernels", "zippy",
        ]))
        .unwrap_err()
        .contains("unknown kernel mode"));
    }

    #[test]
    fn parse_batch_and_threads_arguments() {
        let opts = parse_args(&args(&[
            "--batch", "queries.txt", "--terms", "r(a)", "--stats", "--threads", "8",
        ]))
        .unwrap();
        assert_eq!(opts.mode, Mode::Batch("queries.txt".into()));
        assert!(opts.stats);
        assert_eq!(opts.threads, 8);
        assert!(parse_args(&args(&[
            "--batch", "q.txt", "--query", "child::a", "--terms", "r",
        ]))
        .unwrap_err()
        .contains("mutually exclusive"));
        assert!(parse_args(&args(&[
            "--batch", "q.txt", "--terms", "r", "--threads", "0",
        ]))
        .unwrap_err()
        .contains("positive integer"));
        // --threads is a batch-serving knob; silently ignoring it on a
        // single query would fake multi-threaded measurements.
        assert!(parse_args(&args(&[
            "--query", "child::a", "--terms", "r(a)", "--threads", "8",
        ]))
        .unwrap_err()
        .contains("--batch"));
    }

    #[test]
    fn batch_lines_support_variable_suffixes() {
        let defaults = vec!["d".to_string()];
        assert_eq!(
            parse_batch_line("descendant::a[. is $x] -> $x", &defaults),
            ("descendant::a[. is $x]".to_string(), vec!["x".to_string()])
        );
        assert_eq!(
            parse_batch_line("child::a -> x, y", &defaults),
            ("child::a".to_string(), vec!["x".to_string(), "y".to_string()])
        );
        assert_eq!(
            parse_batch_line("child::a", &defaults),
            ("child::a".to_string(), defaults.clone())
        );
    }

    #[test]
    fn missing_required_arguments_are_reported() {
        assert!(parse_args(&args(&["--terms", "a"])).unwrap_err().contains("--query"));
        assert!(parse_args(&args(&["--query", "child::a"]))
            .unwrap_err()
            .contains("--file/--terms/--stdin"));
        assert!(parse_args(&args(&["--bogus"])).unwrap_err().contains("unknown argument"));
        assert!(parse_args(&args(&["--engine"])).unwrap_err().contains("missing value"));
    }

    #[test]
    fn run_ppl_engine_on_terms_source() {
        let opts = parse_args(&args(&[
            "--query",
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
            "--vars",
            "y,z",
            "--terms",
            "bib(book(author,title),book(author,author,title))",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.starts_with("3 answer tuple(s)"));
        assert!(out.contains("$y=author#"));
    }

    #[test]
    fn run_every_engine_and_auto_on_the_same_query() {
        let base = [
            "--query",
            "descendant::book[child::author[. is $a]]",
            "--vars",
            "a",
            "--terms",
            "bib(book(author,title),book(author,author,title))",
        ];
        let mut outputs = Vec::new();
        for engine in ["ppl", "acq", "hcl", "naive", "auto"] {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend(["--engine", engine]);
            outputs.push(run(&parse_args(&args(&argv)).unwrap()).unwrap());
        }
        for other in &outputs[1..] {
            assert_eq!(other, &outputs[0], "engines disagree on the CLI");
        }
    }

    #[test]
    fn run_csv_output_and_naive_engine() {
        let opts = parse_args(&args(&[
            "--query",
            "for $b in child::book return child::book[. is $b]/child::title[. is $t]",
            "--vars",
            "t",
            "--terms",
            "bib(book(title),book(title))",
            "--engine",
            "naive",
            "--format",
            "csv",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "t");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("title#"));
    }

    #[test]
    fn run_reports_fragment_violations() {
        let opts = parse_args(&args(&[
            "--query",
            "child::a[. is $x]/child::b[. is $x]",
            "--vars",
            "x",
            "--terms",
            "r(a(b))",
        ]))
        .unwrap();
        let err = run(&opts).unwrap_err();
        assert!(err.contains("NVS(/)"));
    }

    #[test]
    fn run_batch_answers_every_query_and_reports_cache_stats() {
        let path = std::env::temp_dir().join("pplx_batch_test_queries.txt");
        std::fs::write(
            &path,
            "# author/title pairs per book\n\
             descendant::book[child::author[. is $y] and child::title[. is $z]] -> y,z\n\
             \n\
             descendant::author[. is $a] -> a\n\
             descendant::book[child::author]\n",
        )
        .unwrap();
        let opts = parse_args(&args(&[
            "--batch",
            path.to_str().unwrap(),
            "--terms",
            "bib(book(author,title),book(author,author,title))",
            "--stats",
            "--threads",
            "4",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("# [1] descendant::book[child::author"));
        assert!(out.contains("3 answer tuple(s) over (y, z)"));
        assert!(out.contains("# [2] descendant::author"));
        assert!(out.contains("3 answer tuple(s) over (a)"));
        // The third line is a boolean (arity-0) query: normalised rendering.
        assert!(out.contains("# [3] "));
        assert!(out.contains("satisfiable: true"));
        assert!(!out.contains("answer tuple(s) over ()"), "{out}");
        // `descendant::book` and `child::author` repeat across the batch, so
        // the cache must report hits even when served on 4 threads.
        assert!(out.contains("# cache: "));
        assert!(!out.contains("# cache: 0 hits"), "{out}");
        assert!(out.contains("on 4 thread(s)"), "{out}");
        // Named steps compile to CSR successor lists, so the kernel line
        // must report sparse step dispatches.
        assert!(out.contains("# kernels: steps id/iv/sp/dn "), "{out}");
        assert!(!out.contains("steps id/iv/sp/dn 0/0/0/0"), "{out}");
    }

    #[test]
    fn run_batch_reports_compile_errors_with_line_numbers() {
        let path = std::env::temp_dir().join("pplx_batch_test_bad.txt");
        std::fs::write(&path, "child::a\nfor $x in child::a return child::b\n").unwrap();
        let opts = parse_args(&args(&[
            "--batch",
            path.to_str().unwrap(),
            "--terms",
            "r(a)",
        ]))
        .unwrap();
        let err = run(&opts).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains(":2:"), "{err}");
        assert!(err.contains("N(for)"), "{err}");
    }

    #[test]
    fn run_batch_with_naive_engine_accepts_full_core_xpath() {
        // Historically --batch rejected --engine naive; plans serve it now.
        let path = std::env::temp_dir().join("pplx_batch_test_naive.txt");
        std::fs::write(&path, "for $x in child::a return child::a[. is $x] -> x\n").unwrap();
        let opts = parse_args(&args(&[
            "--batch",
            path.to_str().unwrap(),
            "--terms",
            "r(a,a)",
            "--engine",
            "naive",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        std::fs::remove_file(&path).ok();
        // The for-bound $x shadows the output variable, which therefore
        // ranges over all nodes of the (satisfiable) loop — 3 tuples.
        assert!(out.contains("3 answer tuple(s) over (x)"), "{out}");
    }

    #[test]
    fn run_explain_includes_pipeline_and_plan() {
        let opts = parse_args(&args(&[
            "--query",
            "descendant::a[. is $x]",
            "--vars",
            "x",
            "--terms",
            "r(a,a)",
            "--explain",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("PPLbin atoms"));
        assert!(out.contains("candidates"));
        assert!(out.contains("chosen       : ppl (forced by caller)"));
        assert!(out.contains("2 answer tuple(s)"));
        // Auto planning reports its decision for every engine.
        let auto = parse_args(&args(&[
            "--query",
            "descendant::a[. is $x]",
            "--vars",
            "x",
            "--terms",
            "r(a,a)",
            "--engine",
            "auto",
            "--explain",
        ]))
        .unwrap();
        let out = run(&auto).unwrap();
        for name in ["ppl", "acq", "hcl", "naive"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert!(out.contains("decision"));
    }
}
