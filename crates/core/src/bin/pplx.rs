//! `pplx` — a small command-line front end for the PPL query engine.
//!
//! ```text
//! USAGE:
//!     pplx --query <XPATH> [--vars y,z] (--file doc.xml | --terms 'a(b,c)' | --stdin)
//!          [--engine ppl|acq|hcl|naive|auto] [--format table|csv] [--explain]
//!          [--kernels dense|adaptive|adaptive_threaded|lazy]
//!     pplx --batch <queries.txt> (--file doc.xml | --terms 'a(b,c)' | --stdin)
//!          [--vars y,z] [--engine ...] [--threads N] [--format table|csv]
//!          [--explain] [--stats] [--kernels dense|adaptive|adaptive_threaded|lazy]
//!
//! EXAMPLES:
//!     pplx --terms 'bib(book(author,title))' \
//!          --query 'descendant::book[child::author[. is $y] and child::title[. is $z]]' \
//!          --vars y,z
//!
//!     pplx --terms 'bib(book(author,title))' \
//!          --query 'descendant::author[. is $a]' --vars a --engine auto --explain
//!
//!     pplx --terms 'bib(book(author,title))' --batch workload.txt --threads 8 --stats
//! ```
//!
//! Queries are prepared through the planner API (`Session::plan`): parse,
//! Definition 1 check, Fig. 7 translation, and — with `--engine auto` — a
//! cost decision over the four engines (`ppl` cached matrices, `acq`
//! Yannakakis, `hcl` cold Fig. 8, `naive` spec enumeration).  An explicit
//! `--engine` forces one; the default is `ppl`, which rejects queries
//! outside the PPL fragment with Definition 1 diagnostics (only `naive`
//! accepts full Core XPath 2.0, including `for` and variable sharing).
//! `--explain` prints the plan — shape features, the four-engine candidate
//! table, the decision, and the compiled pipeline.
//!
//! ## Batch mode
//!
//! `--batch <file>` answers many queries over one document with shared
//! compilation state: every line is prepared as a plan and the batch is
//! served through `Session::answer_batch_parallel` with `--threads N`
//! worker threads (default 1) hammering the same thread-safe matrix cache.
//! The file holds one query per line; blank lines and `#` comments are
//! skipped.  A line may override the output variables with a ` -> vars`
//! suffix, otherwise `--vars` applies.  `--stats` appends the matrix-cache
//! hit/miss counters and the per-kernel dispatch counts; `--kernels`
//! selects the compilation kernels (the dense baseline exists for A/B
//! timing against the adaptive default).

use ppl_xpath::{Document, Engine, KernelMode, Planner, QueryPlan};
use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;
use xpath_ast::{parse_path, Var};
use xpath_wire::{ClientConfig, ShardClient, WireError};

/// Default `--connect` deadline: connect plus each complete response must
/// land within this window or the client exits 5 instead of hanging.
const DEFAULT_REMOTE_TIMEOUT: Duration = Duration::from_secs(10);

/// A classified CLI failure.  Each class maps to its own exit code (see
/// [`HELP`]) so scripts and the CI daemon smoke test can distinguish a
/// malformed query from a missing file.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CliError {
    /// Bad command line (exit 2).
    Usage(String),
    /// Document or query failed to parse / compile (exit 3).
    Parse(String),
    /// A well-formed query failed during execution (exit 4).
    Query(String),
    /// Filesystem or network I/O failed (exit 5).
    Io(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Parse(_) => 3,
            CliError::Query(_) => 4,
            CliError::Io(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Parse(m) | CliError::Query(m) | CliError::Io(m) => m,
        }
    }
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Options {
    mode: Mode,
    vars: Vec<String>,
    source: Option<Source>,
    /// `None` means `--engine auto`: let the planner decide per query.
    engine: Option<Engine>,
    format: Format,
    explain: bool,
    stats: bool,
    kernels: KernelMode,
    threads: usize,
    /// `--connect` deadline for connect and each complete response
    /// (`None`: `--timeout 0`, block indefinitely).
    timeout: Option<Duration>,
    /// Non-fatal diagnostics emitted to stderr before running (e.g. the
    /// `--threads 0` clamp).
    warnings: Vec<String>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Mode {
    /// A single `--query`.
    Single(String),
    /// A `--batch` file of queries answered with shared compilation state.
    Batch(String),
    /// `--connect host:port`: act as a client of a running `pplxd` daemon.
    Remote(RemoteActions),
}

/// What to ask a `pplxd` daemon for, in protocol order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct RemoteActions {
    addr: String,
    /// `--load NAME`: send the `--file`/`--stdin` document as `LOAD NAME …`.
    load: Option<String>,
    /// `--insert/--delete/--relabel` against `--doc NAME`, in CLI order:
    /// complete `MUTATE NAME …` request lines.
    mutate: Vec<String>,
    /// `--query EXPR` with `--doc NAME` → `QUERY`; without → `QUERYALL`.
    query: Option<(Option<String>, String)>,
    /// `--stats` → `STATS`.
    stats: bool,
    /// `--evict NAME` → `EVICT NAME`.
    evict: Option<String>,
    /// `--shutdown` → `SHUTDOWN` (stops the daemon).
    shutdown: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Source {
    File(String),
    Terms(String),
    Stdin,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Table,
    Csv,
}

const USAGE: &str = "usage: pplx (--query <XPATH> | --batch <file>) [--vars a,b,...] \
(--file <path> | --terms <term-tree> | --stdin) \
[--engine ppl|acq|hcl|naive|auto] [--threads N] [--format table|csv] \
[--explain] [--stats] [--kernels dense|adaptive|adaptive_threaded|lazy]\n\
       pplx --connect <host:port> [--load <name>] [--doc <name>] [--query <XPATH>] \
[--vars a,b,...] [--insert '<parent> <index> <terms>'] [--delete <node>] \
[--relabel '<node> <label>'] [--stats] [--evict <name>] [--shutdown] [--timeout SECS]\n\
       pplx --help";

/// Full `--help` text (printed to stdout, exit 0).
const HELP: &str = "pplx — the PPL XPath query engine CLI\n\
\n\
Local modes answer queries in-process; --connect drives a running pplxd\n\
corpus daemon over its line protocol (LOAD/QUERY/QUERYALL/STATS/EVICT).\n\
With --connect, --query targets the --doc document, or every loaded\n\
document when --doc is omitted; --load NAME sends the --file/--stdin XML.\n\
--insert/--delete/--relabel edit the --doc document in place over the\n\
daemon's MUTATE verb (edits run before --query, in CLI order): --insert\n\
takes '<parent> <index> <terms>', --delete a node id, --relabel\n\
'<node> <label>'.  Node ids are preorder numbers as printed in answers.\n\
--timeout SECS (default 10, fractions allowed, 0 disables) bounds the\n\
connect and each complete response; a hung daemon exits 5 instead of\n\
blocking forever.  A refused connect is retried a few times with growing\n\
backoff to ride out daemon-startup races.\n\
\n\
EXIT CODES:\n\
    0  success\n\
    2  usage error (bad flags or flag combinations)\n\
    3  parse error (document or query failed to parse / compile)\n\
    4  query error (a well-formed query failed during execution,\n\
       including ERR responses from a pplxd daemon)\n\
    5  I/O error (file, stdin, or network)\n";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut query = None;
    let mut batch = None;
    let mut vars = Vec::new();
    let mut source = None;
    let mut engine = Some(Engine::Ppl);
    let mut format = Format::Table;
    let mut explain = false;
    let mut stats = false;
    let mut kernels = KernelMode::default();
    let mut threads = 1usize;
    let mut warnings = Vec::new();
    let mut connect = None;
    let mut load = None;
    let mut doc = None;
    let mut evict = None;
    let mut mutates: Vec<String> = Vec::new();
    let mut shutdown = false;
    let mut timeout = Some(DEFAULT_REMOTE_TIMEOUT);
    let mut timeout_flag = false;
    // Local-only flags actually given (vs. defaulted), so remote mode can
    // reject them instead of silently ignoring an override.
    let mut engine_flag = false;
    let mut kernels_flag = false;
    let mut format_flag = false;
    let mut threads_flag = false;

    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {flag}"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--query" | "-q" => query = Some(value(&mut i, "--query")?),
            "--batch" | "-b" => batch = Some(value(&mut i, "--batch")?),
            "--stats" => stats = true,
            "--connect" => connect = Some(value(&mut i, "--connect")?),
            "--load" => load = Some(value(&mut i, "--load")?),
            "--doc" => doc = Some(value(&mut i, "--doc")?),
            "--evict" => evict = Some(value(&mut i, "--evict")?),
            "--insert" => mutates.push(format!("INSERT {}", value(&mut i, "--insert")?.trim())),
            "--delete" => mutates.push(format!("DELETE {}", value(&mut i, "--delete")?.trim())),
            "--relabel" => mutates.push(format!("RELABEL {}", value(&mut i, "--relabel")?.trim())),
            "--shutdown" => shutdown = true,
            "--timeout" => {
                timeout_flag = true;
                let secs = value(&mut i, "--timeout")?;
                let secs: f64 = secs
                    .parse()
                    .map_err(|_| format!("--timeout expects seconds, got '{secs}'"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("--timeout expects a non-negative number, got '{secs}'"));
                }
                timeout = if secs == 0.0 {
                    None
                } else {
                    Some(Duration::from_secs_f64(secs))
                };
            }
            "--kernels" => {
                kernels_flag = true;
                let name = value(&mut i, "--kernels")?;
                kernels = KernelMode::parse(&name).ok_or_else(|| {
                    format!("unknown kernel mode '{name}' (expected dense|adaptive|adaptive_threaded|lazy)")
                })?;
            }
            "--threads" => {
                threads_flag = true;
                let n = value(&mut i, "--threads")?;
                threads = n
                    .parse::<usize>()
                    .map_err(|_| format!("--threads expects an integer, got '{n}'"))?;
                if threads == 0 {
                    warnings.push(
                        "--threads 0 makes no sense for serving; clamped to 1".to_string(),
                    );
                    threads = 1;
                }
            }
            "--vars" | "-v" => {
                vars = value(&mut i, "--vars")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().trim_start_matches('$').to_string())
                    .collect()
            }
            "--file" | "-f" => source = Some(Source::File(value(&mut i, "--file")?)),
            "--terms" | "-t" => source = Some(Source::Terms(value(&mut i, "--terms")?)),
            "--stdin" => source = Some(Source::Stdin),
            "--engine" => {
                engine_flag = true;
                let name = value(&mut i, "--engine")?;
                engine = match name.as_str() {
                    "auto" => None,
                    other => Some(Engine::parse(other).ok_or_else(|| {
                        format!("unknown engine '{other}' (expected ppl|acq|hcl|naive|auto)")
                    })?),
                }
            }
            "--format" => {
                format_flag = true;
                format = match value(&mut i, "--format")?.as_str() {
                    "table" => Format::Table,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format '{other}' (expected table|csv)")),
                }
            }
            "--explain" => explain = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        i += 1;
    }

    let mode = if let Some(addr) = connect {
        if batch.is_some() {
            return Err("--batch is a local mode; a pplxd daemon serves prepared corpora".into());
        }
        for (flag, present) in [
            ("--engine", engine_flag),
            ("--kernels", kernels_flag),
            ("--format", format_flag),
            ("--threads", threads_flag),
            ("--explain", explain),
            // (--terms with --load falls through to the clearer
            // "--load needs --file or --stdin" rejection below.)
            ("--terms", load.is_none() && matches!(source, Some(Source::Terms(_)))),
        ] {
            if present {
                return Err(format!(
                    "{flag} is local-only; the daemon's configuration applies with --connect"
                ));
            }
        }
        if load.is_none() && source.is_some() {
            return Err("--file/--stdin only feed --load when using --connect".into());
        }
        if load.is_some() && !matches!(source, Some(Source::File(_)) | Some(Source::Stdin)) {
            return Err("--load needs the XML from --file or --stdin".into());
        }
        let mutate = if mutates.is_empty() {
            Vec::new()
        } else {
            let target = doc
                .clone()
                .ok_or("--insert/--delete/--relabel need --doc <name> to edit")?;
            mutates
                .iter()
                .map(|edit| format!("MUTATE {target} {edit}"))
                .collect()
        };
        let doc_edits = !mutates.is_empty();
        let remote = RemoteActions {
            addr,
            load,
            mutate,
            query: query.map(|q| (doc.take(), q)),
            stats,
            evict,
            shutdown,
        };
        if doc.is_some() && !doc_edits {
            return Err("--doc only applies together with --query or an edit flag".into());
        }
        if remote.load.is_none()
            && remote.mutate.is_empty()
            && remote.query.is_none()
            && !remote.stats
            && remote.evict.is_none()
            && !remote.shutdown
        {
            return Err(format!(
                "--connect needs at least one of --load/--insert/--delete/--relabel/--query/--stats/--evict/--shutdown\n{USAGE}"
            ));
        }
        Mode::Remote(remote)
    } else {
        for (flag, present) in [
            ("--load", load.is_some()),
            ("--doc", doc.is_some()),
            ("--evict", evict.is_some()),
            ("--insert/--delete/--relabel", !mutates.is_empty()),
            ("--shutdown", shutdown),
            ("--timeout", timeout_flag),
        ] {
            if present {
                return Err(format!("{flag} only applies with --connect\n{USAGE}"));
            }
        }
        match (query, batch) {
            (Some(_), Some(_)) => {
                return Err(format!("--query and --batch are mutually exclusive\n{USAGE}"))
            }
            (Some(q), None) => {
                if threads != 1 {
                    return Err("--threads only applies to --batch serving".into());
                }
                Mode::Single(q)
            }
            (None, Some(b)) => Mode::Batch(b),
            (None, None) => return Err(format!("--query or --batch is required\n{USAGE}")),
        }
    };
    if matches!(mode, Mode::Single(_) | Mode::Batch(_)) && source.is_none() {
        return Err(format!("one of --file/--terms/--stdin is required\n{USAGE}"));
    }
    Ok(Options {
        mode,
        vars,
        source,
        engine,
        format,
        explain,
        stats,
        kernels,
        threads,
        timeout,
        warnings,
    })
}

/// Read the raw document text of a `--file`/`--stdin` source (I/O errors
/// only; parsing happens later).
fn read_source_text(source: &Source) -> Result<String, CliError> {
    match source {
        Source::Terms(terms) => Ok(terms.clone()),
        Source::File(path) => std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("cannot read {path}: {e}"))),
        Source::Stdin => {
            let mut content = String::new();
            std::io::stdin()
                .read_to_string(&mut content)
                .map_err(|e| CliError::Io(format!("cannot read stdin: {e}")))?;
            Ok(content)
        }
    }
}

fn load_document(source: &Source) -> Result<Document, CliError> {
    let content = read_source_text(source)?;
    match source {
        Source::Terms(_) => Document::from_terms(&content),
        Source::File(_) | Source::Stdin => Document::from_xml(&content),
    }
    .map_err(|e| CliError::Parse(e.to_string()))
}

/// Parse one batch line: `<query>` with an optional ` -> v1,v2` variable
/// suffix overriding the default variables.
fn parse_batch_line(line: &str, default_vars: &[String]) -> (String, Vec<String>) {
    match line.rsplit_once("->") {
        Some((query, vars)) => (
            query.trim().to_string(),
            vars.split(',')
                .map(|s| s.trim().trim_start_matches('$').to_string())
                .filter(|s| !s.is_empty())
                .collect(),
        ),
        None => (line.trim().to_string(), default_vars.to_vec()),
    }
}

/// Prepare one query as a plan: parse, compile, and either force the chosen
/// engine or let the planner decide (`--engine auto`).
fn plan_query(
    doc: &Document,
    query: &str,
    vars: &[String],
    engine: Option<Engine>,
) -> Result<QueryPlan, CliError> {
    let path = parse_path(query).map_err(|e| CliError::Parse(e.to_string()))?;
    let output: Vec<Var> = vars.iter().map(|n| Var::new(n)).collect();
    Planner::default()
        .plan_with(doc.session(), path, output, engine)
        .map_err(|e| CliError::Parse(e.to_string()))
}

fn render_answers(
    out: &mut String,
    doc: &Document,
    answers: &ppl_xpath::AnswerSet,
    vars: &[String],
    format: Format,
) {
    // 0-ary (satisfiability) answers get an explicit boolean rendering —
    // "N answer tuple(s) over ()" plus a bare "()" line reads like noise,
    // especially interleaved with --explain output.
    if vars.is_empty() {
        match format {
            Format::Table => out.push_str(&format!("satisfiable: {}\n", !answers.is_empty())),
            Format::Csv => {
                out.push_str("satisfiable\n");
                out.push_str(if answers.is_empty() { "false\n" } else { "true\n" });
            }
        }
        return;
    }
    match format {
        Format::Table => {
            out.push_str(&format!(
                "{} answer tuple(s) over ({})\n",
                answers.len(),
                vars.join(", ")
            ));
            out.push_str(&answers.render(doc));
        }
        Format::Csv => {
            out.push_str(&vars.join(","));
            out.push('\n');
            for tuple in answers.tuples() {
                let row: Vec<String> = tuple.iter().map(|n| doc.describe(*n)).collect();
                out.push_str(&row.join(","));
                out.push('\n');
            }
        }
    }
}

fn run_single(options: &Options, doc: &Document, query: &str) -> Result<String, CliError> {
    let plan = plan_query(doc, query, &options.vars, options.engine)?;
    let mut out = String::new();
    if options.explain {
        out.push_str(&plan.explain());
        out.push('\n');
    }
    let answers = doc
        .session()
        .execute(&plan)
        .map_err(|e| CliError::Query(e.to_string()))?;
    render_answers(&mut out, doc, &answers, &options.vars, options.format);
    Ok(out)
}

fn run_batch(options: &Options, doc: &Document, path: &str) -> Result<String, CliError> {
    let content = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    let mut plans: Vec<QueryPlan> = Vec::new();
    let mut specs: Vec<(String, Vec<String>)> = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (query, vars) = parse_batch_line(line, &options.vars);
        let plan = plan_query(doc, &query, &vars, options.engine)
            .map_err(|e| CliError::Parse(format!("{path}:{}: {}", lineno + 1, e.message())))?;
        plans.push(plan);
        specs.push((query, vars));
    }
    if plans.is_empty() {
        return Err(CliError::Usage(format!(
            "{path}: no queries (blank lines and # comments are skipped)"
        )));
    }

    let answers = doc
        .session()
        .answer_batch_parallel(&plans, options.threads)
        .map_err(|e| CliError::Query(e.to_string()))?;
    let mut out = String::new();
    for (i, ((query, vars), answer)) in specs.iter().zip(&answers).enumerate() {
        out.push_str(&format!("# [{}] {query}\n", i + 1));
        if options.explain {
            out.push_str(&format!(
                "# plan: {} engine ({})\n",
                plans[i].engine().name(),
                if plans[i].is_forced() { "forced" } else { "auto" },
            ));
        }
        render_answers(&mut out, doc, answer, vars, options.format);
    }
    if options.stats {
        let stats = doc.cache_stats();
        out.push_str(&format!(
            "# cache: {} hits, {} misses, {} matrices for {} queries on {} thread(s)\n",
            stats.hits,
            stats.misses,
            stats.compiled,
            plans.len(),
            options.threads,
        ));
        out.push_str(&format!("# kernels: {}\n", stats.kernels));
    }
    Ok(out)
}

/// Drive a running `pplxd` daemon (or router) over its line protocol.
/// Each action sends one request; `OK` payload lines are echoed to the
/// output, an `ERR` response becomes a query error (exit 4).
///
/// The connection rides on [`ShardClient`]: `--timeout` bounds the connect
/// and each complete response, a refused connect is retried with growing
/// backoff (daemon-startup race), and any wire failure — timeout, refused,
/// garbage — maps to an I/O error (exit 5) naming the deadline so a hung
/// daemon produces a diagnosis instead of a hung client.
fn run_remote(options: &Options, remote: &RemoteActions) -> Result<String, CliError> {
    let mut client = ShardClient::new(
        remote.addr.clone(),
        ClientConfig {
            connect_timeout: options.timeout,
            read_timeout: options.timeout,
            ..ClientConfig::default()
        },
    );
    let mut out = String::new();

    let mut request = |line: String, out: &mut String| -> Result<(), CliError> {
        match client.request(&line) {
            Ok(Ok(payload)) => {
                for line in payload {
                    out.push_str(&line);
                    out.push('\n');
                }
                Ok(())
            }
            Ok(Err(message)) => Err(CliError::Query(format!("daemon: {message}"))),
            Err(WireError::Timeout) => Err(CliError::Io(format!(
                "no response from {} within {:.1}s (--timeout); the daemon may be hung",
                remote.addr,
                options.timeout.unwrap_or_default().as_secs_f64(),
            ))),
            Err(WireError::Protocol(detail)) => Err(CliError::Io(format!(
                "malformed daemon response from {}: {detail}",
                remote.addr
            ))),
            Err(e) => Err(CliError::Io(format!("cannot reach {}: {e}", remote.addr))),
        }
    };

    if let Some(name) = &remote.load {
        let source = options
            .source
            .as_ref()
            .expect("parse_args requires a source for --load");
        // The protocol is line-based: collapse the XML onto one line.
        // Newlines only separate markup in the paper's data model (element
        // structure is what the tree keeps), so this is lossless here.
        let xml = read_source_text(source)?.replace(['\n', '\r'], " ");
        request(format!("LOAD {name} {}", xml.trim()), &mut out)?;
    }
    for line in &remote.mutate {
        request(line.clone(), &mut out)?;
    }
    if let Some((doc, query)) = &remote.query {
        let suffix = if options.vars.is_empty() {
            String::new()
        } else {
            format!(" -> {}", options.vars.join(","))
        };
        let line = match doc {
            Some(doc) => format!("QUERY {doc} {query}{suffix}"),
            None => format!("QUERYALL {query}{suffix}"),
        };
        request(line, &mut out)?;
    }
    if remote.stats {
        request("STATS".to_string(), &mut out)?;
    }
    if let Some(name) = &remote.evict {
        request(format!("EVICT {name}"), &mut out)?;
    }
    if remote.shutdown {
        request("SHUTDOWN".to_string(), &mut out)?;
    } else if client.is_connected() {
        // Best-effort courtesy QUIT; the daemon also handles disconnects.
        let _ = client.request("QUIT");
    }
    Ok(out)
}

fn run(options: &Options) -> Result<String, CliError> {
    if let Mode::Remote(remote) = &options.mode {
        return run_remote(options, remote);
    }
    let source = options
        .source
        .as_ref()
        .expect("parse_args requires a source for local modes");
    let doc = load_document(source)?;
    doc.set_kernel_mode(options.kernels);
    match &options.mode {
        Mode::Single(query) => run_single(options, &doc, query),
        Mode::Batch(path) => run_batch(options, &doc, path),
        Mode::Remote(_) => unreachable!("handled above"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}\n{USAGE}");
        return ExitCode::SUCCESS;
    }
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    for warning in &options.warnings {
        eprintln!("warning: {warning}");
    }
    match run(&options) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {}", error.message());
            ExitCode::from(error.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_full_argument_set() {
        let opts = parse_args(&args(&[
            "--query",
            "descendant::a[. is $x]",
            "--vars",
            "$x, y",
            "--terms",
            "r(a,b)",
            "--engine",
            "naive",
            "--format",
            "csv",
            "--explain",
        ]))
        .unwrap();
        assert_eq!(opts.mode, Mode::Single("descendant::a[. is $x]".into()));
        assert_eq!(opts.vars, vec!["x", "y"]);
        assert_eq!(opts.source, Some(Source::Terms("r(a,b)".into())));
        assert_eq!(opts.engine, Some(Engine::NaiveEnumeration));
        assert_eq!(opts.format, Format::Csv);
        assert!(opts.explain);
        assert!(!opts.stats);
        assert_eq!(opts.threads, 1);
    }

    #[test]
    fn parse_engine_flag_accepts_all_five_choices() {
        let engine_of = |name: &str| {
            parse_args(&args(&["--query", "child::a", "--terms", "r(a)", "--engine", name]))
                .unwrap()
                .engine
        };
        assert_eq!(engine_of("ppl"), Some(Engine::Ppl));
        assert_eq!(engine_of("acq"), Some(Engine::Acq));
        assert_eq!(engine_of("hcl"), Some(Engine::Hcl));
        assert_eq!(engine_of("naive"), Some(Engine::NaiveEnumeration));
        assert_eq!(engine_of("auto"), None);
        let default = parse_args(&args(&["--query", "child::a", "--terms", "r(a)"])).unwrap();
        assert_eq!(default.engine, Some(Engine::Ppl));
        assert!(parse_args(&args(&[
            "--query", "child::a", "--terms", "r(a)", "--engine", "zzz",
        ]))
        .unwrap_err()
        .contains("unknown engine"));
    }

    #[test]
    fn parse_kernel_mode_flag() {
        let opts = parse_args(&args(&[
            "--query", "child::a", "--terms", "r(a)", "--kernels", "dense",
        ]))
        .unwrap();
        assert_eq!(opts.kernels, KernelMode::Dense);
        let lazy = parse_args(&args(&[
            "--query", "child::a", "--terms", "r(a)", "--kernels", "lazy",
        ]))
        .unwrap();
        assert_eq!(lazy.kernels, KernelMode::Lazy);
        let default = parse_args(&args(&["--query", "child::a", "--terms", "r(a)"])).unwrap();
        assert_eq!(default.kernels, KernelMode::AdaptiveThreaded);
        assert!(parse_args(&args(&[
            "--query", "child::a", "--terms", "r(a)", "--kernels", "zippy",
        ]))
        .unwrap_err()
        .contains("unknown kernel mode"));
    }

    #[test]
    fn parse_batch_and_threads_arguments() {
        let opts = parse_args(&args(&[
            "--batch", "queries.txt", "--terms", "r(a)", "--stats", "--threads", "8",
        ]))
        .unwrap();
        assert_eq!(opts.mode, Mode::Batch("queries.txt".into()));
        assert!(opts.stats);
        assert_eq!(opts.threads, 8);
        assert!(opts.warnings.is_empty());
        assert!(parse_args(&args(&[
            "--batch", "q.txt", "--query", "child::a", "--terms", "r",
        ]))
        .unwrap_err()
        .contains("mutually exclusive"));
        // --threads 0 is clamped to 1 with a warning instead of erroring.
        let clamped = parse_args(&args(&[
            "--batch", "q.txt", "--terms", "r", "--threads", "0",
        ]))
        .unwrap();
        assert_eq!(clamped.threads, 1);
        assert_eq!(clamped.warnings.len(), 1);
        assert!(clamped.warnings[0].contains("clamped to 1"), "{:?}", clamped.warnings);
        assert!(parse_args(&args(&[
            "--batch", "q.txt", "--terms", "r", "--threads", "zero",
        ]))
        .unwrap_err()
        .contains("integer"));
        // --threads is a batch-serving knob; silently ignoring it on a
        // single query would fake multi-threaded measurements.
        assert!(parse_args(&args(&[
            "--query", "child::a", "--terms", "r(a)", "--threads", "8",
        ]))
        .unwrap_err()
        .contains("--batch"));
    }

    #[test]
    fn parse_connect_mode_arguments() {
        let opts = parse_args(&args(&[
            "--connect", "127.0.0.1:7878", "--query", "descendant::a[. is $x]",
            "--vars", "x", "--doc", "bib",
        ]))
        .unwrap();
        match &opts.mode {
            Mode::Remote(remote) => {
                assert_eq!(remote.addr, "127.0.0.1:7878");
                assert_eq!(
                    remote.query,
                    Some((Some("bib".to_string()), "descendant::a[. is $x]".to_string()))
                );
                assert!(!remote.stats && !remote.shutdown);
                assert!(remote.load.is_none() && remote.evict.is_none());
            }
            other => panic!("expected remote mode, got {other:?}"),
        }
        // No --doc → QUERYALL; --stats / --evict / --shutdown compose.
        let opts = parse_args(&args(&[
            "--connect", "h:1", "--query", "child::a", "--stats", "--evict", "bib",
            "--shutdown",
        ]))
        .unwrap();
        match &opts.mode {
            Mode::Remote(remote) => {
                assert_eq!(remote.query, Some((None, "child::a".to_string())));
                assert!(remote.stats && remote.shutdown);
                assert_eq!(remote.evict.as_deref(), Some("bib"));
            }
            other => panic!("expected remote mode, got {other:?}"),
        }
        // --load needs XML from --file or --stdin, not --terms.
        let opts =
            parse_args(&args(&["--connect", "h:1", "--load", "bib", "--file", "d.xml"])).unwrap();
        assert!(matches!(opts.mode, Mode::Remote(_)));
        assert!(parse_args(&args(&["--connect", "h:1", "--load", "bib", "--terms", "r(a)"]))
            .unwrap_err()
            .contains("--file or --stdin"));
        // Remote flags are rejected without --connect; an action is required.
        assert!(parse_args(&args(&["--load", "bib", "--file", "d.xml"]))
            .unwrap_err()
            .contains("--connect"));
        assert!(parse_args(&args(&["--shutdown", "--terms", "r", "--query", "child::a"]))
            .unwrap_err()
            .contains("--connect"));
        assert!(parse_args(&args(&["--connect", "h:1"]))
            .unwrap_err()
            .contains("at least one"));
        assert!(parse_args(&args(&["--connect", "h:1", "--batch", "q.txt"]))
            .unwrap_err()
            .contains("local mode"));
        assert!(parse_args(&args(&["--connect", "h:1", "--doc", "bib", "--stats"]))
            .unwrap_err()
            .contains("--query"));
        // Edit flags compose with --doc, keep CLI order, and build MUTATE
        // request lines; without --doc they are rejected.
        let opts = parse_args(&args(&[
            "--connect", "h:1", "--doc", "bib",
            "--insert", "0 2 book(author,title)",
            "--relabel", "3 subtitle",
            "--delete", "4",
        ]))
        .unwrap();
        match &opts.mode {
            Mode::Remote(remote) => assert_eq!(
                remote.mutate,
                vec![
                    "MUTATE bib INSERT 0 2 book(author,title)".to_string(),
                    "MUTATE bib RELABEL 3 subtitle".to_string(),
                    "MUTATE bib DELETE 4".to_string(),
                ]
            ),
            other => panic!("expected remote mode, got {other:?}"),
        }
        assert!(parse_args(&args(&["--connect", "h:1", "--delete", "4"]))
            .unwrap_err()
            .contains("--doc"));
        // Edit flags are remote-only.
        assert!(parse_args(&args(&[
            "--query", "child::a", "--terms", "r(a)", "--delete", "1",
        ]))
        .unwrap_err()
        .contains("--connect"));
        // Local-only flags are rejected, not silently ignored, with
        // --connect; so is a source that feeds nothing.
        for argv in [
            vec!["--connect", "h:1", "--stats", "--engine", "hcl"],
            vec!["--connect", "h:1", "--stats", "--kernels", "dense"],
            vec!["--connect", "h:1", "--stats", "--format", "csv"],
            vec!["--connect", "h:1", "--stats", "--threads", "4"],
            vec!["--connect", "h:1", "--stats", "--explain"],
            vec!["--connect", "h:1", "--stats", "--terms", "r(a)"],
        ] {
            let err = parse_args(&args(&argv)).unwrap_err();
            assert!(err.contains("local-only"), "{argv:?}: {err}");
        }
        assert!(parse_args(&args(&["--connect", "h:1", "--stats", "--file", "d.xml"]))
            .unwrap_err()
            .contains("--load"));
    }

    #[test]
    fn parse_timeout_flag() {
        // Default: 10s deadline on remote actions.
        let opts = parse_args(&args(&["--connect", "h:1", "--stats"])).unwrap();
        assert_eq!(opts.timeout, Some(DEFAULT_REMOTE_TIMEOUT));
        // Fractions are allowed (tests and impatient scripts); 0 disables.
        let opts =
            parse_args(&args(&["--connect", "h:1", "--stats", "--timeout", "0.25"])).unwrap();
        assert_eq!(opts.timeout, Some(Duration::from_millis(250)));
        let opts = parse_args(&args(&["--connect", "h:1", "--stats", "--timeout", "0"])).unwrap();
        assert_eq!(opts.timeout, None);
        // Garbage and negatives are usage errors.
        assert!(parse_args(&args(&["--connect", "h:1", "--stats", "--timeout", "soon"]))
            .unwrap_err()
            .contains("seconds"));
        assert!(parse_args(&args(&["--connect", "h:1", "--stats", "--timeout", "-1"]))
            .unwrap_err()
            .contains("non-negative"));
        // --timeout is a remote knob: local modes reject it.
        assert!(parse_args(&args(&["--query", "child::a", "--terms", "r(a)", "--timeout", "2"]))
            .unwrap_err()
            .contains("--connect"));
    }

    /// A daemon that accepts but never answers must cost `--timeout`, not
    /// forever, and the failure must classify as I/O (exit 5).
    #[test]
    fn remote_timeout_against_a_hung_daemon_is_an_io_error() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let _ = done_rx.recv(); // hold the connection open, silent
            drop(stream);
        });
        let opts = parse_args(&args(&[
            "--connect", &addr, "--stats", "--timeout", "0.3",
        ]))
        .unwrap();
        let start = std::time::Instant::now();
        let err = run(&opts).unwrap_err();
        assert!(matches!(err, CliError::Io(_)), "{err:?}");
        assert!(err.message().contains("--timeout"), "{err:?}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "a hung daemon must not hang the client"
        );
        drop(done_tx);
        server.join().unwrap();
    }

    /// A connect refused outright (after the bounded startup-race retries)
    /// classifies as I/O, quickly.
    #[test]
    fn remote_refused_connect_is_an_io_error() {
        // Bind-then-drop reserves a port that refuses connections.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let opts = parse_args(&args(&[
            "--connect", &addr, "--stats", "--timeout", "0.5",
        ]))
        .unwrap();
        let start = std::time::Instant::now();
        let err = run(&opts).unwrap_err();
        assert!(matches!(err, CliError::Io(_)), "{err:?}");
        assert!(err.message().contains("cannot reach"), "{err:?}");
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn cli_errors_map_to_distinct_exit_codes() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Parse("x".into()).exit_code(), 3);
        assert_eq!(CliError::Query("x".into()).exit_code(), 4);
        assert_eq!(CliError::Io("x".into()).exit_code(), 5);
        assert_eq!(CliError::Io("boom".into()).message(), "boom");
        // The exit codes are part of the CLI contract: documented in --help.
        for code in ["2  usage", "3  parse", "4  query", "5  I/O"] {
            assert!(HELP.contains(code), "HELP must document exit code {code}");
        }
    }

    #[test]
    fn error_classification_per_failure_kind() {
        // Missing file → I/O.
        let opts = parse_args(&args(&[
            "--query", "child::a", "--file", "/nonexistent/q.xml",
        ]))
        .unwrap();
        assert!(matches!(run(&opts).unwrap_err(), CliError::Io(_)));
        // Broken XML → parse.
        let tmp = std::env::temp_dir().join("pplx_exit_code_broken.xml");
        std::fs::write(&tmp, "<a><b></a>").unwrap();
        let opts = parse_args(&args(&[
            "--query", "child::a", "--file", tmp.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(matches!(run(&opts).unwrap_err(), CliError::Parse(_)));
        std::fs::remove_file(&tmp).ok();
        // Broken query → parse.
        let opts = parse_args(&args(&["--query", "child::(", "--terms", "r(a)"])).unwrap();
        assert!(matches!(run(&opts).unwrap_err(), CliError::Parse(_)));
        // Well-formed query failing at execution (acq disjunct budget) → query.
        let mut union = String::from("descendant::a[. is $x]");
        for _ in 0..9 {
            union = format!("({union}) union ({union})");
        }
        let opts_vec = args(&[
            "--query", &union, "--vars", "x", "--terms", "r(a,a)", "--engine", "acq",
        ]);
        let opts = parse_args(&opts_vec).unwrap();
        assert!(matches!(run(&opts).unwrap_err(), CliError::Query(_)));
        // Unreachable daemon → I/O.
        let opts = parse_args(&args(&["--connect", "127.0.0.1:1", "--stats"])).unwrap();
        assert!(matches!(run(&opts).unwrap_err(), CliError::Io(_)));
    }

    #[test]
    fn batch_lines_support_variable_suffixes() {
        let defaults = vec!["d".to_string()];
        assert_eq!(
            parse_batch_line("descendant::a[. is $x] -> $x", &defaults),
            ("descendant::a[. is $x]".to_string(), vec!["x".to_string()])
        );
        assert_eq!(
            parse_batch_line("child::a -> x, y", &defaults),
            ("child::a".to_string(), vec!["x".to_string(), "y".to_string()])
        );
        assert_eq!(
            parse_batch_line("child::a", &defaults),
            ("child::a".to_string(), defaults.clone())
        );
    }

    #[test]
    fn missing_required_arguments_are_reported() {
        assert!(parse_args(&args(&["--terms", "a"])).unwrap_err().contains("--query"));
        assert!(parse_args(&args(&["--query", "child::a"]))
            .unwrap_err()
            .contains("--file/--terms/--stdin"));
        assert!(parse_args(&args(&["--bogus"])).unwrap_err().contains("unknown argument"));
        assert!(parse_args(&args(&["--engine"])).unwrap_err().contains("missing value"));
    }

    #[test]
    fn run_ppl_engine_on_terms_source() {
        let opts = parse_args(&args(&[
            "--query",
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
            "--vars",
            "y,z",
            "--terms",
            "bib(book(author,title),book(author,author,title))",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.starts_with("3 answer tuple(s)"));
        assert!(out.contains("$y=author#"));
    }

    #[test]
    fn run_every_engine_and_auto_on_the_same_query() {
        let base = [
            "--query",
            "descendant::book[child::author[. is $a]]",
            "--vars",
            "a",
            "--terms",
            "bib(book(author,title),book(author,author,title))",
        ];
        let mut outputs = Vec::new();
        for engine in ["ppl", "acq", "hcl", "naive", "auto"] {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend(["--engine", engine]);
            outputs.push(run(&parse_args(&args(&argv)).unwrap()).unwrap());
        }
        for other in &outputs[1..] {
            assert_eq!(other, &outputs[0], "engines disagree on the CLI");
        }
    }

    #[test]
    fn run_csv_output_and_naive_engine() {
        let opts = parse_args(&args(&[
            "--query",
            "for $b in child::book return child::book[. is $b]/child::title[. is $t]",
            "--vars",
            "t",
            "--terms",
            "bib(book(title),book(title))",
            "--engine",
            "naive",
            "--format",
            "csv",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "t");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("title#"));
    }

    #[test]
    fn run_reports_fragment_violations() {
        let opts = parse_args(&args(&[
            "--query",
            "child::a[. is $x]/child::b[. is $x]",
            "--vars",
            "x",
            "--terms",
            "r(a(b))",
        ]))
        .unwrap();
        let err = run(&opts).unwrap_err();
        assert!(err.message().contains("NVS(/)"), "{err:?}");
        assert!(matches!(err, CliError::Parse(_)), "fragment violations are parse errors");
    }

    #[test]
    fn run_connect_round_trip_against_an_in_process_daemon() {
        use xpath_corpus::server::{bind, serve};
        use xpath_corpus::Corpus;
        let (listener, addr) = bind("127.0.0.1:0").unwrap();
        let corpus = std::sync::Arc::new(Corpus::new());
        let server = std::thread::spawn(move || serve(listener, corpus));
        let addr = addr.to_string();

        let tmp = std::env::temp_dir().join("pplx_connect_test_doc.xml");
        std::fs::write(&tmp, "<bib>\n  <book><author/><title/></book>\n</bib>\n").unwrap();
        let out = run(&parse_args(&args(&[
            "--connect", &addr, "--load", "bib", "--file", tmp.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        std::fs::remove_file(&tmp).ok();
        assert!(out.contains("loaded bib nodes=4"), "{out}");

        let out = run(&parse_args(&args(&[
            "--connect", &addr, "--doc", "bib",
            "--query", "descendant::author[. is $a]", "--vars", "a",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("vars=a tuples=1"), "{out}");
        assert!(out.contains("author#2"), "{out}");

        // No --doc → QUERYALL across the corpus; --stats appends counters.
        let out = run(&parse_args(&args(&[
            "--connect", &addr, "--query", "descendant::title[. is $t]", "--vars", "t",
            "--stats",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("doc=bib tuples=1"), "{out}");
        assert!(out.contains("documents=1"), "{out}");

        // Live edits: insert a second author, query through the same
        // invocation — the edit lands before the query.
        let out = run(&parse_args(&args(&[
            "--connect", &addr, "--doc", "bib",
            "--insert", "1 2 author",
            "--query", "descendant::author[. is $a]", "--vars", "a",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("mutated bib kind=insert nodes=5 epoch=1"), "{out}");
        assert!(out.contains("vars=a tuples=2"), "{out}");
        let out = run(&parse_args(&args(&[
            "--connect", &addr, "--doc", "bib", "--delete", "4", "--relabel", "3 subtitle",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("kind=delete nodes=4 epoch=2"), "{out}");
        assert!(out.contains("kind=relabel nodes=4 epoch=3"), "{out}");

        // A malformed edit is a daemon ERR: query error, exit 4.
        let err = run(&parse_args(&args(&[
            "--connect", &addr, "--doc", "bib", "--delete", "99",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(matches!(err, CliError::Query(_)), "{err:?}");
        assert_eq!(err.exit_code(), 4);
        assert!(err.message().contains("cannot edit document"), "{err:?}");
        let err = run(&parse_args(&args(&[
            "--connect", &addr, "--doc", "bib", "--insert", "0 0 a((",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(matches!(err, CliError::Query(_)), "{err:?}");
        assert_eq!(err.exit_code(), 4);

        // A daemon-side failure surfaces as a query error (exit 4).
        let err = run(&parse_args(&args(&[
            "--connect", &addr, "--doc", "missing", "--query", "child::a",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(matches!(err, CliError::Query(_)), "{err:?}");
        assert!(err.message().contains("unknown document"), "{err:?}");

        let out = run(&parse_args(&args(&[
            "--connect", &addr, "--evict", "bib", "--shutdown",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("evicted=true"), "{out}");
        server.join().unwrap().unwrap();
    }

    #[test]
    fn run_batch_answers_every_query_and_reports_cache_stats() {
        let path = std::env::temp_dir().join("pplx_batch_test_queries.txt");
        std::fs::write(
            &path,
            "# author/title pairs per book\n\
             descendant::book[child::author[. is $y] and child::title[. is $z]] -> y,z\n\
             \n\
             descendant::author[. is $a] -> a\n\
             descendant::book[child::author]\n",
        )
        .unwrap();
        let opts = parse_args(&args(&[
            "--batch",
            path.to_str().unwrap(),
            "--terms",
            "bib(book(author,title),book(author,author,title))",
            "--stats",
            "--threads",
            "4",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("# [1] descendant::book[child::author"));
        assert!(out.contains("3 answer tuple(s) over (y, z)"));
        assert!(out.contains("# [2] descendant::author"));
        assert!(out.contains("3 answer tuple(s) over (a)"));
        // The third line is a boolean (arity-0) query: normalised rendering.
        assert!(out.contains("# [3] "));
        assert!(out.contains("satisfiable: true"));
        assert!(!out.contains("answer tuple(s) over ()"), "{out}");
        // `descendant::book` and `child::author` repeat across the batch, so
        // the cache must report hits even when served on 4 threads.
        assert!(out.contains("# cache: "));
        assert!(!out.contains("# cache: 0 hits"), "{out}");
        assert!(out.contains("on 4 thread(s)"), "{out}");
        // Named steps compile to CSR successor lists, so the kernel line
        // must report sparse step dispatches.
        assert!(out.contains("# kernels: steps id/iv/sp/dn "), "{out}");
        assert!(!out.contains("steps id/iv/sp/dn 0/0/0/0"), "{out}");
    }

    #[test]
    fn run_batch_reports_compile_errors_with_line_numbers() {
        let path = std::env::temp_dir().join("pplx_batch_test_bad.txt");
        std::fs::write(&path, "child::a\nfor $x in child::a return child::b\n").unwrap();
        let opts = parse_args(&args(&[
            "--batch",
            path.to_str().unwrap(),
            "--terms",
            "r(a)",
        ]))
        .unwrap();
        let err = run(&opts).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.message().contains(":2:"), "{err:?}");
        assert!(err.message().contains("N(for)"), "{err:?}");
        assert!(matches!(err, CliError::Parse(_)));
    }

    #[test]
    fn run_batch_with_naive_engine_accepts_full_core_xpath() {
        // Historically --batch rejected --engine naive; plans serve it now.
        let path = std::env::temp_dir().join("pplx_batch_test_naive.txt");
        std::fs::write(&path, "for $x in child::a return child::a[. is $x] -> x\n").unwrap();
        let opts = parse_args(&args(&[
            "--batch",
            path.to_str().unwrap(),
            "--terms",
            "r(a,a)",
            "--engine",
            "naive",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        std::fs::remove_file(&path).ok();
        // The for-bound $x shadows the output variable, which therefore
        // ranges over all nodes of the (satisfiable) loop — 3 tuples.
        assert!(out.contains("3 answer tuple(s) over (x)"), "{out}");
    }

    #[test]
    fn run_explain_includes_pipeline_and_plan() {
        let opts = parse_args(&args(&[
            "--query",
            "descendant::a[. is $x]",
            "--vars",
            "x",
            "--terms",
            "r(a,a)",
            "--explain",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("PPLbin atoms"));
        assert!(out.contains("candidates"));
        assert!(out.contains("chosen       : ppl (forced by caller)"));
        assert!(out.contains("2 answer tuple(s)"));
        // Auto planning reports its decision for every engine.
        let auto = parse_args(&args(&[
            "--query",
            "descendant::a[. is $x]",
            "--vars",
            "x",
            "--terms",
            "r(a,a)",
            "--engine",
            "auto",
            "--explain",
        ]))
        .unwrap();
        let out = run(&auto).unwrap();
        for name in ["ppl", "acq", "hcl", "naive"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert!(out.contains("decision"));
    }
}
