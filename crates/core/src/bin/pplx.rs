//! `pplx` — a small command-line front end for the PPL query engine.
//!
//! ```text
//! USAGE:
//!     pplx --query <XPATH> [--vars y,z] (--file doc.xml | --terms 'a(b,c)' | --stdin)
//!          [--engine ppl|naive] [--format table|csv] [--explain]
//!
//! EXAMPLES:
//!     pplx --terms 'bib(book(author,title))' \
//!          --query 'descendant::book[child::author[. is $y] and child::title[. is $z]]' \
//!          --vars y,z
//!
//!     cat bib.xml | pplx --stdin --query 'descendant::title[. is $t]' --vars t --format csv
//! ```
//!
//! The tool compiles the query through the full PPL pipeline (rejecting
//! queries outside the fragment with Definition 1 diagnostics) unless
//! `--engine naive` is given, in which case any Core XPath 2.0 expression —
//! including `for` loops and variable sharing — is answered by the
//! specification engine.

use ppl_xpath::{Document, Engine, PplQuery};
use std::io::Read;
use std::process::ExitCode;
use xpath_ast::{parse_path, Var};

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Options {
    query: String,
    vars: Vec<String>,
    source: Source,
    engine: EngineChoice,
    format: Format,
    explain: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Source {
    File(String),
    Terms(String),
    Stdin,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineChoice {
    Ppl,
    Naive,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Table,
    Csv,
}

const USAGE: &str = "usage: pplx --query <XPATH> [--vars a,b,...] \
(--file <path> | --terms <term-tree> | --stdin) \
[--engine ppl|naive] [--format table|csv] [--explain]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut query = None;
    let mut vars = Vec::new();
    let mut source = None;
    let mut engine = EngineChoice::Ppl;
    let mut format = Format::Table;
    let mut explain = false;

    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {flag}"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--query" | "-q" => query = Some(value(&mut i, "--query")?),
            "--vars" | "-v" => {
                vars = value(&mut i, "--vars")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().trim_start_matches('$').to_string())
                    .collect()
            }
            "--file" | "-f" => source = Some(Source::File(value(&mut i, "--file")?)),
            "--terms" | "-t" => source = Some(Source::Terms(value(&mut i, "--terms")?)),
            "--stdin" => source = Some(Source::Stdin),
            "--engine" => {
                engine = match value(&mut i, "--engine")?.as_str() {
                    "ppl" => EngineChoice::Ppl,
                    "naive" => EngineChoice::Naive,
                    other => return Err(format!("unknown engine '{other}' (expected ppl|naive)")),
                }
            }
            "--format" => {
                format = match value(&mut i, "--format")?.as_str() {
                    "table" => Format::Table,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format '{other}' (expected table|csv)")),
                }
            }
            "--explain" => explain = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        i += 1;
    }

    Ok(Options {
        query: query.ok_or_else(|| format!("--query is required\n{USAGE}"))?,
        vars,
        source: source.ok_or_else(|| format!("one of --file/--terms/--stdin is required\n{USAGE}"))?,
        engine,
        format,
        explain,
    })
}

fn load_document(source: &Source) -> Result<Document, String> {
    match source {
        Source::Terms(terms) => Document::from_terms(terms).map_err(|e| e.to_string()),
        Source::File(path) => {
            let content =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Document::from_xml(&content).map_err(|e| e.to_string())
        }
        Source::Stdin => {
            let mut content = String::new();
            std::io::stdin()
                .read_to_string(&mut content)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            Document::from_xml(&content).map_err(|e| e.to_string())
        }
    }
}

fn run(options: &Options) -> Result<String, String> {
    let doc = load_document(&options.source)?;
    let var_names: Vec<&str> = options.vars.iter().map(String::as_str).collect();
    let vars: Vec<Var> = var_names.iter().map(|n| Var::new(n)).collect();

    let mut out = String::new();
    let answers = match options.engine {
        EngineChoice::Ppl => {
            let compiled =
                PplQuery::compile(&options.query, &var_names).map_err(|e| e.to_string())?;
            if options.explain {
                out.push_str(&compiled.explain());
                out.push('\n');
            }
            compiled.answers(&doc).map_err(|e| e.to_string())?
        }
        EngineChoice::Naive => {
            let path = parse_path(&options.query).map_err(|e| e.to_string())?;
            Engine::NaiveEnumeration
                .answer(&doc, &path, &vars)
                .map_err(|e| e.to_string())?
        }
    };

    match options.format {
        Format::Table => {
            out.push_str(&format!(
                "{} answer tuple(s) over ({})\n",
                answers.len(),
                options.vars.join(", ")
            ));
            out.push_str(&answers.render(&doc));
        }
        Format::Csv => {
            out.push_str(&options.vars.join(","));
            out.push('\n');
            for tuple in answers.tuples() {
                let row: Vec<String> = tuple.iter().map(|n| doc.describe(*n)).collect();
                out.push_str(&row.join(","));
                out.push('\n');
            }
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&options) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_full_argument_set() {
        let opts = parse_args(&args(&[
            "--query",
            "descendant::a[. is $x]",
            "--vars",
            "$x, y",
            "--terms",
            "r(a,b)",
            "--engine",
            "naive",
            "--format",
            "csv",
            "--explain",
        ]))
        .unwrap();
        assert_eq!(opts.query, "descendant::a[. is $x]");
        assert_eq!(opts.vars, vec!["x", "y"]);
        assert_eq!(opts.source, Source::Terms("r(a,b)".into()));
        assert_eq!(opts.engine, EngineChoice::Naive);
        assert_eq!(opts.format, Format::Csv);
        assert!(opts.explain);
    }

    #[test]
    fn missing_required_arguments_are_reported() {
        assert!(parse_args(&args(&["--terms", "a"])).unwrap_err().contains("--query"));
        assert!(parse_args(&args(&["--query", "child::a"]))
            .unwrap_err()
            .contains("--file/--terms/--stdin"));
        assert!(parse_args(&args(&["--bogus"])).unwrap_err().contains("unknown argument"));
        assert!(parse_args(&args(&["--engine"])).unwrap_err().contains("missing value"));
        assert!(parse_args(&args(&["--query", "x", "--terms", "a", "--engine", "zzz"]))
            .unwrap_err()
            .contains("unknown engine"));
    }

    #[test]
    fn run_ppl_engine_on_terms_source() {
        let opts = parse_args(&args(&[
            "--query",
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
            "--vars",
            "y,z",
            "--terms",
            "bib(book(author,title),book(author,author,title))",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.starts_with("3 answer tuple(s)"));
        assert!(out.contains("$y=author#"));
    }

    #[test]
    fn run_csv_output_and_naive_engine() {
        let opts = parse_args(&args(&[
            "--query",
            "for $b in child::book return child::book[. is $b]/child::title[. is $t]",
            "--vars",
            "t",
            "--terms",
            "bib(book(title),book(title))",
            "--engine",
            "naive",
            "--format",
            "csv",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "t");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("title#"));
    }

    #[test]
    fn run_reports_fragment_violations() {
        let opts = parse_args(&args(&[
            "--query",
            "child::a[. is $x]/child::b[. is $x]",
            "--vars",
            "x",
            "--terms",
            "r(a(b))",
        ]))
        .unwrap();
        let err = run(&opts).unwrap_err();
        assert!(err.contains("NVS(/)"));
    }

    #[test]
    fn run_explain_includes_pipeline() {
        let opts = parse_args(&args(&[
            "--query",
            "descendant::a[. is $x]",
            "--vars",
            "x",
            "--terms",
            "r(a,a)",
            "--explain",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("PPLbin atoms"));
        assert!(out.contains("2 answer tuple(s)"));
    }
}
