//! `pplx` — a small command-line front end for the PPL query engine.
//!
//! ```text
//! USAGE:
//!     pplx --query <XPATH> [--vars y,z] (--file doc.xml | --terms 'a(b,c)' | --stdin)
//!          [--engine ppl|naive] [--format table|csv] [--explain]
//!          [--kernels dense|adaptive|adaptive_threaded]
//!     pplx --batch <queries.txt> (--file doc.xml | --terms 'a(b,c)' | --stdin)
//!          [--vars y,z] [--format table|csv] [--stats]
//!          [--kernels dense|adaptive|adaptive_threaded]
//!
//! EXAMPLES:
//!     pplx --terms 'bib(book(author,title))' \
//!          --query 'descendant::book[child::author[. is $y] and child::title[. is $z]]' \
//!          --vars y,z
//!
//!     cat bib.xml | pplx --stdin --query 'descendant::title[. is $t]' --vars t --format csv
//!
//!     pplx --terms 'bib(book(author,title))' --batch workload.txt --stats
//! ```
//!
//! The tool compiles the query through the full PPL pipeline (rejecting
//! queries outside the fragment with Definition 1 diagnostics) unless
//! `--engine naive` is given, in which case any Core XPath 2.0 expression —
//! including `for` loops and variable sharing — is answered by the
//! specification engine.
//!
//! ## Batch mode
//!
//! `--batch <file>` answers many queries over one document with shared
//! compilation state (`Document::answer_batch`): PPLbin subterms occurring
//! in several queries are compiled once.  The file holds one query per
//! line; blank lines and `#` comments are skipped.  A line may override the
//! output variables with a ` -> v1,v2` suffix, otherwise `--vars` applies.
//! `--stats` appends the matrix-cache hit/miss counters and the per-kernel
//! dispatch counts of the adaptive relation kernels after the answers, so a
//! representation regression (e.g. an axis step densifying) is visible from
//! the CLI.  `--kernels` selects the compilation kernels (the dense
//! baseline exists for A/B timing against the adaptive default).  Batch
//! mode always uses the PPL engine.

use ppl_xpath::{Document, Engine, KernelMode, PplQuery};
use std::io::Read;
use std::process::ExitCode;
use xpath_ast::{parse_path, Var};

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Options {
    mode: Mode,
    vars: Vec<String>,
    source: Source,
    engine: EngineChoice,
    format: Format,
    explain: bool,
    stats: bool,
    kernels: KernelMode,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Mode {
    /// A single `--query`.
    Single(String),
    /// A `--batch` file of queries answered with shared compilation state.
    Batch(String),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Source {
    File(String),
    Terms(String),
    Stdin,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineChoice {
    Ppl,
    Naive,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Table,
    Csv,
}

const USAGE: &str = "usage: pplx (--query <XPATH> | --batch <file>) [--vars a,b,...] \
(--file <path> | --terms <term-tree> | --stdin) \
[--engine ppl|naive] [--format table|csv] [--explain] [--stats] \
[--kernels dense|adaptive|adaptive_threaded]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut query = None;
    let mut batch = None;
    let mut vars = Vec::new();
    let mut source = None;
    let mut engine = EngineChoice::Ppl;
    let mut format = Format::Table;
    let mut explain = false;
    let mut stats = false;
    let mut kernels = KernelMode::default();

    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {flag}"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--query" | "-q" => query = Some(value(&mut i, "--query")?),
            "--batch" | "-b" => batch = Some(value(&mut i, "--batch")?),
            "--stats" => stats = true,
            "--kernels" => {
                let name = value(&mut i, "--kernels")?;
                kernels = KernelMode::parse(&name).ok_or_else(|| {
                    format!("unknown kernel mode '{name}' (expected dense|adaptive|adaptive_threaded)")
                })?;
            }
            "--vars" | "-v" => {
                vars = value(&mut i, "--vars")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().trim_start_matches('$').to_string())
                    .collect()
            }
            "--file" | "-f" => source = Some(Source::File(value(&mut i, "--file")?)),
            "--terms" | "-t" => source = Some(Source::Terms(value(&mut i, "--terms")?)),
            "--stdin" => source = Some(Source::Stdin),
            "--engine" => {
                engine = match value(&mut i, "--engine")?.as_str() {
                    "ppl" => EngineChoice::Ppl,
                    "naive" => EngineChoice::Naive,
                    other => return Err(format!("unknown engine '{other}' (expected ppl|naive)")),
                }
            }
            "--format" => {
                format = match value(&mut i, "--format")?.as_str() {
                    "table" => Format::Table,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format '{other}' (expected table|csv)")),
                }
            }
            "--explain" => explain = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        i += 1;
    }

    let mode = match (query, batch) {
        (Some(_), Some(_)) => {
            return Err(format!("--query and --batch are mutually exclusive\n{USAGE}"))
        }
        (Some(q), None) => Mode::Single(q),
        (None, Some(b)) => {
            if engine == EngineChoice::Naive {
                return Err("--batch always uses the PPL engine (drop --engine naive)".into());
            }
            Mode::Batch(b)
        }
        (None, None) => return Err(format!("--query or --batch is required\n{USAGE}")),
    };
    Ok(Options {
        mode,
        vars,
        source: source.ok_or_else(|| format!("one of --file/--terms/--stdin is required\n{USAGE}"))?,
        engine,
        format,
        explain,
        stats,
        kernels,
    })
}

fn load_document(source: &Source) -> Result<Document, String> {
    match source {
        Source::Terms(terms) => Document::from_terms(terms).map_err(|e| e.to_string()),
        Source::File(path) => {
            let content =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Document::from_xml(&content).map_err(|e| e.to_string())
        }
        Source::Stdin => {
            let mut content = String::new();
            std::io::stdin()
                .read_to_string(&mut content)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            Document::from_xml(&content).map_err(|e| e.to_string())
        }
    }
}

/// Parse one batch line: `<query>` with an optional ` -> v1,v2` variable
/// suffix overriding the default variables.
fn parse_batch_line(line: &str, default_vars: &[String]) -> (String, Vec<String>) {
    match line.rsplit_once("->") {
        Some((query, vars)) => (
            query.trim().to_string(),
            vars.split(',')
                .map(|s| s.trim().trim_start_matches('$').to_string())
                .filter(|s| !s.is_empty())
                .collect(),
        ),
        None => (line.trim().to_string(), default_vars.to_vec()),
    }
}

fn render_answers(
    out: &mut String,
    doc: &Document,
    answers: &ppl_xpath::AnswerSet,
    vars: &[String],
    format: Format,
) {
    match format {
        Format::Table => {
            out.push_str(&format!(
                "{} answer tuple(s) over ({})\n",
                answers.len(),
                vars.join(", ")
            ));
            out.push_str(&answers.render(doc));
        }
        Format::Csv => {
            out.push_str(&vars.join(","));
            out.push('\n');
            for tuple in answers.tuples() {
                let row: Vec<String> = tuple.iter().map(|n| doc.describe(*n)).collect();
                out.push_str(&row.join(","));
                out.push('\n');
            }
        }
    }
}

fn run_single(options: &Options, doc: &Document, query: &str) -> Result<String, String> {
    let var_names: Vec<&str> = options.vars.iter().map(String::as_str).collect();
    let vars: Vec<Var> = var_names.iter().map(|n| Var::new(n)).collect();

    let mut out = String::new();
    let answers = match options.engine {
        EngineChoice::Ppl => {
            let compiled = PplQuery::compile(query, &var_names).map_err(|e| e.to_string())?;
            if options.explain {
                out.push_str(&compiled.explain());
                out.push('\n');
            }
            doc.answer(&compiled).map_err(|e| e.to_string())?
        }
        EngineChoice::Naive => {
            let path = parse_path(query).map_err(|e| e.to_string())?;
            Engine::NaiveEnumeration
                .answer(doc, &path, &vars)
                .map_err(|e| e.to_string())?
        }
    };
    render_answers(&mut out, doc, &answers, &options.vars, options.format);
    Ok(out)
}

fn run_batch(options: &Options, doc: &Document, path: &str) -> Result<String, String> {
    let content =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut compiled = Vec::new();
    let mut specs: Vec<(String, Vec<String>)> = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (query, vars) = parse_batch_line(line, &options.vars);
        let var_names: Vec<&str> = vars.iter().map(String::as_str).collect();
        let q = PplQuery::compile(&query, &var_names)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        compiled.push(q);
        specs.push((query, vars));
    }
    if compiled.is_empty() {
        return Err(format!("{path}: no queries (blank lines and # comments are skipped)"));
    }

    let answers = doc.answer_batch(&compiled).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for (i, ((query, vars), answer)) in specs.iter().zip(&answers).enumerate() {
        out.push_str(&format!("# [{}] {query}\n", i + 1));
        render_answers(&mut out, doc, answer, vars, options.format);
    }
    if options.stats {
        let stats = doc.cache_stats();
        out.push_str(&format!(
            "# cache: {} hits, {} misses, {} matrices for {} queries\n",
            stats.hits,
            stats.misses,
            stats.compiled,
            compiled.len()
        ));
        out.push_str(&format!("# kernels: {}\n", stats.kernels));
    }
    Ok(out)
}

fn run(options: &Options) -> Result<String, String> {
    let doc = load_document(&options.source)?;
    doc.set_kernel_mode(options.kernels);
    match &options.mode {
        Mode::Single(query) => run_single(options, &doc, query),
        Mode::Batch(path) => run_batch(options, &doc, path),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&options) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_full_argument_set() {
        let opts = parse_args(&args(&[
            "--query",
            "descendant::a[. is $x]",
            "--vars",
            "$x, y",
            "--terms",
            "r(a,b)",
            "--engine",
            "naive",
            "--format",
            "csv",
            "--explain",
        ]))
        .unwrap();
        assert_eq!(opts.mode, Mode::Single("descendant::a[. is $x]".into()));
        assert_eq!(opts.vars, vec!["x", "y"]);
        assert_eq!(opts.source, Source::Terms("r(a,b)".into()));
        assert_eq!(opts.engine, EngineChoice::Naive);
        assert_eq!(opts.format, Format::Csv);
        assert!(opts.explain);
        assert!(!opts.stats);
    }

    #[test]
    fn parse_kernel_mode_flag() {
        let opts = parse_args(&args(&[
            "--query", "child::a", "--terms", "r(a)", "--kernels", "dense",
        ]))
        .unwrap();
        assert_eq!(opts.kernels, KernelMode::Dense);
        let default = parse_args(&args(&["--query", "child::a", "--terms", "r(a)"])).unwrap();
        assert_eq!(default.kernels, KernelMode::AdaptiveThreaded);
        assert!(parse_args(&args(&[
            "--query", "child::a", "--terms", "r(a)", "--kernels", "zippy",
        ]))
        .unwrap_err()
        .contains("unknown kernel mode"));
    }

    #[test]
    fn parse_batch_arguments() {
        let opts = parse_args(&args(&[
            "--batch", "queries.txt", "--terms", "r(a)", "--stats",
        ]))
        .unwrap();
        assert_eq!(opts.mode, Mode::Batch("queries.txt".into()));
        assert!(opts.stats);
        assert!(parse_args(&args(&[
            "--batch", "q.txt", "--query", "child::a", "--terms", "r",
        ]))
        .unwrap_err()
        .contains("mutually exclusive"));
        assert!(parse_args(&args(&[
            "--batch", "q.txt", "--terms", "r", "--engine", "naive",
        ]))
        .unwrap_err()
        .contains("PPL engine"));
    }

    #[test]
    fn batch_lines_support_variable_suffixes() {
        let defaults = vec!["d".to_string()];
        assert_eq!(
            parse_batch_line("descendant::a[. is $x] -> $x", &defaults),
            ("descendant::a[. is $x]".to_string(), vec!["x".to_string()])
        );
        assert_eq!(
            parse_batch_line("child::a -> x, y", &defaults),
            ("child::a".to_string(), vec!["x".to_string(), "y".to_string()])
        );
        assert_eq!(
            parse_batch_line("child::a", &defaults),
            ("child::a".to_string(), defaults.clone())
        );
    }

    #[test]
    fn missing_required_arguments_are_reported() {
        assert!(parse_args(&args(&["--terms", "a"])).unwrap_err().contains("--query"));
        assert!(parse_args(&args(&["--query", "child::a"]))
            .unwrap_err()
            .contains("--file/--terms/--stdin"));
        assert!(parse_args(&args(&["--bogus"])).unwrap_err().contains("unknown argument"));
        assert!(parse_args(&args(&["--engine"])).unwrap_err().contains("missing value"));
        assert!(parse_args(&args(&["--query", "x", "--terms", "a", "--engine", "zzz"]))
            .unwrap_err()
            .contains("unknown engine"));
    }

    #[test]
    fn run_ppl_engine_on_terms_source() {
        let opts = parse_args(&args(&[
            "--query",
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
            "--vars",
            "y,z",
            "--terms",
            "bib(book(author,title),book(author,author,title))",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.starts_with("3 answer tuple(s)"));
        assert!(out.contains("$y=author#"));
    }

    #[test]
    fn run_csv_output_and_naive_engine() {
        let opts = parse_args(&args(&[
            "--query",
            "for $b in child::book return child::book[. is $b]/child::title[. is $t]",
            "--vars",
            "t",
            "--terms",
            "bib(book(title),book(title))",
            "--engine",
            "naive",
            "--format",
            "csv",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "t");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("title#"));
    }

    #[test]
    fn run_reports_fragment_violations() {
        let opts = parse_args(&args(&[
            "--query",
            "child::a[. is $x]/child::b[. is $x]",
            "--vars",
            "x",
            "--terms",
            "r(a(b))",
        ]))
        .unwrap();
        let err = run(&opts).unwrap_err();
        assert!(err.contains("NVS(/)"));
    }

    #[test]
    fn run_batch_answers_every_query_and_reports_cache_stats() {
        let path = std::env::temp_dir().join("pplx_batch_test_queries.txt");
        std::fs::write(
            &path,
            "# author/title pairs per book\n\
             descendant::book[child::author[. is $y] and child::title[. is $z]] -> y,z\n\
             \n\
             descendant::author[. is $a] -> a\n\
             descendant::book[child::author]\n",
        )
        .unwrap();
        let opts = parse_args(&args(&[
            "--batch",
            path.to_str().unwrap(),
            "--terms",
            "bib(book(author,title),book(author,author,title))",
            "--stats",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("# [1] descendant::book[child::author"));
        assert!(out.contains("3 answer tuple(s) over (y, z)"));
        assert!(out.contains("# [2] descendant::author"));
        assert!(out.contains("3 answer tuple(s) over (a)"));
        // The third line is a boolean (arity-0) query: one empty tuple.
        assert!(out.contains("# [3] "));
        assert!(out.contains("1 answer tuple(s) over ()"));
        // `descendant::book` and `child::author` repeat across the batch, so
        // the cache must report hits.
        assert!(out.contains("# cache: "));
        assert!(!out.contains("# cache: 0 hits"), "{out}");
        // Named steps compile to CSR successor lists, so the kernel line
        // must report sparse step dispatches.
        assert!(out.contains("# kernels: steps id/iv/sp/dn "), "{out}");
        assert!(!out.contains("steps id/iv/sp/dn 0/0/0/0"), "{out}");
    }

    #[test]
    fn run_batch_reports_compile_errors_with_line_numbers() {
        let path = std::env::temp_dir().join("pplx_batch_test_bad.txt");
        std::fs::write(&path, "child::a\nfor $x in child::a return child::b\n").unwrap();
        let opts = parse_args(&args(&[
            "--batch",
            path.to_str().unwrap(),
            "--terms",
            "r(a)",
        ]))
        .unwrap();
        let err = run(&opts).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains(":2:"), "{err}");
        assert!(err.contains("N(for)"), "{err}");
    }

    #[test]
    fn run_explain_includes_pipeline() {
        let opts = parse_args(&args(&[
            "--query",
            "descendant::a[. is $x]",
            "--vars",
            "x",
            "--terms",
            "r(a,a)",
            "--explain",
        ]))
        .unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("PPLbin atoms"));
        assert!(out.contains("2 answer tuple(s)"));
    }
}
