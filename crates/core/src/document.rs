//! Documents — trees with convenient constructors, node accessors and a
//! per-document matrix cache for amortized multi-query evaluation.
//!
//! `Document` predates [`Session`] and is kept as a thin shim over it: every
//! document *is* a session plus the legacy convenience surface
//! ([`Document::answer`], [`Document::answer_batch`], serialisation
//! helpers).  New code that serves concurrent traffic should use
//! [`Session`] and prepared [`QueryPlan`]s directly; `Document` remains the
//! simplest way to run one-off queries.
//!
//! [`QueryPlan`]: crate::QueryPlan

use crate::query::{AnswerSet, PplQuery, QueryError};
use crate::session::Session;
use std::fmt;
use xpath_ast::BinExpr;
use xpath_pplbin::{CacheStats, KernelMode, KernelStats, NodeMatrix};
use xpath_tree::{NodeId, Tree, TreeError};
use xpath_xml::{ParseOptions, XmlError};

/// Errors raised while loading a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocumentError {
    /// XML parsing failed.
    Xml(XmlError),
    /// Term-syntax parsing failed.
    Terms(TreeError),
}

impl fmt::Display for DocumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocumentError::Xml(e) => write!(f, "failed to parse XML document: {e}"),
            DocumentError::Terms(e) => write!(f, "failed to parse term document: {e}"),
        }
    }
}

impl std::error::Error for DocumentError {}

/// An XML document abstracted to the paper's data model: an unranked,
/// sibling-ordered, labelled tree.
///
/// Every document owns a [`Session`] — and through it a thread-safe
/// [`SharedMatrixStore`]: the `|t|³` PPLbin matrix compilation of Theorem 1
/// depends only on the *(tree, subterm)* pair, so the store hash-conses
/// subterms and memoises their compiled matrices.  Repeated
/// [`PplQuery::answers`] calls and the batched [`Document::answer_batch`]
/// API reuse each compiled matrix instead of paying the compilation again;
/// [`Document::cache_stats`] exposes the hit/miss counters.
///
/// Since the store moved behind sharded locks, `Document` is `Send + Sync`:
/// one instance can answer queries from many threads (historically the
/// cache used `RefCell` and each worker thread needed its own clone).
/// Cloning is cheap and *shares* the tree and the cache state.
///
/// [`SharedMatrixStore`]: xpath_pplbin::SharedMatrixStore
#[derive(Debug, Clone)]
pub struct Document {
    session: Session,
}

const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<Document>();

impl Document {
    /// Parse an XML document (elements only, matching the paper's data
    /// model).
    pub fn from_xml(xml: &str) -> Result<Document, DocumentError> {
        Ok(Document { session: Session::from_xml(xml)? })
    }

    /// Parse an XML document with explicit [`ParseOptions`] (e.g. to keep
    /// text nodes as `#text` leaves).
    pub fn from_xml_with(xml: &str, options: &ParseOptions) -> Result<Document, DocumentError> {
        Ok(Document { session: Session::from_xml_with(xml, options)? })
    }

    /// Parse the compact term syntax `a(b,c(d))`.
    pub fn from_terms(terms: &str) -> Result<Document, DocumentError> {
        Ok(Document { session: Session::from_terms(terms)? })
    }

    /// Wrap an already constructed tree.
    pub fn from_tree(tree: Tree) -> Document {
        Document { session: Session::from_tree(tree) }
    }

    /// The serving session backing this document (plans, parallel batches
    /// and streaming answers live there).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The underlying tree.
    pub fn tree(&self) -> &Tree {
        self.session.tree()
    }

    /// Number of nodes `|t|`.
    pub fn len(&self) -> usize {
        self.session.len()
    }

    /// Documents always have a root, so this is always `false`.
    pub fn is_empty(&self) -> bool {
        self.session.is_empty()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.session.root()
    }

    /// Label of a node.
    pub fn label(&self, node: NodeId) -> &str {
        self.session.label(node)
    }

    /// Render a node as a short human-readable description
    /// (`label#preorder`), useful when printing answer tuples.
    pub fn describe(&self, node: NodeId) -> String {
        self.session.describe(node)
    }

    /// Serialise back to compact XML.
    pub fn to_xml(&self) -> String {
        xpath_xml::to_xml(self.tree())
    }

    /// Serialise to the compact term syntax.
    pub fn to_terms(&self) -> String {
        self.tree().to_terms()
    }

    // -- cached evaluation --------------------------------------------------

    /// Evaluate a PPLbin expression to its Boolean matrix through the
    /// session cache: structurally equal subterms — from this call or any
    /// earlier query over this document — are compiled exactly once.
    pub fn eval_binexpr(&self, expr: &BinExpr) -> NodeMatrix {
        self.session.store().eval(self.tree(), expr)
    }

    /// Hit/miss counters of the document's matrix cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.session.cache_stats()
    }

    /// Per-kernel dispatch counters of the relation kernels behind the
    /// cache (see `xpath_pplbin::KernelStats`).
    pub fn kernel_stats(&self) -> KernelStats {
        self.session.kernel_stats()
    }

    /// Select which relation kernels compile this document's matrices
    /// (adaptive + threaded by default; the dense mode exists for the E11
    /// ablation benchmark).  Already-compiled entries are kept.
    pub fn set_kernel_mode(&self, mode: KernelMode) {
        self.session.set_kernel_mode(mode);
    }

    /// Drop every cached matrix (e.g. to measure cold evaluation).
    pub fn clear_cache(&self) {
        self.session.clear_cache();
    }

    /// Answer one compiled query through the document cache.  Equivalent to
    /// [`PplQuery::answers`], reading as `document.answer(&query)`.
    pub fn answer(&self, query: &PplQuery) -> Result<AnswerSet, QueryError> {
        query.answers(self)
    }

    /// Answer a batch of compiled queries with shared state: every PPLbin
    /// subterm occurring in the batch is compiled once and reused across
    /// queries (and across any earlier queries on this document).  Answer
    /// sets are returned in input order.
    ///
    /// This is the sequential legacy shim; for multi-threaded serving,
    /// prepare [`QueryPlan`]s and use [`Session::answer_batch_parallel`].
    ///
    /// [`QueryPlan`]: crate::QueryPlan
    pub fn answer_batch(&self, queries: &[PplQuery]) -> Result<Vec<AnswerSet>, QueryError> {
        queries.iter().map(|q| q.answers(self)).collect()
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_terms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_xml_and_terms_agree() {
        let a = Document::from_xml("<a><b/><c><d/></c></a>").unwrap();
        let b = Document::from_terms("a(b,c(d))").unwrap();
        assert_eq!(a.to_terms(), b.to_terms());
        assert_eq!(a.len(), 4);
        assert_eq!(a.label(a.root()), "a");
        assert_eq!(a.to_xml(), "<a><b/><c><d/></c></a>");
        assert_eq!(format!("{a}"), "a(b,c(d))");
        assert!(!a.is_empty());
    }

    #[test]
    fn errors_are_wrapped() {
        assert!(matches!(
            Document::from_xml("<a><b></a>"),
            Err(DocumentError::Xml(_))
        ));
        assert!(matches!(
            Document::from_terms("a(("),
            Err(DocumentError::Terms(_))
        ));
        let err = Document::from_xml("").unwrap_err();
        assert!(err.to_string().contains("XML"));
    }

    #[test]
    fn describe_nodes() {
        let d = Document::from_terms("a(b,c)").unwrap();
        assert_eq!(d.describe(d.root()), "a#0");
        let c = d.tree().nodes_with_label_str("c")[0];
        assert_eq!(d.describe(c), "c#2");
    }

    #[test]
    fn repeated_queries_hit_the_document_cache() {
        let d = Document::from_terms("bib(book(author,title),book(author,author,title))")
            .unwrap();
        let q = PplQuery::compile(
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
            &["y", "z"],
        )
        .unwrap();
        assert_eq!(d.cache_stats().lookups(), 0);
        let first = d.answer(&q).unwrap();
        let after_first = d.cache_stats();
        assert!(after_first.misses > 0, "first run must compile matrices");
        let second = d.answer(&q).unwrap();
        let after_second = d.cache_stats();
        assert_eq!(first, second);
        assert_eq!(
            after_second.misses, after_first.misses,
            "second run must not recompile"
        );
        assert!(after_second.hits > after_first.hits);
        d.clear_cache();
        assert_eq!(d.cache_stats().lookups(), 0);
        assert_eq!(d.answer(&q).unwrap(), first);
    }

    #[test]
    fn answer_batch_matches_per_query_answers_and_shares_matrices() {
        let d = Document::from_terms("bib(book(author,title),book(author,author,title))")
            .unwrap();
        let queries = [
            PplQuery::compile("descendant::book[child::author[. is $a]]", &["a"]).unwrap(),
            PplQuery::compile("descendant::book[child::title[. is $t]]", &["t"]).unwrap(),
            PplQuery::compile("descendant::book[child::author[. is $a]]", &["a"]).unwrap(),
        ];
        let batch = d.answer_batch(&queries).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], batch[2], "equal queries give equal answers");
        for (q, got) in queries.iter().zip(&batch) {
            let fresh = Document::from_tree(d.tree().clone());
            assert_eq!(q.answers_cold(&fresh).unwrap(), *got);
        }
        // `descendant::book` is shared by all three queries; with hash
        // consing it is compiled exactly once.
        let stats = d.cache_stats();
        assert!(stats.hits > 0, "batch must reuse shared subterms: {stats:?}");
        assert!(d.answer_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn cached_binexpr_evaluation_matches_cold() {
        use xpath_ast::binexpr::from_variable_free_path;
        use xpath_ast::parse_path;
        let d = Document::from_terms("a(b(c),b,c)").unwrap();
        let bin =
            from_variable_free_path(&parse_path("descendant::* except child::*").unwrap())
                .unwrap();
        let warm = d.eval_binexpr(&bin);
        assert_eq!(warm, xpath_pplbin::answer_binary(d.tree(), &bin));
        assert_eq!(d.eval_binexpr(&bin), warm);
        // Cloning a document shares its session (tree and cache state).
        let clone = d.clone();
        assert_eq!(clone.cache_stats(), d.cache_stats());
    }

    #[test]
    fn documents_answer_from_multiple_threads() {
        let d = Document::from_terms("bib(book(author,title),book(author,author,title))")
            .unwrap();
        let q = PplQuery::compile("descendant::author[. is $a]", &["a"]).unwrap();
        let expected = d.answer(&q).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    assert_eq!(d.answer(&q).unwrap(), expected);
                });
            }
        });
    }
}
