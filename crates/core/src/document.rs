//! Documents — trees with convenient constructors and node accessors.

use std::fmt;
use xpath_tree::{NodeId, Tree, TreeError};
use xpath_xml::{parse_with, ParseOptions, XmlError};

/// Errors raised while loading a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocumentError {
    /// XML parsing failed.
    Xml(XmlError),
    /// Term-syntax parsing failed.
    Terms(TreeError),
}

impl fmt::Display for DocumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocumentError::Xml(e) => write!(f, "failed to parse XML document: {e}"),
            DocumentError::Terms(e) => write!(f, "failed to parse term document: {e}"),
        }
    }
}

impl std::error::Error for DocumentError {}

/// An XML document abstracted to the paper's data model: an unranked,
/// sibling-ordered, labelled tree.
#[derive(Debug, Clone)]
pub struct Document {
    tree: Tree,
}

impl Document {
    /// Parse an XML document (elements only, matching the paper's data
    /// model).
    pub fn from_xml(xml: &str) -> Result<Document, DocumentError> {
        Self::from_xml_with(xml, &ParseOptions::default())
    }

    /// Parse an XML document with explicit [`ParseOptions`] (e.g. to keep
    /// text nodes as `#text` leaves).
    pub fn from_xml_with(xml: &str, options: &ParseOptions) -> Result<Document, DocumentError> {
        Ok(Document {
            tree: parse_with(xml, options).map_err(DocumentError::Xml)?,
        })
    }

    /// Parse the compact term syntax `a(b,c(d))`.
    pub fn from_terms(terms: &str) -> Result<Document, DocumentError> {
        Ok(Document {
            tree: Tree::from_terms(terms).map_err(DocumentError::Terms)?,
        })
    }

    /// Wrap an already constructed tree.
    pub fn from_tree(tree: Tree) -> Document {
        Document { tree }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Number of nodes `|t|`.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Documents always have a root, so this is always `false`.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.tree.root()
    }

    /// Label of a node.
    pub fn label(&self, node: NodeId) -> &str {
        self.tree.label_str(node)
    }

    /// Render a node as a short human-readable description
    /// (`label#preorder`), useful when printing answer tuples.
    pub fn describe(&self, node: NodeId) -> String {
        format!("{}#{}", self.tree.label_str(node), self.tree.preorder(node))
    }

    /// Serialise back to compact XML.
    pub fn to_xml(&self) -> String {
        xpath_xml::to_xml(&self.tree)
    }

    /// Serialise to the compact term syntax.
    pub fn to_terms(&self) -> String {
        self.tree.to_terms()
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_terms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_xml_and_terms_agree() {
        let a = Document::from_xml("<a><b/><c><d/></c></a>").unwrap();
        let b = Document::from_terms("a(b,c(d))").unwrap();
        assert_eq!(a.to_terms(), b.to_terms());
        assert_eq!(a.len(), 4);
        assert_eq!(a.label(a.root()), "a");
        assert_eq!(a.to_xml(), "<a><b/><c><d/></c></a>");
        assert_eq!(format!("{a}"), "a(b,c(d))");
        assert!(!a.is_empty());
    }

    #[test]
    fn errors_are_wrapped() {
        assert!(matches!(
            Document::from_xml("<a><b></a>"),
            Err(DocumentError::Xml(_))
        ));
        assert!(matches!(
            Document::from_terms("a(("),
            Err(DocumentError::Terms(_))
        ));
        let err = Document::from_xml("").unwrap_err();
        assert!(err.to_string().contains("XML"));
    }

    #[test]
    fn describe_nodes() {
        let d = Document::from_terms("a(b,c)").unwrap();
        assert_eq!(d.describe(d.root()), "a#0");
        let c = d.tree().nodes_with_label_str("c")[0];
        assert_eq!(d.describe(c), "c#2");
    }
}
