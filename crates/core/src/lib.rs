//! # `ppl_xpath` — the polynomial-time fragment of Core XPath 2.0 with variables
//!
//! This crate is the public facade of the reproduction of
//! *"Polynomial Time Fragments of XPath with Variables"*
//! (Filiot, Niehren, Talbot, Tison — PODS 2007).  It wires the individual
//! components of the workspace into the pipeline of Theorem 1:
//!
//! ```text
//!   parse (xpath_ast)                     —  Core XPath 2.0 concrete syntax
//!     → check PPL, Def. 1 (xpath_ast)     —  N(for), NV(·), NVS(·)
//!     → translate, Fig. 7 (xpath_hcl)     —  PPL → HCL⁻(PPLbin)
//!     → normalise, Lemma 3 (xpath_hcl)    —  sharing expressions
//!     → compile atoms, Thm. 2 (xpath_pplbin) — Boolean node matrices
//!     → answer, Fig. 8 (xpath_hcl)        —  O(|P||t|³ + n|P||t|²|A|)
//! ```
//!
//! ## Quick start — sessions and plans
//!
//! The serving API separates *compilation*, *planning* and *execution*: a
//! [`Session`] owns a document plus a thread-safe matrix cache, a
//! [`QueryPlan`] is a prepared query with an engine chosen by the
//! [`Planner`], and executing a plan (from any thread, any number of times)
//! only pays evaluation:
//!
//! ```
//! use ppl_xpath::Session;
//!
//! let session = Session::from_xml(
//!     "<bib><book><author/><title/></book><book><author/><author/><title/></book></bib>",
//! ).unwrap();
//!
//! // Prepare once: parse, Definition 1 check, Fig. 7 translation, and the
//! // planner's cost decision over the four engines.
//! let plan = session.plan(
//!     "descendant::book[child::author[. is $y] and child::title[. is $z]]",
//!     &["y", "z"],
//! ).unwrap();
//! println!("{}", plan.explain());        // which engine, and why
//!
//! // Execute anywhere: `Session` is `Send + Sync`, so clones of it (and
//! // the plan) can serve from as many threads as the traffic needs.
//! let answers = session.execute(&plan).unwrap();
//! assert_eq!(answers.len(), 3);          // one pair per (author, book)
//!
//! // Or stream lazily instead of materialising the answer set.
//! let first = session.answers_stream(&plan).unwrap().next().unwrap();
//! assert_eq!(session.label(first[0]), "author");
//! ```
//!
//! Batches fan out over worker threads sharing one cache:
//!
//! ```
//! # use ppl_xpath::Session;
//! # let session = Session::from_terms("bib(book(author,title),book(author,title))").unwrap();
//! let plans = vec![
//!     session.plan("descendant::book[child::author[. is $a]]", &["a"]).unwrap(),
//!     session.plan("descendant::book[child::title[. is $t]]", &["t"]).unwrap(),
//! ];
//! let answers = session.answer_batch_parallel(&plans, 8).unwrap();
//! assert_eq!(answers.len(), 2);
//! ```
//!
//! ## Legacy API
//!
//! The original single-threaded-looking surface is kept as thin shims over
//! the session machinery (same caching, same answers):
//!
//! ```
//! use ppl_xpath::{Document, PplQuery};
//!
//! let doc = Document::from_terms(
//!     "bib(book(author,title),book(author,author,title))",
//! ).unwrap();
//! let query = PplQuery::compile(
//!     "descendant::book[child::author[. is $y] and child::title[. is $z]]",
//!     &["y", "z"],
//! ).unwrap();
//! assert_eq!(query.answers(&doc).unwrap().len(), 3);
//! ```
//!
//! ## What else is in the box
//!
//! * [`Planner`] — the cost-based engine choice (PPL membership, arity,
//!   axis mix, acyclicity, tree size, cache warmth), with explicit
//!   overrides for every engine.
//! * [`Executor`] — the uniform execution trait implemented by all four
//!   engines; [`Engine::executor`] hands out the singletons.
//! * [`Session::answer_batch_parallel`] / [`Session::answers_stream`] —
//!   multi-threaded batch serving and lazy tuple streaming.
//! * [`Document::answer_batch`] — the sequential batched shim over the
//!   shared cache; [`Document::cache_stats`] exposes the hit/miss counters;
//!   `*_cold` methods bypass the cache.
//! * [`BinaryQuery`] — the variable-free PPLbin engine of Theorem 2
//!   (binary queries as Boolean matrices).
//! * [`Engine`] — evaluate the same query with any of the four strategies,
//!   for differential testing and the benchmark experiments.
//! * Re-exports of the component crates under [`components`], and a
//!   [`prelude`] for glob imports.
//!
//! Multi-document serving lives one layer up, in the `xpath_corpus` crate
//! (which depends on this one): a `Corpus` pools one session per named
//! document behind a memory-bounded LRU, fans queries out across
//! documents, and backs the `pplxd` TCP daemon — with `pplx --connect`
//! as the client.

#![forbid(unsafe_code)]

pub mod document;
pub mod engine;
pub mod exec;
pub mod plan;
pub mod query;
pub mod session;

pub use document::Document;
pub use engine::Engine;
pub use exec::{AcqExecutor, Executor, HclExecutor, NaiveExecutor, PplExecutor};
pub use plan::{PlanChoice, Planner, QueryFeatures, QueryPlan};
pub use query::{AnswerSet, BinaryQuery, CompileError, PplQuery, QueryError};
pub use session::{AnswerIter, Session};
pub use xpath_pplbin::{CacheStats, KernelMode, KernelStats, MatrixStore, SharedMatrixStore};

/// Re-exports of the underlying component crates for advanced users.
pub mod components {
    pub use xpath_acq as acq;
    pub use xpath_ast as ast;
    pub use xpath_fo as fo;
    pub use xpath_hcl as hcl;
    pub use xpath_naive as naive;
    pub use xpath_pplbin as pplbin;
    pub use xpath_tree as tree;
    pub use xpath_xml as xml;
}

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        AnswerSet, BinaryQuery, Document, Engine, Planner, PplQuery, QueryPlan, Session,
    };
    pub use xpath_ast::{parse_path, PathExpr, Var};
    pub use xpath_tree::{Axis, NodeId, Tree};
}
