//! # `ppl_xpath` — the polynomial-time fragment of Core XPath 2.0 with variables
//!
//! This crate is the public facade of the reproduction of
//! *"Polynomial Time Fragments of XPath with Variables"*
//! (Filiot, Niehren, Talbot, Tison — PODS 2007).  It wires the individual
//! components of the workspace into the pipeline of Theorem 1:
//!
//! ```text
//!   parse (xpath_ast)                     —  Core XPath 2.0 concrete syntax
//!     → check PPL, Def. 1 (xpath_ast)     —  N(for), NV(·), NVS(·)
//!     → translate, Fig. 7 (xpath_hcl)     —  PPL → HCL⁻(PPLbin)
//!     → normalise, Lemma 3 (xpath_hcl)    —  sharing expressions
//!     → compile atoms, Thm. 2 (xpath_pplbin) — Boolean node matrices
//!     → answer, Fig. 8 (xpath_hcl)        —  O(|P||t|³ + n|P||t|²|A|)
//! ```
//!
//! ## Quick start
//!
//! ```
//! use ppl_xpath::{Document, PplQuery};
//!
//! let doc = Document::from_xml(
//!     "<bib><book><author/><title/></book><book><author/><author/><title/></book></bib>",
//! ).unwrap();
//!
//! // The author–title pair query from the paper's introduction.
//! let query = PplQuery::compile(
//!     "descendant::book[child::author[. is $y] and child::title[. is $z]]",
//!     &["y", "z"],
//! ).unwrap();
//!
//! let answers = query.answers(&doc).unwrap();
//! assert_eq!(answers.len(), 3);           // one pair per (author, book)
//! for tuple in answers.tuples() {
//!     assert_eq!(doc.label(tuple[0]), "author");
//!     assert_eq!(doc.label(tuple[1]), "title");
//! }
//! ```
//!
//! ## What else is in the box
//!
//! * [`Document::answer_batch`] — answer many compiled queries over one
//!   document with shared compilation state: every document owns a
//!   [`MatrixStore`] cache (hash-consed PPLbin subterms, memoised
//!   matrices), so repeated and batched queries skip the `|t|³` matrix
//!   compilation.  [`Document::cache_stats`] exposes the hit/miss counters;
//!   `*_cold` methods bypass the cache.
//! * [`BinaryQuery`] — the variable-free PPLbin engine of Theorem 2
//!   (binary queries as Boolean matrices).
//! * [`Engine`] — evaluate the same query with the polynomial PPL engine or
//!   with the exponential specification baseline (`xpath_naive`), for
//!   differential testing and for the benchmark experiments.
//! * Re-exports of the component crates under [`components`], and a
//!   [`prelude`] for glob imports.

pub mod document;
pub mod engine;
pub mod query;

pub use document::Document;
pub use engine::Engine;
pub use query::{AnswerSet, BinaryQuery, CompileError, PplQuery, QueryError};
pub use xpath_pplbin::{CacheStats, KernelMode, KernelStats, MatrixStore};

/// Re-exports of the underlying component crates for advanced users.
pub mod components {
    pub use xpath_acq as acq;
    pub use xpath_ast as ast;
    pub use xpath_fo as fo;
    pub use xpath_hcl as hcl;
    pub use xpath_naive as naive;
    pub use xpath_pplbin as pplbin;
    pub use xpath_tree as tree;
    pub use xpath_xml as xml;
}

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{AnswerSet, BinaryQuery, Document, Engine, PplQuery};
    pub use xpath_ast::{parse_path, PathExpr, Var};
    pub use xpath_tree::{Axis, NodeId, Tree};
}
