//! The [`Executor`] trait: one uniform execution interface over the four
//! evaluation strategies of the paper.
//!
//! | engine  | implementation | paper |
//! |---------|----------------|-------|
//! | `ppl`   | [`PplExecutor`] — Fig. 8 over PPLbin matrices compiled through the session's shared cache | Thm. 1 + Thm. 2 |
//! | `hcl`   | [`HclExecutor`] — the same Fig. 8 pipeline, cold (every atom recompiled) | Thm. 1 |
//! | `acq`   | [`AcqExecutor`] — Yannakakis on the ACQ image (unions distributed under a budget) | Props. 7/8/9 |
//! | `naive` | [`NaiveExecutor`] — Fig. 2 specification semantics with assignment enumeration | Prop. 1 |
//!
//! Executors are stateless (all state lives in the [`Session`] and the
//! [`QueryPlan`]), so each engine is a `'static` singleton and
//! [`crate::Engine::executor`] hands out `&'static dyn Executor` trait
//! objects — `Engine` itself stays a plain `Copy` enum for pattern matching
//! while dispatch goes through the trait.

use crate::engine::Engine;
use crate::plan::QueryPlan;
use crate::query::{AnswerSet, CompileError, QueryError};
use crate::session::Session;
use std::collections::BTreeSet;
use xpath_acq::{answer_acq, hcl_to_acq, hcl_to_union_acq};
use xpath_ast::{BinExpr, Var};
use xpath_hcl::{answer_hcl_pplbin, answer_hcl_pplbin_shared, Hcl};
use xpath_naive::answer_nary;
use xpath_tree::NodeId;

/// Default union distribution budget of the ACQ executor (Prop. 9
/// distribution is exponential in union nesting depth; plans exceeding
/// their budget fail with [`QueryError::Acq`] instead of blowing up).
/// Per-plan budgets come from `Planner::acq_disjunct_budget`.
pub const ACQ_DISJUNCT_BUDGET: usize = 256;

/// A query evaluation strategy, executable against any [`Session`].
///
/// Implementations are `Send + Sync` singletons; get one via
/// [`Engine::executor`].
pub trait Executor: Send + Sync {
    /// The [`Engine`] variant this executor implements.
    fn engine(&self) -> Engine;

    /// One-line description shown in [`QueryPlan::explain`] candidate
    /// tables.
    fn describe(&self) -> &'static str;

    /// Answer a prepared plan over a session.
    ///
    /// Plans prepared for the naive engine on non-PPL queries carry no HCL
    /// image; executing them on any other engine reports the missing
    /// compilation as [`QueryError::Ppl`].
    fn execute(&self, session: &Session, plan: &QueryPlan) -> Result<AnswerSet, QueryError>;
}

/// The HCL image of a plan, or the Definition 1 diagnostics for plans that
/// have none (prepared for the naive engine on a non-PPL query).
fn require_hcl(plan: &QueryPlan) -> Result<&Hcl<BinExpr>, QueryError> {
    plan.hcl().ok_or_else(|| {
        QueryError::Ppl(CompileError::NotPpl(
            xpath_ast::ppl::check_ppl(plan.source())
                .err()
                .unwrap_or_default(),
        ))
    })
}

fn set_of(output: &[Var], tuples: BTreeSet<Vec<NodeId>>) -> AnswerSet {
    AnswerSet::new(output.to_vec(), tuples)
}

/// Theorem 1 through the session cache: Fig. 8 answering over PPLbin atom
/// matrices compiled (once, ever, per session) in the shared store.
pub struct PplExecutor;

impl Executor for PplExecutor {
    fn engine(&self) -> Engine {
        Engine::Ppl
    }

    fn describe(&self) -> &'static str {
        "Fig. 8 over cached PPLbin matrices (Thm. 1, shared store)"
    }

    fn execute(&self, session: &Session, plan: &QueryPlan) -> Result<AnswerSet, QueryError> {
        let hcl = require_hcl(plan)?;
        let tuples = answer_hcl_pplbin_shared(session.tree(), hcl, plan.output(), session.store())
            .map_err(QueryError::Hcl)?;
        Ok(set_of(plan.output(), tuples))
    }
}

/// Theorem 1 cold: the same Fig. 8 pipeline with every atom matrix
/// recompiled from scratch — the reference path for differential testing
/// and the cold side of the benchmarks.
pub struct HclExecutor;

impl Executor for HclExecutor {
    fn engine(&self) -> Engine {
        Engine::Hcl
    }

    fn describe(&self) -> &'static str {
        "Fig. 8 with cold-compiled atoms (Thm. 1, no cache)"
    }

    fn execute(&self, session: &Session, plan: &QueryPlan) -> Result<AnswerSet, QueryError> {
        let hcl = require_hcl(plan)?;
        let tuples = answer_hcl_pplbin(session.tree(), hcl, plan.output())
            .map_err(QueryError::Hcl)?;
        Ok(set_of(plan.output(), tuples))
    }
}

/// Props. 7/8/9: translate the HCL⁻ image to (a union of) acyclic
/// conjunctive queries and run Yannakakis' semijoin algorithm.
pub struct AcqExecutor;

impl Executor for AcqExecutor {
    fn engine(&self) -> Engine {
        Engine::Acq
    }

    fn describe(&self) -> &'static str {
        "Yannakakis on the ACQ image (Props. 7/8/9)"
    }

    fn execute(&self, session: &Session, plan: &QueryPlan) -> Result<AnswerSet, QueryError> {
        let hcl = require_hcl(plan)?;
        let tuples = if hcl.is_union_free() {
            let (cq, db) = hcl_to_acq(session.tree(), hcl, plan.output())
                .map_err(|e| QueryError::Acq(e.to_string()))?;
            answer_acq(&cq, &db).map_err(|e| QueryError::Acq(e.to_string()))?
        } else {
            let union = hcl_to_union_acq(
                session.tree(),
                hcl,
                plan.output(),
                plan.acq_disjunct_budget(),
            )
            .map_err(|e| QueryError::Acq(e.to_string()))?;
            union.answer().map_err(|e| QueryError::Acq(e.to_string()))?
        };
        Ok(set_of(plan.output(), tuples))
    }
}

/// Proposition 1: the Fig. 2 specification semantics with brute-force
/// assignment enumeration — `Θ(|t|ⁿ)`, but accepts all of Core XPath 2.0.
pub struct NaiveExecutor;

impl Executor for NaiveExecutor {
    fn engine(&self) -> Engine {
        Engine::NaiveEnumeration
    }

    fn describe(&self) -> &'static str {
        "Fig. 2 assignment enumeration (spec semantics, Θ(|t|ⁿ))"
    }

    fn execute(&self, session: &Session, plan: &QueryPlan) -> Result<AnswerSet, QueryError> {
        let tuples = answer_nary(session.tree(), plan.source(), plan.output())
            .map_err(|e| QueryError::Naive(e.to_string()))?;
        Ok(set_of(plan.output(), tuples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::from_terms("bib(book(author,title),book(author,author,title))").unwrap()
    }

    #[test]
    fn all_four_executors_agree_on_a_ppl_query() {
        let s = session();
        let src = "descendant::book[child::author[. is $y] and child::title[. is $z]]";
        let mut answers = Vec::new();
        for engine in Engine::ALL {
            let plan = crate::Planner::default()
                .plan_with(
                    &s,
                    xpath_ast::parse_path(src).unwrap(),
                    vec![Var::new("y"), Var::new("z")],
                    Some(engine),
                )
                .unwrap();
            let executor = engine.executor();
            assert_eq!(executor.engine(), engine);
            assert!(!executor.describe().is_empty());
            answers.push(executor.execute(&s, &plan).unwrap());
        }
        assert_eq!(answers[0].len(), 3);
        for other in &answers[1..] {
            assert_eq!(other, &answers[0]);
        }
    }

    #[test]
    fn acq_executor_handles_union_queries_via_distribution() {
        let s = session();
        let src = "descendant::author[. is $x] union descendant::title[. is $x]";
        let plan = crate::Planner::default()
            .plan_with(
                &s,
                xpath_ast::parse_path(src).unwrap(),
                vec![Var::new("x")],
                Some(Engine::Acq),
            )
            .unwrap();
        let acq = Engine::Acq.executor().execute(&s, &plan).unwrap();
        let naive = Engine::NaiveEnumeration.executor().execute(&s, &plan).unwrap();
        assert_eq!(acq, naive);
        assert_eq!(acq.len(), 5); // 3 authors + 2 titles
    }

    #[test]
    fn acq_executor_honours_the_planner_disjunct_budget() {
        // Regression: the budget used to be a dead field on Planner while
        // the executor always used the 256 default.
        let s = session();
        let src = "descendant::author[. is $x] union descendant::title[. is $x]";
        let tight = crate::Planner {
            acq_disjunct_budget: 1,
            ..crate::Planner::default()
        };
        let plan = tight
            .plan_with(
                &s,
                xpath_ast::parse_path(src).unwrap(),
                vec![Var::new("x")],
                Some(Engine::Acq),
            )
            .unwrap();
        assert_eq!(plan.acq_disjunct_budget(), 1);
        let err = Engine::Acq.executor().execute(&s, &plan).unwrap_err();
        assert!(matches!(err, QueryError::Acq(_)), "{err}");
        assert!(err.to_string().contains("budget") || err.to_string().contains("disjunct"));
    }

    #[test]
    fn executing_a_naive_only_plan_on_matrix_engines_reports_ppl_errors() {
        let s = session();
        let non_ppl = xpath_ast::parse_path(
            "for $x in child::book return child::book[. is $x]/child::title[. is $t]",
        )
        .unwrap();
        let plan = crate::Planner::default()
            .plan_with(&s, non_ppl, vec![Var::new("t")], Some(Engine::NaiveEnumeration))
            .unwrap();
        assert_eq!(Engine::NaiveEnumeration.executor().execute(&s, &plan).unwrap().len(), 2);
        for engine in [Engine::Ppl, Engine::Hcl, Engine::Acq] {
            let err = engine.executor().execute(&s, &plan).unwrap_err();
            assert!(matches!(err, QueryError::Ppl(_)), "{engine:?}: {err}");
        }
    }
}
