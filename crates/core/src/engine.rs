//! Engine selection — run the same query with the polynomial PPL pipeline or
//! with the exponential specification baseline.
//!
//! The baseline exists for two reasons:
//!
//! * **differential testing** — on small inputs the two engines must agree
//!   tuple-for-tuple (this is checked extensively in the integration tests);
//! * **benchmarking** — experiment E4 of EXPERIMENTS.md measures the
//!   crossover between the naive `Θ(|t|ⁿ)` enumeration and the
//!   output-sensitive polynomial algorithm as the tuple width `n` grows.

use crate::document::Document;
use crate::query::{AnswerSet, QueryError};
use std::collections::BTreeSet;
use xpath_ast::{PathExpr, Var};
use xpath_naive::answer_nary;
use xpath_tree::NodeId;

/// Which algorithm answers the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The paper's polynomial-time pipeline
    /// (Fig. 7 translation + Fig. 8 answering over PPLbin matrices).
    Ppl,
    /// The specification semantics of Fig. 2 with assignment enumeration —
    /// exponential in the number of variables.
    NaiveEnumeration,
}

impl Engine {
    /// Answer an n-ary query given as a raw Core XPath 2.0 path expression.
    ///
    /// With [`Engine::Ppl`] the expression must be in the PPL fragment; with
    /// [`Engine::NaiveEnumeration`] any Core XPath 2.0 expression (including
    /// `for` loops and variable sharing) is accepted.
    pub fn answer(
        self,
        doc: &Document,
        query: &PathExpr,
        output: &[Var],
    ) -> Result<AnswerSet, QueryError> {
        match self {
            Engine::Ppl => {
                let compiled = crate::PplQuery::compile_path(query.clone(), output.to_vec())
                    .map_err(QueryError::Ppl)?;
                compiled.answers(doc)
            }
            Engine::NaiveEnumeration => {
                let tuples: BTreeSet<Vec<NodeId>> = answer_nary(doc.tree(), query, output)
                    .map_err(|e| QueryError::Naive(e.to_string()))?;
                Ok(AnswerSet::new(output.to_vec(), tuples))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_ast::parse_path;

    fn doc() -> Document {
        Document::from_terms("bib(book(author,title),book(author,author,title))").unwrap()
    }

    #[test]
    fn engines_agree_on_ppl_queries() {
        let d = doc();
        let q = parse_path(
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        )
        .unwrap();
        let output = [Var::new("y"), Var::new("z")];
        let fast = Engine::Ppl.answer(&d, &q, &output).unwrap();
        let slow = Engine::NaiveEnumeration.answer(&d, &q, &output).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 3);
    }

    #[test]
    fn naive_engine_accepts_for_loops_that_ppl_rejects() {
        let d = doc();
        let q = parse_path(
            "for $x in child::book return child::book[. is $x]/child::title[. is $t]",
        )
        .unwrap();
        let output = [Var::new("t")];
        assert!(Engine::Ppl.answer(&d, &q, &output).is_err());
        let slow = Engine::NaiveEnumeration.answer(&d, &q, &output).unwrap();
        assert_eq!(slow.len(), 2);
    }

    #[test]
    fn ppl_fragment_rejection_is_distinguishable_from_evaluation_failure() {
        // Regression: compile errors used to be folded into
        // `QueryError::Naive(String)`, so callers could not tell "query is
        // outside PPL" from "evaluation failed".
        use crate::query::{CompileError, QueryError};
        let d = doc();
        let q = parse_path(
            "for $x in child::book return child::book[. is $x]/child::title[. is $t]",
        )
        .unwrap();
        let err = Engine::Ppl.answer(&d, &q, &[Var::new("t")]).unwrap_err();
        match &err {
            QueryError::Ppl(CompileError::NotPpl(violations)) => {
                assert!(!violations.is_empty())
            }
            other => panic!("expected QueryError::Ppl(NotPpl), got {other:?}"),
        }
        assert!(err.to_string().contains("PPL compilation failed"));
        assert!(err.to_string().contains("N(for)"));
        // Naive-side failures still map to QueryError::Naive.
        let unbound = parse_path("child::book[. is $x]").unwrap();
        let naive_err = Engine::NaiveEnumeration
            .answer(&d, &unbound, &[Var::new("x"), Var::new("ghost")])
            .map(|a| a.len());
        if let Err(e) = naive_err {
            assert!(matches!(e, QueryError::Naive(_)));
        }
    }
}
