//! Engine selection — the four evaluation strategies behind one enum.
//!
//! [`Engine`] is a plain `Copy` enum naming the strategies; per-variant
//! behaviour lives in the [`Executor`] trait objects that
//! [`Engine::executor`] dispatches to, so adding an engine means adding an
//! executor, not growing match arms across the crate.
//!
//! The non-`ppl` engines exist for three reasons:
//!
//! * **differential testing** — on small inputs all four engines must agree
//!   tuple-for-tuple (checked extensively by the fuzz suite);
//! * **benchmarking** — the E4/E10/E12 experiments measure the crossovers
//!   between them;
//! * **planning** — the [`Planner`] picks the cheapest eligible engine per
//!   query; `--engine` flags force one.
//!
//! [`Planner`]: crate::Planner

use crate::document::Document;
use crate::exec::{AcqExecutor, Executor, HclExecutor, NaiveExecutor, PplExecutor};
use crate::plan::Planner;
use crate::query::{AnswerSet, QueryError};
use std::fmt;
use xpath_ast::{PathExpr, Var};

/// Which algorithm answers the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The paper's polynomial-time pipeline (Fig. 7 translation + Fig. 8
    /// answering over PPLbin matrices), compiled through the session's
    /// shared matrix cache.
    Ppl,
    /// The same Fig. 8 pipeline with cold-compiled atoms (no cache) — the
    /// reference path of the differential tests.
    Hcl,
    /// Yannakakis' algorithm on the ACQ image (Props. 7/8/9).
    Acq,
    /// The specification semantics of Fig. 2 with assignment enumeration —
    /// exponential in the number of variables, but accepts every Core
    /// XPath 2.0 expression (including `for` and variable sharing).
    NaiveEnumeration,
}

impl Engine {
    /// All four engines, in planner preference order.
    pub const ALL: [Engine; 4] = [
        Engine::Ppl,
        Engine::Acq,
        Engine::Hcl,
        Engine::NaiveEnumeration,
    ];

    /// The short name used by `pplx --engine` and the bench rows.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Ppl => "ppl",
            Engine::Hcl => "hcl",
            Engine::Acq => "acq",
            Engine::NaiveEnumeration => "naive",
        }
    }

    /// Parse a `pplx --engine` name.
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "ppl" => Some(Engine::Ppl),
            "hcl" => Some(Engine::Hcl),
            "acq" => Some(Engine::Acq),
            "naive" | "naive_enumeration" => Some(Engine::NaiveEnumeration),
            _ => None,
        }
    }

    /// The singleton [`Executor`] implementing this engine.
    pub fn executor(self) -> &'static dyn Executor {
        static PPL: PplExecutor = PplExecutor;
        static HCL: HclExecutor = HclExecutor;
        static ACQ: AcqExecutor = AcqExecutor;
        static NAIVE: NaiveExecutor = NaiveExecutor;
        match self {
            Engine::Ppl => &PPL,
            Engine::Hcl => &HCL,
            Engine::Acq => &ACQ,
            Engine::NaiveEnumeration => &NAIVE,
        }
    }

    /// Answer an n-ary query given as a raw Core XPath 2.0 path expression.
    ///
    /// A thin shim over the planner API: the query is prepared with this
    /// engine forced ([`Planner::plan_with`]) and executed on the document's
    /// [`Session`].  With [`Engine::NaiveEnumeration`] any Core XPath 2.0
    /// expression (including `for` loops and variable sharing) is accepted;
    /// the other engines require the PPL fragment and report Definition 1
    /// diagnostics otherwise.
    ///
    /// [`Session`]: crate::Session
    pub fn answer(
        self,
        doc: &Document,
        query: &PathExpr,
        output: &[Var],
    ) -> Result<AnswerSet, QueryError> {
        let plan = Planner::default()
            .plan_with(doc.session(), query.clone(), output.to_vec(), Some(self))
            .map_err(QueryError::Ppl)?;
        doc.session().execute(&plan)
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_ast::parse_path;

    fn doc() -> Document {
        Document::from_terms("bib(book(author,title),book(author,author,title))").unwrap()
    }

    #[test]
    fn engines_agree_on_ppl_queries() {
        let d = doc();
        let q = parse_path(
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        )
        .unwrap();
        let output = [Var::new("y"), Var::new("z")];
        let fast = Engine::Ppl.answer(&d, &q, &output).unwrap();
        let slow = Engine::NaiveEnumeration.answer(&d, &q, &output).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 3);
        // The two engines added by the planner redesign agree too.
        assert_eq!(Engine::Hcl.answer(&d, &q, &output).unwrap(), fast);
        assert_eq!(Engine::Acq.answer(&d, &q, &output).unwrap(), fast);
    }

    #[test]
    fn naive_engine_accepts_for_loops_that_ppl_rejects() {
        let d = doc();
        let q = parse_path(
            "for $x in child::book return child::book[. is $x]/child::title[. is $t]",
        )
        .unwrap();
        let output = [Var::new("t")];
        assert!(Engine::Ppl.answer(&d, &q, &output).is_err());
        assert!(Engine::Hcl.answer(&d, &q, &output).is_err());
        assert!(Engine::Acq.answer(&d, &q, &output).is_err());
        let slow = Engine::NaiveEnumeration.answer(&d, &q, &output).unwrap();
        assert_eq!(slow.len(), 2);
    }

    #[test]
    fn ppl_fragment_rejection_is_distinguishable_from_evaluation_failure() {
        // Regression: compile errors used to be folded into
        // `QueryError::Naive(String)`, so callers could not tell "query is
        // outside PPL" from "evaluation failed".
        use crate::query::{CompileError, QueryError};
        let d = doc();
        let q = parse_path(
            "for $x in child::book return child::book[. is $x]/child::title[. is $t]",
        )
        .unwrap();
        let err = Engine::Ppl.answer(&d, &q, &[Var::new("t")]).unwrap_err();
        match &err {
            QueryError::Ppl(CompileError::NotPpl(violations)) => {
                assert!(!violations.is_empty())
            }
            other => panic!("expected QueryError::Ppl(NotPpl), got {other:?}"),
        }
        assert!(err.to_string().contains("PPL compilation failed"));
        assert!(err.to_string().contains("N(for)"));
        // Naive-side failures still map to QueryError::Naive.
        let unbound = parse_path("child::book[. is $x]").unwrap();
        let naive_err = Engine::NaiveEnumeration
            .answer(&d, &unbound, &[Var::new("x"), Var::new("ghost")])
            .map(|a| a.len());
        if let Err(e) = naive_err {
            assert!(matches!(e, QueryError::Naive(_)));
        }
    }

    #[test]
    fn names_round_trip_and_dispatch_matches() {
        for engine in Engine::ALL {
            assert_eq!(Engine::parse(engine.name()), Some(engine));
            assert_eq!(engine.executor().engine(), engine);
            assert_eq!(format!("{engine}"), engine.name());
        }
        assert_eq!(Engine::parse("naive_enumeration"), Some(Engine::NaiveEnumeration));
        assert_eq!(Engine::parse("auto"), None);
        assert_eq!(Engine::parse("zippy"), None);
    }
}
