//! Thread-safe query serving: one document, many concurrent clients.
//!
//! A [`Session`] owns a document tree plus a sharded, lock-protected
//! [`SharedMatrixStore`], so — unlike the historical `RefCell`-backed
//! [`Document`](crate::Document) cache — it is `Send + Sync` and can answer queries from many
//! threads at once while still amortising the `|t|³` PPLbin matrix
//! compilation across all of them.  Cloning a session is cheap (two `Arc`
//! clones) and shares both the tree and the cache.
//!
//! The serving workflow is *prepare once, execute anywhere*:
//!
//! 1. [`Session::plan`] (or [`Planner::plan_with`]) compiles a query into an
//!    engine-agnostic [`QueryPlan`] — parse, Definition 1 check, Fig. 7
//!    translation, plus the planner's cost decision over the four engines;
//! 2. [`Session::execute`] answers a plan through the [`Executor`] of its
//!    chosen engine; [`Session::answer_batch_parallel`] fans a batch of
//!    plans out over worker threads sharing the one matrix store;
//! 3. [`Session::answers_stream`] yields tuples lazily instead of
//!    materialising the whole [`AnswerSet`].
//!
//! [`Executor`]: crate::exec::Executor

use crate::document::DocumentError;
use crate::plan::{Planner, QueryPlan};
use crate::query::{AnswerSet, CompileError, QueryError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use xpath_ast::{parse_path, PathExpr, Var};
use xpath_hcl::{stream_hcl_pplbin_shared, AnswerStream};
use xpath_pplbin::{CacheStats, KernelMode, KernelStats, SharedMatrixStore};
use xpath_tree::{NodeId, Tree};
use xpath_xml::{parse_with, ParseOptions};

/// A thread-safe serving handle over one document.
///
/// `Session` is `Send + Sync` (compile-time asserted below): share one
/// instance — or cheap clones of it — across as many serving threads as the
/// traffic needs.  All threads hit the same sharded matrix cache, so an atom
/// compiled for one client is a cache hit for every other.
#[derive(Debug, Clone)]
pub struct Session {
    tree: Arc<Tree>,
    store: Arc<SharedMatrixStore>,
}

// `Session` must stay shareable across serving threads; fail the build, not
// production, if a future field change loses `Send`/`Sync`.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<Session>();

impl Session {
    /// Parse an XML document (elements only) into a session.
    pub fn from_xml(xml: &str) -> Result<Session, DocumentError> {
        Self::from_xml_with(xml, &ParseOptions::default())
    }

    /// Parse an XML document with explicit [`ParseOptions`].
    pub fn from_xml_with(xml: &str, options: &ParseOptions) -> Result<Session, DocumentError> {
        Ok(Session::from_tree(
            parse_with(xml, options).map_err(DocumentError::Xml)?,
        ))
    }

    /// Parse the compact term syntax `a(b,c(d))` into a session.
    pub fn from_terms(terms: &str) -> Result<Session, DocumentError> {
        Ok(Session::from_tree(
            Tree::from_terms(terms).map_err(DocumentError::Terms)?,
        ))
    }

    /// Wrap an already constructed tree.
    pub fn from_tree(tree: Tree) -> Session {
        Session::from_shared_tree(Arc::new(tree))
    }

    /// Wrap an already shared tree without cloning it.  This is the cheap
    /// session-(re)build path of the corpus layer: evicting a session under
    /// a memory budget drops only its matrix cache, and the next request
    /// rebuilds the session around the same `Arc<Tree>`.
    pub fn from_shared_tree(tree: Arc<Tree>) -> Session {
        let store = SharedMatrixStore::new(tree.len());
        Session {
            tree,
            store: Arc::new(store),
        }
    }

    /// Assemble a session from an already shared tree and an already built
    /// store — the fork-and-swap path of live edits: the corpus layer edits
    /// a tree, carries the old session's cache through the edit with
    /// [`SharedMatrixStore::fork_edited`], and wraps both here without
    /// recompiling anything.
    ///
    /// Panics if the store's domain does not match the tree.
    pub fn from_parts(tree: Arc<Tree>, store: SharedMatrixStore) -> Session {
        assert_eq!(
            store.domain(),
            tree.len(),
            "Session::from_parts: store domain does not match the tree"
        );
        Session {
            tree,
            store: Arc::new(store),
        }
    }

    /// A post-edit copy of this session: the tree is replaced by `new_tree`
    /// and the matrix cache is carried through the edit (patched row-wise
    /// where possible — see [`SharedMatrixStore::fork_edited`]) instead of
    /// recompiled.  `self` is untouched and keeps answering over the old
    /// snapshot, so in-flight queries never observe a half-applied edit.
    pub fn fork_edited(
        &self,
        new_tree: Arc<Tree>,
        delta: &xpath_tree::EditDelta,
    ) -> (Session, xpath_pplbin::EditApplyStats) {
        let (store, stats) = self.store.fork_edited(&new_tree, delta);
        (Session::from_parts(new_tree, store), stats)
    }

    /// The shared handle to the underlying tree (an `Arc` clone).
    pub fn shared_tree(&self) -> Arc<Tree> {
        Arc::clone(&self.tree)
    }

    /// The underlying tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Number of nodes `|t|`.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Documents always have a root, so this is always `false`.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.tree.root()
    }

    /// Label of a node.
    pub fn label(&self, node: NodeId) -> &str {
        self.tree.label_str(node)
    }

    /// Render a node as `label#preorder` (used when printing answers).
    pub fn describe(&self, node: NodeId) -> String {
        format!("{}#{}", self.tree.label_str(node), self.tree.preorder(node))
    }

    /// The shared matrix store backing this session.
    pub fn store(&self) -> &SharedMatrixStore {
        &self.store
    }

    // -- planning -----------------------------------------------------------

    /// Prepare a query given in Core XPath 2.0 concrete syntax: parse it and
    /// let the default [`Planner`] pick an engine for this session's
    /// document.  [`QueryPlan::explain`] reports the decision.
    pub fn plan(&self, source: &str, vars: &[&str]) -> Result<QueryPlan, CompileError> {
        let path = parse_path(source)?;
        let output: Vec<Var> = vars.iter().map(|n| Var::new(n)).collect();
        self.plan_path(path, output)
    }

    /// Prepare an already parsed query with the default [`Planner`].
    pub fn plan_path(&self, path: PathExpr, output: Vec<Var>) -> Result<QueryPlan, CompileError> {
        Planner::default().plan(self, path, output)
    }

    // -- execution ----------------------------------------------------------

    /// Execute a prepared plan: dispatch to the [`Executor`] of the plan's
    /// chosen engine.
    ///
    /// [`Executor`]: crate::exec::Executor
    pub fn execute(&self, plan: &QueryPlan) -> Result<AnswerSet, QueryError> {
        plan.engine().executor().execute(self, plan)
    }

    /// Plan and execute in one call (auto engine choice).
    pub fn answer(&self, source: &str, vars: &[&str]) -> Result<AnswerSet, QueryError> {
        let plan = self.plan(source, vars).map_err(QueryError::Ppl)?;
        self.execute(&plan)
    }

    /// Execute a batch of plans sequentially on the calling thread, sharing
    /// this session's matrix cache.  Answers are returned in input order.
    pub fn answer_batch(&self, plans: &[QueryPlan]) -> Result<Vec<AnswerSet>, QueryError> {
        plans.iter().map(|p| self.execute(p)).collect()
    }

    /// Execute a batch of plans across `threads` worker threads, all sharing
    /// this session's matrix cache — the multi-threaded serving path that
    /// the thread-safe store exists for.  Plans are pulled from a shared
    /// queue (so stragglers balance), answers are returned in input order,
    /// and on failure the error of the smallest failing plan index is
    /// returned, exactly as the sequential path would.
    ///
    /// `threads == 0` or `1` falls back to [`Session::answer_batch`].
    pub fn answer_batch_parallel(
        &self,
        plans: &[QueryPlan],
        threads: usize,
    ) -> Result<Vec<AnswerSet>, QueryError> {
        let workers = threads.min(plans.len());
        if workers <= 1 {
            return self.answer_batch(plans);
        }
        let next = AtomicUsize::new(0);
        // First failing index seen so far (usize::MAX = none): workers stop
        // claiming plans past a known failure, so an early error does not
        // pay for the rest of the batch — while still preferring the error
        // of the *smallest* failing index, like the sequential path.
        let failed_before = AtomicUsize::new(usize::MAX);
        let slots: Vec<Mutex<Option<Result<AnswerSet, QueryError>>>> =
            (0..plans.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= plans.len() || i > failed_before.load(Ordering::Relaxed) {
                        break;
                    }
                    let result = self.execute(&plans[i]);
                    if result.is_err() {
                        failed_before.fetch_min(i, Ordering::Relaxed);
                    }
                    // A panicking `execute` on another worker poisons its own
                    // slot, never ours — but recover anyway so one bad plan
                    // cannot wedge the whole batch.
                    *slots[i]
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(result);
                });
            }
        });
        let first_failure = failed_before.into_inner();
        slots
            .into_iter()
            .take(first_failure.saturating_add(1))
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .unwrap_or_else(|| {
                        unreachable!("slots up to the first failure are always filled")
                    })
            })
            .collect()
    }

    /// Execute a prepared plan as a lazy stream of answer tuples.
    ///
    /// Plans on the Fig. 8 engines stream genuinely: atom matrices are
    /// compiled up front but the per-start-node exploration happens on
    /// demand, so taking `k` tuples does not pay for the full answer set.
    /// Each engine keeps the exact contract of [`Session::execute`] —
    /// `ppl` plans compile through the shared store, `hcl` plans compile
    /// cold (never touching the session cache), and `acq` and `naive`
    /// plans, whose algorithms are not incremental (Yannakakis semijoins
    /// with the plan's disjunct budget; assignment enumeration), are
    /// executed by their own executor and then iterated — streaming never
    /// changes a plan's answers, errors, or cache side effects.
    pub fn answers_stream(&self, plan: &QueryPlan) -> Result<AnswerIter, QueryError> {
        use crate::engine::Engine;
        let stream = match (plan.hcl(), plan.engine()) {
            (Some(hcl), Engine::Ppl) => {
                stream_hcl_pplbin_shared(&self.tree, hcl, plan.output(), &self.store)
                    .map_err(QueryError::Hcl)?
            }
            (Some(hcl), Engine::Hcl) => {
                xpath_hcl::stream_hcl_pplbin(&self.tree, hcl, plan.output())
                    .map_err(QueryError::Hcl)?
            }
            _ => {
                let set = self.execute(plan)?;
                return Ok(AnswerIter::materialised(
                    plan.output().to_vec(),
                    set.tuples().to_vec(),
                ));
            }
        };
        Ok(AnswerIter::streaming(plan.output().to_vec(), stream))
    }

    // -- cache management ---------------------------------------------------

    /// Aggregate hit/miss counters of the shared matrix cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Aggregate per-kernel dispatch counters.
    pub fn kernel_stats(&self) -> KernelStats {
        self.store.kernel_stats()
    }

    /// Select the relation kernels used for future compilations.
    pub fn set_kernel_mode(&self, mode: KernelMode) {
        self.store.set_mode(mode);
    }

    /// Drop every cached matrix in every shard.
    pub fn clear_cache(&self) {
        self.store.clear();
    }
}

/// A lazy iterator over the answer tuples of an executed plan.
///
/// Yields one `Vec<NodeId>` per answer tuple (one node per output variable,
/// in [`AnswerIter::variables`] order).  Streams from the Fig. 8 engine are
/// lazy and yield in discovery order; materialised fallbacks (naive plans)
/// yield in lexicographic order.  The iterator is self-contained and `Send`.
#[derive(Debug)]
pub struct AnswerIter {
    variables: Vec<Var>,
    inner: AnswerIterInner,
}

#[derive(Debug)]
enum AnswerIterInner {
    Streaming(Box<AnswerStream>),
    Materialised(std::vec::IntoIter<Vec<NodeId>>),
}

// Streams must be movable to consumer threads.
const fn _assert_send<T: Send>() {}
const _: () = _assert_send::<AnswerIter>();

impl AnswerIter {
    fn streaming(variables: Vec<Var>, stream: AnswerStream) -> AnswerIter {
        AnswerIter {
            variables,
            inner: AnswerIterInner::Streaming(Box::new(stream)),
        }
    }

    fn materialised(variables: Vec<Var>, tuples: Vec<Vec<NodeId>>) -> AnswerIter {
        AnswerIter {
            variables,
            inner: AnswerIterInner::Materialised(tuples.into_iter()),
        }
    }

    /// The output variables, in tuple order.
    pub fn variables(&self) -> &[Var] {
        &self.variables
    }

    /// Is this iterator backed by the lazy Fig. 8 stream (as opposed to a
    /// materialised answer set)?
    pub fn is_streaming(&self) -> bool {
        matches!(self.inner, AnswerIterInner::Streaming(_))
    }

    /// Drain the iterator into a sorted, deduplicated [`AnswerSet`].
    pub fn collect_set(self) -> AnswerSet {
        let variables = self.variables.clone();
        AnswerSet::new(variables, self.collect())
    }
}

impl Iterator for AnswerIter {
    type Item = Vec<NodeId>;

    fn next(&mut self) -> Option<Vec<NodeId>> {
        match &mut self.inner {
            AnswerIterInner::Streaming(s) => s.next(),
            AnswerIterInner::Materialised(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn session() -> Session {
        Session::from_terms("bib(book(author,title),book(author,author,title))").unwrap()
    }

    /// Plan with the ppl engine forced (the auto planner sends the tiny
    /// test documents to naive, which never touches the cache).
    fn ppl_plan(s: &Session, src: &str, vars: &[&str]) -> QueryPlan {
        Planner::default()
            .plan_with(
                s,
                xpath_ast::parse_path(src).unwrap(),
                vars.iter().map(|n| Var::new(n)).collect(),
                Some(Engine::Ppl),
            )
            .unwrap()
    }

    #[test]
    fn sessions_are_send_sync_and_cheap_to_clone() {
        fn takes_send_sync<T: Send + Sync>(_: &T) {}
        let s = session();
        takes_send_sync(&s);
        let clone = s.clone();
        assert_eq!(clone.len(), s.len());
        // Clones share the cache: warming one warms the other.  (Forced to
        // ppl — the planner would route this tiny instance to naive.)
        let plan = ppl_plan(&s, "descendant::author[. is $a]", &["a"]);
        s.execute(&plan).unwrap();
        assert!(clone.cache_stats().compiled > 0);
    }

    #[test]
    fn plan_execute_round_trip() {
        let s = session();
        let plan = s
            .plan(
                "descendant::book[child::author[. is $y] and child::title[. is $z]]",
                &["y", "z"],
            )
            .unwrap();
        let answers = s.execute(&plan).unwrap();
        assert_eq!(answers.len(), 3);
        assert_eq!(s.answer(
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
            &["y", "z"],
        ).unwrap(), answers);
    }

    #[test]
    fn batch_parallel_matches_sequential() {
        let s = session();
        let sources = [
            ("descendant::book[child::author[. is $a]]", vec!["a"]),
            ("descendant::book[child::title[. is $t]]", vec!["t"]),
            ("descendant::author[. is $a]", vec!["a"]),
            ("descendant::book[child::author]", vec![]),
        ];
        let plans: Vec<QueryPlan> = sources
            .iter()
            .map(|(src, vars)| s.plan(src, vars).unwrap())
            .collect();
        let sequential = s.answer_batch(&plans).unwrap();
        for threads in [0, 1, 2, 4, 8] {
            let parallel = s.answer_batch_parallel(&plans, threads).unwrap();
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn batch_parallel_error_matches_sequential_error() {
        let s = session();
        let union_src = "descendant::author[. is $x] union descendant::title[. is $x]";
        let failing = Planner {
            acq_disjunct_budget: 1,
            ..Planner::default()
        }
        .plan_with(
            &s,
            xpath_ast::parse_path(union_src).unwrap(),
            vec![Var::new("x")],
            Some(Engine::Acq),
        )
        .unwrap();
        let ok = |src: &str| ppl_plan(&s, src, &["a"]);
        let plans = vec![
            ok("descendant::author[. is $a]"),
            failing.clone(),
            ok("descendant::title[. is $a]"),
            failing,
            ok("descendant::book[. is $a]"),
        ];
        let sequential_err = s.answer_batch(&plans).unwrap_err();
        for threads in [2, 4, 8] {
            let parallel_err = s.answer_batch_parallel(&plans, threads).unwrap_err();
            assert_eq!(
                parallel_err.to_string(),
                sequential_err.to_string(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn streaming_answers_agree_with_execute() {
        let s = session();
        // Forced to ppl: the auto planner routes this tiny instance to
        // naive, which (correctly) does not stream.
        let plan = ppl_plan(&s, "descendant::book[child::author[. is $a]]", &["a"]);
        let set = s.execute(&plan).unwrap();
        let iter = s.answers_stream(&plan).unwrap();
        assert!(iter.is_streaming());
        assert_eq!(iter.variables(), plan.output());
        assert_eq!(iter.collect_set(), set);
        // Prefix consumption yields distinct known tuples.
        let mut prefix = s.answers_stream(&plan).unwrap();
        let first = prefix.next().unwrap();
        assert!(set.tuples().contains(&first));
        // A forced-naive plan streams via materialisation.
        let naive = Planner::default()
            .plan_with(
                &s,
                xpath_ast::parse_path("descendant::book[child::author[. is $a]]").unwrap(),
                vec![Var::new("a")],
                Some(Engine::NaiveEnumeration),
            )
            .unwrap();
        let fallback = s.answers_stream(&naive).unwrap();
        assert!(
            !fallback.is_streaming(),
            "naive plans must not stream through the matrix engines"
        );
        assert_eq!(fallback.collect_set(), set);
    }

    #[test]
    fn hcl_streams_keep_the_cold_contract() {
        // Regression: forced-hcl streams used to compile through the shared
        // store, silently warming the cache the hcl engine promises not to
        // touch.
        let s = session();
        let plan = Planner::default()
            .plan_with(
                &s,
                xpath_ast::parse_path("descendant::author[. is $a]").unwrap(),
                vec![Var::new("a")],
                Some(Engine::Hcl),
            )
            .unwrap();
        let set = s.execute(&plan).unwrap();
        let stream = s.answers_stream(&plan).unwrap();
        assert!(stream.is_streaming());
        assert_eq!(stream.collect_set(), set);
        assert_eq!(
            s.cache_stats().lookups(),
            0,
            "hcl plans must never touch the session cache"
        );
    }

    #[test]
    fn acq_streams_honour_the_executor_contract() {
        // Streaming an acq plan must behave exactly like executing it:
        // same disjunct-budget errors, no session-cache side effects.
        let s = session();
        let src = "descendant::author[. is $x] union descendant::title[. is $x]";
        let tight = Planner {
            acq_disjunct_budget: 1,
            ..Planner::default()
        };
        let plan = tight
            .plan_with(
                &s,
                xpath_ast::parse_path(src).unwrap(),
                vec![Var::new("x")],
                Some(Engine::Acq),
            )
            .unwrap();
        assert!(matches!(s.execute(&plan), Err(QueryError::Acq(_))));
        assert!(matches!(s.answers_stream(&plan), Err(QueryError::Acq(_))));
        let ok = Planner::default()
            .plan_with(
                &s,
                xpath_ast::parse_path(src).unwrap(),
                vec![Var::new("x")],
                Some(Engine::Acq),
            )
            .unwrap();
        let iter = s.answers_stream(&ok).unwrap();
        assert!(!iter.is_streaming(), "acq has no incremental algorithm");
        assert_eq!(iter.collect_set(), s.execute(&ok).unwrap());
        assert_eq!(s.cache_stats().lookups(), 0, "acq never touches the cache");
    }

    #[test]
    fn fork_edited_serves_the_new_tree_and_keeps_the_old_snapshot() {
        let s = session();
        let plan = ppl_plan(&s, "descendant::author[. is $a]", &["a"]);
        let before = s.execute(&plan).unwrap();
        assert!(s.cache_stats().compiled > 0, "warm before the edit");

        let sub = xpath_tree::Tree::from_terms("book(author,title)").unwrap();
        let (new_tree, delta) = s.tree().insert_subtree(s.root(), 2, &sub).unwrap();
        let (forked, stats) = s.fork_edited(Arc::new(new_tree), &delta);
        assert!(stats.rows_total > 0, "the warm cache was carried over");
        assert_eq!(forked.len(), s.len() + 3);

        // The fork answers over the edited document (one more author)…
        let forked_plan = ppl_plan(&forked, "descendant::author[. is $a]", &["a"]);
        assert_eq!(forked.execute(&forked_plan).unwrap().len(), before.len() + 1);
        // …while the original snapshot is untouched.
        assert_eq!(s.execute(&plan).unwrap(), before);
    }

    #[test]
    fn cache_management_round_trip() {
        let s = session();
        let plan = ppl_plan(&s, "descendant::author[. is $a]", &["a"]);
        s.execute(&plan).unwrap();
        assert!(s.cache_stats().compiled > 0);
        s.clear_cache();
        assert_eq!(s.cache_stats().lookups(), 0);
        s.set_kernel_mode(KernelMode::Dense);
        assert_eq!(s.store().mode(), KernelMode::Dense);
        assert_eq!(s.describe(s.root()), "bib#0");
        assert_eq!(s.label(s.root()), "bib");
        assert!(!s.is_empty());
    }
}
