//! Query planning: engine-agnostic prepared plans and the cost-based
//! engine choice.
//!
//! A [`QueryPlan`] is the prepared form of one query against one session:
//! the parsed source, the output variables, the `HCL⁻(PPLbin)` image of
//! Fig. 7 (when the query is in the PPL fragment), the structural
//! [`QueryFeatures`] the planner extracted, and the chosen [`Engine`].
//! Preparation is where all per-query compilation happens; executing a plan
//! (possibly many times, possibly from many threads) only pays evaluation.
//!
//! The [`Planner`] picks among the four engines by inspecting query shape
//! and tree size:
//!
//! * queries outside PPL (Definition 1) can only run on the Fig. 2
//!   specification engine — `naive`;
//! * tiny instances (`|t|^(n+1)·|P|` under [`Planner::naive_budget`]) run on
//!   `naive` too: assignment enumeration is cheaper than compiling matrices;
//! * a session already warm for every PPLbin atom of the plan always runs
//!   `ppl` — cached matrices make answering `O(n·|C|·|t|²·|A|)` with no
//!   compilation at all;
//! * union-free, GYO-acyclic images whose atoms are all plain axis steps
//!   run `acq` (Yannakakis, Props. 7/8): the binary database stays sparse
//!   and the semijoin program touches `O(|db|·|Q|)` pairs instead of `|t|²`
//!   rows per node;
//! * everything else — dense (`except`-bearing) atoms, unions, wide
//!   compositions — runs `ppl`, whose cached dense products are built for
//!   exactly that shape.
//!
//! An explicit override (`pplx --engine hcl`, [`Planner::plan_with`]) skips
//! the decision but still records the features, so `--explain` shows what
//! auto would have seen.  `hcl` — the cold Fig. 8 pipeline, compiling every
//! atom from scratch — is never chosen automatically: it is dominated by
//! `ppl` and exists for overrides and differential testing.

use crate::engine::Engine;
use crate::query::CompileError;
use crate::session::Session;
use std::fmt;
use xpath_acq::gyo_join_forest;
use xpath_ast::ppl::check_ppl;
use xpath_ast::{BinExpr, PathExpr, Var};
use xpath_hcl::{ppl_to_hcl, Hcl};

/// Structural features of one (query, document) pair, extracted at plan
/// time and reported by [`QueryPlan::explain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryFeatures {
    /// `|P|` — size of the source expression.
    pub size: usize,
    /// `n` — number of output variables.
    pub arity: usize,
    /// `|t|` — node count of the session's document.
    pub tree_size: usize,
    /// Is the query in the PPL fragment (Definition 1)?
    pub ppl: bool,
    /// Is the HCL⁻ image union-free (the `N(∪)` fragment of Section 6)?
    pub union_free: bool,
    /// Does the GYO reduction certify the ACQ image acyclic?  (Union-free
    /// images of HCL⁻ are tree-shaped by construction — Prop. 8 — so this
    /// is expected to hold whenever `union_free` does.)
    pub acyclic: bool,
    /// Distinct PPLbin atoms of the image.
    pub atoms: usize,
    /// Atoms that are single axis steps (the sparse/interval-friendly
    /// shape — the "axis mix" of the plan).
    pub step_atoms: usize,
    /// Atoms containing an `except` complement (dense compilation).
    pub dense_atoms: usize,
    /// Atoms already compiled in the session's shared store at plan time.
    pub cached_atoms: usize,
}

impl QueryFeatures {
    /// Estimated cost of naive assignment enumeration:
    /// `|t|^(arity+1) · |P|` (each of the `|t|^arity` assignments pays one
    /// evaluation pass, itself roughly `|P|·|t|`).
    pub fn naive_cost(&self) -> u128 {
        let t = self.tree_size.max(1) as u128;
        t.saturating_pow(self.arity as u32 + 1)
            .saturating_mul(self.size.max(1) as u128)
    }
}

/// How the plan's engine was selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanChoice {
    /// The planner's cost decision.
    Auto,
    /// An explicit caller override (`--engine …`).
    Forced,
}

/// An engine-agnostic prepared query: compile once, execute anywhere.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    source: PathExpr,
    output: Vec<Var>,
    /// The Fig. 7 image; `None` exactly when the query is outside PPL (then
    /// only the naive engine can execute the plan).
    hcl: Option<Hcl<BinExpr>>,
    engine: Engine,
    choice: PlanChoice,
    features: QueryFeatures,
    /// Human-readable decision trace, one rule per line.
    decision: Vec<String>,
    /// Union distribution budget the `acq` executor honours for this plan
    /// (from [`Planner::acq_disjunct_budget`]).
    acq_disjunct_budget: usize,
}

impl QueryPlan {
    /// The source Core XPath 2.0 expression.
    pub fn source(&self) -> &PathExpr {
        &self.source
    }

    /// The output variables, in tuple order.
    pub fn output(&self) -> &[Var] {
        &self.output
    }

    /// The `HCL⁻(PPLbin)` image, when the query is in PPL.
    pub fn hcl(&self) -> Option<&Hcl<BinExpr>> {
        self.hcl.as_ref()
    }

    /// The engine this plan executes on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Was the engine forced by the caller rather than chosen by cost?
    pub fn is_forced(&self) -> bool {
        self.choice == PlanChoice::Forced
    }

    /// The structural features the planner extracted.
    pub fn features(&self) -> &QueryFeatures {
        &self.features
    }

    /// Union distribution budget the `acq` executor honours for this plan
    /// (Prop. 9 distribution is exponential in union nesting depth).
    pub fn acq_disjunct_budget(&self) -> usize {
        self.acq_disjunct_budget
    }

    /// A human-readable plan report: the candidate table over all four
    /// engines, the features that drove the decision, the decision trace,
    /// and — for PPL plans — the compiled pipeline (HCL image and PPLbin
    /// atoms).
    pub fn explain(&self) -> String {
        let f = &self.features;
        let mut out = String::new();
        out.push_str(&format!("query        : {}\n", self.source));
        out.push_str(&format!(
            "output vars  : ({})\n",
            self.output
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "shape        : |P|={} arity={} |t|={} ppl={} union_free={} acyclic={}\n",
            f.size, f.arity, f.tree_size, f.ppl, f.union_free, f.acyclic
        ));
        out.push_str(&format!(
            "atom mix     : {} atoms ({} steps, {} dense, {} cached)\n",
            f.atoms, f.step_atoms, f.dense_atoms, f.cached_atoms
        ));
        out.push_str("candidates   :\n");
        for engine in Engine::ALL {
            let executor = engine.executor();
            let eligible = match engine {
                Engine::NaiveEnumeration => true,
                _ => f.ppl,
            };
            let marker = if engine == self.engine { "->" } else { "  " };
            out.push_str(&format!(
                "  {marker} {:<5} {} — {}\n",
                engine.name(),
                if eligible { "eligible " } else { "ineligible" },
                executor.describe()
            ));
        }
        out.push_str(&format!(
            "chosen       : {} ({})\n",
            self.engine.name(),
            match self.choice {
                PlanChoice::Auto => "auto",
                PlanChoice::Forced => "forced by caller",
            }
        ));
        for line in &self.decision {
            out.push_str(&format!("decision     : {line}\n"));
        }
        if let Some(hcl) = &self.hcl {
            let atoms = hcl.atoms();
            out.push_str(&format!("HCL⁻(PPLbin) : {hcl}\n"));
            out.push_str(&format!("HCL size     : {}\n", hcl.size()));
            out.push_str(&format!("PPLbin atoms : {}\n", atoms.len()));
            for (i, a) in atoms.iter().enumerate() {
                out.push_str(&format!("  b{i} = {a}\n"));
            }
        }
        out
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} via {}", self.source, self.engine.name())
    }
}

/// The cost-based engine selector.  The thresholds are tunable; the
/// defaults are calibrated on the E10/E12 workloads.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Instances with `naive_cost()` at or below this run on the naive
    /// engine: enumeration is cheaper than any matrix compilation.
    pub naive_budget: u128,
    /// Union distribution budget when executing `acq` plans on union-bearing
    /// queries (Prop. 9 is exponential in union nesting).
    pub acq_disjunct_budget: usize,
}

impl Default for Planner {
    fn default() -> Planner {
        Planner {
            naive_budget: 2_048,
            acq_disjunct_budget: crate::exec::ACQ_DISJUNCT_BUDGET,
        }
    }
}

impl Planner {
    /// Plan with automatic engine choice.
    pub fn plan(
        &self,
        session: &Session,
        path: PathExpr,
        output: Vec<Var>,
    ) -> Result<QueryPlan, CompileError> {
        self.plan_with(session, path, output, None)
    }

    /// Plan with an optional engine override.
    ///
    /// Overriding with `ppl`, `hcl` or `acq` requires the query to be in the
    /// PPL fragment and returns the Definition 1 diagnostics otherwise;
    /// `naive` accepts any Core XPath 2.0 expression; `None` never fails on
    /// fragment grounds (non-PPL queries plan onto `naive`).
    pub fn plan_with(
        &self,
        session: &Session,
        path: PathExpr,
        output: Vec<Var>,
        engine: Option<Engine>,
    ) -> Result<QueryPlan, CompileError> {
        let ppl_check = check_ppl(&path);
        let hcl = match &ppl_check {
            Ok(()) => Some(ppl_to_hcl(&path)?),
            Err(_) => None,
        };
        let features = self.features(session, &path, &output, hcl.as_ref());

        if let Some(forced) = engine {
            if forced != Engine::NaiveEnumeration {
                if let Err(violations) = ppl_check {
                    return Err(CompileError::NotPpl(violations));
                }
            }
            return Ok(QueryPlan {
                source: path,
                output,
                hcl,
                engine: forced,
                choice: PlanChoice::Forced,
                features,
                decision: vec![format!("engine {} forced by caller", forced.name())],
                acq_disjunct_budget: self.acq_disjunct_budget,
            });
        }

        let (engine, decision) = self.decide(&features);
        Ok(QueryPlan {
            source: path,
            output,
            hcl,
            engine,
            choice: PlanChoice::Auto,
            features,
            decision,
            acq_disjunct_budget: self.acq_disjunct_budget,
        })
    }

    /// The auto decision over extracted features (exposed for tests; does
    /// not need the session).
    fn decide(&self, f: &QueryFeatures) -> (Engine, Vec<String>) {
        if !f.ppl {
            return (
                Engine::NaiveEnumeration,
                vec!["outside PPL (Definition 1): only the specification engine applies".into()],
            );
        }
        let naive_cost = f.naive_cost();
        if naive_cost <= self.naive_budget {
            return (
                Engine::NaiveEnumeration,
                vec![format!(
                    "tiny instance: |t|^(n+1)·|P| = {naive_cost} ≤ budget {} — enumeration beats compilation",
                    self.naive_budget
                )],
            );
        }
        if f.atoms > 0 && f.cached_atoms == f.atoms {
            return (
                Engine::Ppl,
                vec![format!(
                    "session warm: all {} atoms already compiled in the shared store",
                    f.atoms
                )],
            );
        }
        if f.union_free && f.acyclic && f.arity >= 1 && f.dense_atoms == 0 && f.step_atoms == f.atoms
        {
            return (
                Engine::Acq,
                vec![format!(
                    "union-free acyclic image, all {} atoms plain steps: sparse Yannakakis semijoins",
                    f.atoms
                )],
            );
        }
        (
            Engine::Ppl,
            vec![format!(
                "default: {} dense atoms / union_free={} favour the cached matrix pipeline",
                f.dense_atoms, f.union_free
            )],
        )
    }

    /// Extract [`QueryFeatures`] for one (query, session) pair.
    fn features(
        &self,
        session: &Session,
        path: &PathExpr,
        output: &[Var],
        hcl: Option<&Hcl<BinExpr>>,
    ) -> QueryFeatures {
        let mut features = QueryFeatures {
            size: path.size(),
            arity: output.len(),
            tree_size: session.len(),
            ppl: hcl.is_some(),
            union_free: false,
            acyclic: false,
            atoms: 0,
            step_atoms: 0,
            dense_atoms: 0,
            cached_atoms: 0,
        };
        let Some(hcl) = hcl else {
            return features;
        };
        features.union_free = hcl.is_union_free();
        let mut distinct: Vec<&BinExpr> = Vec::new();
        for atom in hcl.atoms() {
            if !distinct.contains(&atom) {
                distinct.push(atom);
            }
        }
        features.atoms = distinct.len();
        for atom in &distinct {
            if matches!(atom, BinExpr::Step(_, _)) {
                features.step_atoms += 1;
            }
            if has_complement(atom) {
                features.dense_atoms += 1;
            }
            if session.store().is_compiled(atom) {
                features.cached_atoms += 1;
            }
        }
        if features.union_free {
            // GYO acyclicity of the ACQ image (Prop. 8: expected to hold).
            // `hcl_to_cq` only translates — no tree, no atom evaluation —
            // so plan preparation stays cheap.
            features.acyclic = xpath_acq::hcl_to_cq(hcl, output)
                .map(|(cq, _)| gyo_join_forest(&cq).is_some())
                .unwrap_or(false);
        }
        features
    }
}

/// Does a PPLbin expression contain an `except` complement (forcing dense
/// compilation of that subterm)?
fn has_complement(expr: &BinExpr) -> bool {
    match expr {
        BinExpr::Step(_, _) => false,
        BinExpr::Seq(a, b) | BinExpr::Union(a, b) => has_complement(a) || has_complement(b),
        BinExpr::Except(_) => true,
        BinExpr::Test(p) => has_complement(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_ast::parse_path;

    fn session_of(terms: &str) -> Session {
        Session::from_terms(terms).unwrap()
    }

    fn big_session() -> Session {
        // A bibliography large enough to push every cost past naive_budget.
        let mut terms = String::from("bib(");
        for i in 0..120 {
            if i > 0 {
                terms.push(',');
            }
            terms.push_str("book(author,title)");
        }
        terms.push(')');
        session_of(&terms)
    }

    #[test]
    fn non_ppl_queries_plan_onto_naive() {
        let s = session_of("bib(book(title),book(title))");
        let path =
            parse_path("for $x in child::book return child::book[. is $x]/child::title[. is $t]")
                .unwrap();
        let plan = Planner::default()
            .plan(&s, path, vec![Var::new("t")])
            .unwrap();
        assert_eq!(plan.engine(), Engine::NaiveEnumeration);
        assert!(plan.hcl().is_none());
        assert!(!plan.features().ppl);
        assert!(plan.explain().contains("outside PPL"));
    }

    #[test]
    fn tiny_instances_plan_onto_naive() {
        let s = session_of("a(b,c)");
        let plan = s.plan("child::b[. is $x]", &["x"]).unwrap();
        assert_eq!(plan.engine(), Engine::NaiveEnumeration);
        assert!(plan.features().ppl, "query is PPL, choice is cost-based");
        assert!(plan.hcl().is_some(), "PPL plans keep their image");
    }

    #[test]
    fn step_only_acyclic_queries_plan_onto_acq() {
        let s = big_session();
        let plan = s
            .plan(
                "descendant::book[child::author[. is $a]]/child::title[. is $t]",
                &["a", "t"],
            )
            .unwrap();
        assert_eq!(plan.engine(), Engine::Acq, "{}", plan.explain());
        let f = plan.features();
        assert!(f.union_free && f.acyclic);
        assert_eq!(f.dense_atoms, 0);
        assert_eq!(f.step_atoms, f.atoms);
    }

    #[test]
    fn dense_atoms_plan_onto_ppl_and_warm_sessions_stay_ppl() {
        let s = big_session();
        let src = "descendant::book[not((descendant::* except child::author)/child::title)][. is $x]";
        let plan = s.plan(src, &["x"]).unwrap();
        assert_eq!(plan.engine(), Engine::Ppl, "{}", plan.explain());
        assert!(plan.features().dense_atoms > 0);
        assert_eq!(plan.features().cached_atoms, 0);
        // Execute once; replanning must see a warm session.
        s.execute(&plan).unwrap();
        let replanned = s.plan(src, &["x"]).unwrap();
        assert_eq!(replanned.engine(), Engine::Ppl);
        assert_eq!(
            replanned.features().cached_atoms,
            replanned.features().atoms
        );
        assert!(replanned.explain().contains("session warm") || replanned.explain().contains("dense"));
    }

    #[test]
    fn warm_sessions_override_the_acq_choice() {
        let s = big_session();
        let src = "descendant::book[child::author[. is $a]]/child::title[. is $t]";
        let cold = s.plan(src, &["a", "t"]).unwrap();
        assert_eq!(cold.engine(), Engine::Acq);
        // Warm every atom through the ppl executor, then replan.
        let forced = Planner::default()
            .plan_with(
                &s,
                parse_path(src).unwrap(),
                vec![Var::new("a"), Var::new("t")],
                Some(Engine::Ppl),
            )
            .unwrap();
        assert!(forced.is_forced());
        s.execute(&forced).unwrap();
        let warm = s.plan(src, &["a", "t"]).unwrap();
        assert_eq!(warm.engine(), Engine::Ppl, "{}", warm.explain());
    }

    #[test]
    fn forced_engines_demand_ppl_membership_except_naive() {
        let s = session_of("a(b)");
        let non_ppl = parse_path("for $x in child::b return child::b[. is $x]").unwrap();
        for engine in [Engine::Ppl, Engine::Hcl, Engine::Acq] {
            let err = Planner::default()
                .plan_with(&s, non_ppl.clone(), vec![], Some(engine))
                .unwrap_err();
            assert!(matches!(err, CompileError::NotPpl(_)), "{engine:?}");
        }
        let ok = Planner::default()
            .plan_with(&s, non_ppl, vec![], Some(Engine::NaiveEnumeration))
            .unwrap();
        assert_eq!(ok.engine(), Engine::NaiveEnumeration);
    }

    #[test]
    fn explain_reports_all_four_candidates() {
        let s = big_session();
        let plan = s.plan("descendant::author[. is $a]", &["a"]).unwrap();
        let report = plan.explain();
        for name in ["ppl", "hcl", "acq", "naive"] {
            assert!(report.contains(name), "missing {name} in:\n{report}");
        }
        assert!(report.contains("chosen"));
        assert!(report.contains("PPLbin atoms"));
        assert!(report.contains(&format!("|t|={}", s.len())));
        assert_eq!(format!("{plan}"), format!("{} via {}", plan.source(), plan.engine().name()));
    }
}
