//! Compiled queries: the PPL pipeline of Theorem 1 and the PPLbin binary
//! engine of Theorem 2.

use crate::document::Document;
use std::collections::BTreeSet;
use std::fmt;
use xpath_ast::binexpr::{from_variable_free_path, NotVariableFree};
use xpath_ast::ppl::PplViolation;
use xpath_ast::{parse_path, BinExpr, ParseError, PathExpr, Var};
use xpath_hcl::{answer_hcl_pplbin, answer_hcl_pplbin_shared, ppl_to_hcl, Hcl, HclError, TranslateError};
use xpath_pplbin::NodeMatrix;
use xpath_tree::NodeId;

/// Errors raised while compiling a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The concrete syntax could not be parsed.
    Parse(ParseError),
    /// The expression is syntactically valid Core XPath 2.0 but violates the
    /// PPL restrictions of Definition 1; each violation is reported.
    NotPpl(Vec<PplViolation>),
    /// A binary query was requested for an expression with variables.
    NotVariableFree(NotVariableFree),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::NotPpl(violations) => {
                write!(f, "query is not in the PPL fragment (Definition 1):")?;
                for v in violations {
                    write!(f, "\n  - {v}")?;
                }
                Ok(())
            }
            CompileError::NotVariableFree(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> CompileError {
        CompileError::Parse(e)
    }
}

impl From<TranslateError> for CompileError {
    fn from(e: TranslateError) -> CompileError {
        match e {
            TranslateError::NotPpl(v) => CompileError::NotPpl(v),
        }
    }
}

/// Errors raised while answering a compiled query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The PPL engine rejected the expression at compile time (parse error
    /// or a Definition 1 fragment violation) — the query never ran.
    Ppl(CompileError),
    /// The HCL engine rejected the expression (cannot happen for queries
    /// compiled through [`PplQuery::compile`], which enforce NVS(/)).
    Hcl(HclError),
    /// The ACQ/Yannakakis engine failed (e.g. the Prop. 9 union
    /// distribution exceeded its disjunct budget).
    Acq(String),
    /// The naive baseline failed (e.g. an unbound variable when evaluating a
    /// raw Core XPath 2.0 expression).
    Naive(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Ppl(e) => write!(f, "PPL compilation failed: {e}"),
            QueryError::Hcl(e) => write!(f, "{e}"),
            QueryError::Acq(e) => write!(f, "acq evaluation failed: {e}"),
            QueryError::Naive(e) => write!(f, "naive evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<CompileError> for QueryError {
    fn from(e: CompileError) -> QueryError {
        QueryError::Ppl(e)
    }
}

/// The answer set of an n-ary query: sorted, duplicate-free tuples of nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerSet {
    variables: Vec<Var>,
    tuples: Vec<Vec<NodeId>>,
}

impl AnswerSet {
    pub(crate) fn new(variables: Vec<Var>, tuples: BTreeSet<Vec<NodeId>>) -> AnswerSet {
        AnswerSet {
            variables,
            tuples: tuples.into_iter().collect(),
        }
    }

    /// The output variables, in tuple order.
    pub fn variables(&self) -> &[Var] {
        &self.variables
    }

    /// Tuple width `n`.
    pub fn arity(&self) -> usize {
        self.variables.len()
    }

    /// Number of answer tuples `|A|`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the answer set empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples, in lexicographic node order.
    pub fn tuples(&self) -> &[Vec<NodeId>] {
        &self.tuples
    }

    /// Iterate over the tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<NodeId>> {
        self.tuples.iter()
    }

    /// Render the answers with node labels resolved against a document —
    /// convenient for examples and debugging.
    ///
    /// Arity-0 (satisfiability) answer sets hold at most one *empty* tuple;
    /// rendering that as a bare `()` line interleaves awkwardly with
    /// `explain()` output, so the empty tuple is normalised to an explicit
    /// `(satisfiable)` marker (and an unsatisfiable 0-ary set renders as
    /// nothing, like every other empty answer set).
    pub fn render(&self, doc: &Document) -> String {
        if self.arity() == 0 {
            return if self.is_empty() {
                String::new()
            } else {
                "(satisfiable)\n".to_string()
            };
        }
        let mut out = String::new();
        for tuple in &self.tuples {
            let cells: Vec<String> = self
                .variables
                .iter()
                .zip(tuple)
                .map(|(v, n)| format!("{v}={}", doc.describe(*n)))
                .collect();
            out.push_str(&format!("({})\n", cells.join(", ")));
        }
        out
    }
}

/// A compiled PPL query: the full pipeline of Theorem 1.
#[derive(Debug, Clone)]
pub struct PplQuery {
    source: PathExpr,
    hcl: Hcl<BinExpr>,
    output: Vec<Var>,
}

impl PplQuery {
    /// Parse, check (Definition 1) and translate (Fig. 7) a query given in
    /// Core XPath 2.0 concrete syntax, with the given output variables.
    pub fn compile(source: &str, output: &[&str]) -> Result<PplQuery, CompileError> {
        let path = parse_path(source)?;
        Self::compile_path(path, output.iter().map(|n| Var::new(n)).collect())
    }

    /// Compile an already parsed path expression.
    pub fn compile_path(path: PathExpr, output: Vec<Var>) -> Result<PplQuery, CompileError> {
        let hcl = ppl_to_hcl(&path)?;
        Ok(PplQuery {
            source: path,
            hcl,
            output,
        })
    }

    /// The source Core XPath 2.0 expression.
    pub fn source(&self) -> &PathExpr {
        &self.source
    }

    /// The output variables, in tuple order.
    pub fn output(&self) -> &[Var] {
        &self.output
    }

    /// The intermediate `HCL⁻(PPLbin)` expression (Fig. 7 image), exposed
    /// for inspection and for the translation benchmarks.
    pub fn hcl(&self) -> &Hcl<BinExpr> {
        &self.hcl
    }

    /// `|P|` — the size of the source expression.
    pub fn size(&self) -> usize {
        self.source.size()
    }

    /// Answer the query on a document with the polynomial-time engine
    /// (Fig. 8 over PPLbin atoms).
    ///
    /// Atom matrices are compiled through the document session's
    /// [`SharedMatrixStore`] cache (`Document::cache_stats` exposes the
    /// counters): answering the
    /// same query — or any query sharing PPLbin subterms — again on the same
    /// document skips the `|t|³` compilation.  Use
    /// [`PplQuery::answers_cold`] to bypass the cache.
    ///
    /// [`SharedMatrixStore`]: xpath_pplbin::SharedMatrixStore
    pub fn answers(&self, doc: &Document) -> Result<AnswerSet, QueryError> {
        let tuples =
            answer_hcl_pplbin_shared(doc.tree(), &self.hcl, &self.output, doc.session().store())
                .map_err(QueryError::Hcl)?;
        Ok(AnswerSet::new(self.output.clone(), tuples))
    }

    /// Answer the query without touching the document's matrix cache: every
    /// atom is recompiled from scratch.  This is the pre-cache behaviour,
    /// kept for differential tests and for the cold side of the benchmark
    /// harness.
    pub fn answers_cold(&self, doc: &Document) -> Result<AnswerSet, QueryError> {
        let tuples =
            answer_hcl_pplbin(doc.tree(), &self.hcl, &self.output).map_err(QueryError::Hcl)?;
        Ok(AnswerSet::new(self.output.clone(), tuples))
    }

    /// Answer the query as a Boolean query: is the answer set non-empty for
    /// some assignment?  (Arity-0 special case of [`PplQuery::answers`];
    /// cached like it.)
    pub fn is_satisfiable(&self, doc: &Document) -> Result<bool, QueryError> {
        let tuples = answer_hcl_pplbin_shared(doc.tree(), &self.hcl, &[], doc.session().store())
            .map_err(QueryError::Hcl)?;
        Ok(!tuples.is_empty())
    }

    /// A human-readable explanation of the compiled pipeline: the PPL
    /// source, its size, the HCL⁻(PPLbin) image and its atoms.
    pub fn explain(&self) -> String {
        let atoms = self.hcl.atoms();
        let mut out = String::new();
        out.push_str(&format!("PPL source   : {}\n", self.source));
        out.push_str(&format!("source size  : {}\n", self.source.size()));
        out.push_str(&format!(
            "output vars  : {}\n",
            self.output
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("HCL⁻(PPLbin) : {}\n", self.hcl));
        out.push_str(&format!("HCL size     : {}\n", self.hcl.size()));
        out.push_str(&format!("PPLbin atoms : {}\n", atoms.len()));
        for (i, a) in atoms.iter().enumerate() {
            out.push_str(&format!("  b{i} = {a}\n"));
        }
        out
    }
}

/// A compiled variable-free binary query (PPLbin, Theorem 2).
#[derive(Debug, Clone)]
pub struct BinaryQuery {
    source: PathExpr,
    bin: BinExpr,
}

impl BinaryQuery {
    /// Parse and compile a variable-free Core XPath 2.0 expression into
    /// PPLbin (Fig. 4).
    pub fn compile(source: &str) -> Result<BinaryQuery, CompileError> {
        let path = parse_path(source)?;
        Self::compile_path(path)
    }

    /// Compile an already parsed variable-free path expression.
    pub fn compile_path(path: PathExpr) -> Result<BinaryQuery, CompileError> {
        let bin = from_variable_free_path(&path).map_err(CompileError::NotVariableFree)?;
        Ok(BinaryQuery { source: path, bin })
    }

    /// The source expression.
    pub fn source(&self) -> &PathExpr {
        &self.source
    }

    /// The PPLbin expression.
    pub fn binexpr(&self) -> &BinExpr {
        &self.bin
    }

    /// Answer the binary query as a Boolean node×node matrix (Theorem 2),
    /// through the document's matrix cache.
    pub fn matrix(&self, doc: &Document) -> NodeMatrix {
        doc.eval_binexpr(&self.bin)
    }

    /// Answer the binary query recompiling every subterm (cache bypassed).
    pub fn matrix_cold(&self, doc: &Document) -> NodeMatrix {
        xpath_pplbin::answer_binary(doc.tree(), &self.bin)
    }

    /// Answer the binary query as a pair list.
    pub fn pairs(&self, doc: &Document) -> Vec<(NodeId, NodeId)> {
        self.matrix(doc).pairs()
    }

    /// The nodes reachable from the document root (unary query).
    pub fn select_from_root(&self, doc: &Document) -> Vec<NodeId> {
        self.matrix(doc).successors(doc.root()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::from_terms("bib(book(author,title),book(author,author,title))").unwrap()
    }

    #[test]
    fn compile_and_answer_the_intro_query() {
        let d = doc();
        let q = PplQuery::compile(
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
            &["y", "z"],
        )
        .unwrap();
        assert_eq!(q.output().len(), 2);
        assert_eq!(q.size(), q.source().size());
        let ans = q.answers(&d).unwrap();
        assert_eq!(ans.len(), 3);
        assert_eq!(ans.arity(), 2);
        assert!(!ans.is_empty());
        let rendered = ans.render(&d);
        assert_eq!(rendered.lines().count(), 3);
        assert!(rendered.contains("$y=author#"));
        assert!(q.is_satisfiable(&d).unwrap());
    }

    #[test]
    fn compile_errors_are_informative() {
        let parse_err = PplQuery::compile("child::", &[]).unwrap_err();
        assert!(matches!(parse_err, CompileError::Parse(_)));
        let ppl_err =
            PplQuery::compile("for $x in child::a return child::b", &[]).unwrap_err();
        match &ppl_err {
            CompileError::NotPpl(v) => assert!(!v.is_empty()),
            other => panic!("expected NotPpl, got {other:?}"),
        }
        assert!(ppl_err.to_string().contains("N(for)"));
        let shared =
            PplQuery::compile("child::a[. is $x]/child::b[. is $x]", &["x"]).unwrap_err();
        assert!(shared.to_string().contains("NVS(/)"));
    }

    #[test]
    fn explain_lists_pipeline_stages() {
        let q = PplQuery::compile("descendant::book[child::author[. is $y]]", &["y"]).unwrap();
        let text = q.explain();
        assert!(text.contains("PPL source"));
        assert!(text.contains("HCL⁻(PPLbin)"));
        assert!(text.contains("b0 ="));
    }

    #[test]
    fn binary_queries() {
        let d = doc();
        let q = BinaryQuery::compile("child::book/child::author").unwrap();
        assert_eq!(q.pairs(&d).len(), 3);
        assert_eq!(q.select_from_root(&d).len(), 3);
        assert_eq!(q.matrix(&d).count_pairs(), 3);
        assert!(q.binexpr().size() >= 2);
        let err = BinaryQuery::compile("child::a[. is $x]").unwrap_err();
        assert!(matches!(err, CompileError::NotVariableFree(_)));
        assert!(err.to_string().contains("N($x)"));
    }

    #[test]
    fn zero_ary_render_is_normalised() {
        // Regression: satisfiable 0-ary answer sets used to render as a bare
        // "()" line that interleaved awkwardly with explain() output.
        let d = doc();
        let q = PplQuery::compile("descendant::book[child::author]", &[]).unwrap();
        let ans = q.answers(&d).unwrap();
        assert_eq!(ans.arity(), 0);
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.render(&d), "(satisfiable)\n");
        assert!(!ans.render(&d).contains("()"), "no bare empty-tuple line");
        let unsat = PplQuery::compile("descendant::publisher", &[]).unwrap();
        assert_eq!(unsat.answers(&d).unwrap().render(&d), "");
    }

    #[test]
    fn unsatisfiable_queries_have_empty_answers() {
        let d = doc();
        let q = PplQuery::compile("descendant::publisher[. is $p]", &["p"]).unwrap();
        let ans = q.answers(&d).unwrap();
        assert!(ans.is_empty());
        assert!(!q.is_satisfiable(&d).unwrap());
        assert_eq!(ans.render(&d), "");
    }
}
