//! The PPL fragment checker (Definition 1 of the paper).
//!
//! The polynomial-time path language **PPL** is the set of Core XPath 2.0
//! expressions satisfying all of:
//!
//! * **N(for)** — no `for` loops (and thus no explicit quantifiers);
//! * **NV(intersect)** — no variables in intersections:
//!   `P1 intersect P2` requires `Var(P1) = Var(P2) = ∅`;
//! * **NV(except)** — no variables in exceptions:
//!   `P1 except P2` requires `Var(P1) = Var(P2) = ∅`;
//! * **NV(not)** — no variables below negation: `not T` requires
//!   `Var(T) = ∅`;
//! * **NVS(/)** — no variable sharing in composition:
//!   `P1 / P2` requires `Var(P1) ∩ Var(P2) = ∅`;
//! * **NVS([])** — no variable sharing in filters:
//!   `P[T]` requires `Var(P) ∩ Var(T) = ∅`;
//! * **NVS(and)** — no variable sharing in conjunctions:
//!   `T1 and T2` requires `Var(T1) ∩ Var(T2) = ∅`.
//!
//! [`check_ppl`] verifies every condition and reports each violating
//! subexpression together with the restriction it breaks, so library users
//! get actionable diagnostics rather than a bare "not in the fragment".
//!
//! [`check_pplbin`] additionally verifies the variable-free condition
//! **N($x)** of Section 4 (no variables, no `for`, no node comparisons),
//! which characterises the PPLbin dialect.

use crate::expr::{free_vars_path, free_vars_test, PathExpr, TestExpr, Var};
use std::collections::BTreeSet;
use std::fmt;

/// The individual syntactic restrictions of Definition 1 (plus N($x) of
/// Section 4 used by [`check_pplbin`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Restriction {
    /// N(for): no `for` loops.
    NoFor,
    /// NV(intersect): no variables under `intersect`.
    NoVarsInIntersect,
    /// NV(except): no variables under `except`.
    NoVarsInExcept,
    /// NV(not): no variables under `not`.
    NoVarsInNot,
    /// NVS(/): no variable sharing across `/`.
    NoSharingInComposition,
    /// NVS([]): no variable sharing between a path and its filter.
    NoSharingInFilter,
    /// NVS(and): no variable sharing across `and`.
    NoSharingInAnd,
    /// N($x): no variables at all (PPLbin only).
    NoVariables,
}

impl Restriction {
    /// The paper's name for the restriction.
    pub fn paper_name(self) -> &'static str {
        match self {
            Restriction::NoFor => "N(for)",
            Restriction::NoVarsInIntersect => "NV(intersect)",
            Restriction::NoVarsInExcept => "NV(except)",
            Restriction::NoVarsInNot => "NV(not)",
            Restriction::NoSharingInComposition => "NVS(/)",
            Restriction::NoSharingInFilter => "NVS([])",
            Restriction::NoSharingInAnd => "NVS(and)",
            Restriction::NoVariables => "N($x)",
        }
    }
}

impl fmt::Display for Restriction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// One violation of the PPL restrictions: which rule, where, and which
/// variables are involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PplViolation {
    /// The restriction that is violated.
    pub restriction: Restriction,
    /// Rendering of the offending subexpression.
    pub subexpression: String,
    /// The variables that cause the violation (shared or forbidden ones).
    pub variables: Vec<Var>,
}

impl fmt::Display for PplViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "violates {} in `{}`",
            self.restriction, self.subexpression
        )?;
        if !self.variables.is_empty() {
            let vars: Vec<String> = self.variables.iter().map(|v| v.to_string()).collect();
            write!(f, " (variables: {})", vars.join(", "))?;
        }
        Ok(())
    }
}

/// Check whether `p` belongs to PPL (Definition 1).
///
/// Returns `Ok(())` when the expression satisfies every restriction, or the
/// complete list of violations otherwise.
pub fn check_ppl(p: &PathExpr) -> Result<(), Vec<PplViolation>> {
    let mut violations = Vec::new();
    walk_path(p, &mut violations);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Is `p` a PPL expression?
pub fn is_ppl(p: &PathExpr) -> bool {
    check_ppl(p).is_ok()
}

/// Check whether `p` belongs to PPLbin: PPL plus the variable-free condition
/// N($x) (no variables, no `for` loops, no node comparisons with variables).
pub fn check_pplbin(p: &PathExpr) -> Result<(), Vec<PplViolation>> {
    let mut violations = Vec::new();
    walk_path(p, &mut violations);
    if p.has_for() {
        // Already reported by NoFor; nothing extra to add here.
    }
    let vars = free_vars_path(p);
    if !vars.is_empty() {
        violations.push(PplViolation {
            restriction: Restriction::NoVariables,
            subexpression: p.to_string(),
            variables: vars.into_iter().collect(),
        });
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Is `p` variable-free (condition N($x)) and for-free?
pub fn is_variable_free(p: &PathExpr) -> bool {
    free_vars_path(p).is_empty() && !p.has_for()
}

fn shared(a: &BTreeSet<Var>, b: &BTreeSet<Var>) -> Vec<Var> {
    a.intersection(b).cloned().collect()
}

fn walk_path(p: &PathExpr, out: &mut Vec<PplViolation>) {
    match p {
        PathExpr::Step(_, _) | PathExpr::NodeRef(_) => {}
        PathExpr::Seq(a, b) => {
            let sh = shared(&free_vars_path(a), &free_vars_path(b));
            if !sh.is_empty() {
                out.push(PplViolation {
                    restriction: Restriction::NoSharingInComposition,
                    subexpression: p.to_string(),
                    variables: sh,
                });
            }
            walk_path(a, out);
            walk_path(b, out);
        }
        PathExpr::Union(a, b) => {
            // Unions are unrestricted: variables may be shared freely.
            walk_path(a, out);
            walk_path(b, out);
        }
        PathExpr::Intersect(a, b) => {
            let mut vars: Vec<Var> = free_vars_path(a).into_iter().collect();
            vars.extend(free_vars_path(b));
            if !vars.is_empty() {
                out.push(PplViolation {
                    restriction: Restriction::NoVarsInIntersect,
                    subexpression: p.to_string(),
                    variables: vars,
                });
            }
            walk_path(a, out);
            walk_path(b, out);
        }
        PathExpr::Except(a, b) => {
            let mut vars: Vec<Var> = free_vars_path(a).into_iter().collect();
            vars.extend(free_vars_path(b));
            if !vars.is_empty() {
                out.push(PplViolation {
                    restriction: Restriction::NoVarsInExcept,
                    subexpression: p.to_string(),
                    variables: vars,
                });
            }
            walk_path(a, out);
            walk_path(b, out);
        }
        PathExpr::Filter(base, test) => {
            let sh = shared(&free_vars_path(base), &free_vars_test(test));
            if !sh.is_empty() {
                out.push(PplViolation {
                    restriction: Restriction::NoSharingInFilter,
                    subexpression: p.to_string(),
                    variables: sh,
                });
            }
            walk_path(base, out);
            walk_test(test, out);
        }
        PathExpr::For(_, p1, p2) => {
            out.push(PplViolation {
                restriction: Restriction::NoFor,
                subexpression: p.to_string(),
                variables: Vec::new(),
            });
            walk_path(p1, out);
            walk_path(p2, out);
        }
    }
}

fn walk_test(t: &TestExpr, out: &mut Vec<PplViolation>) {
    match t {
        TestExpr::Path(p) => walk_path(p, out),
        TestExpr::Comp(_, _) => {}
        TestExpr::Not(inner) => {
            let vars: Vec<Var> = free_vars_test(inner).into_iter().collect();
            if !vars.is_empty() {
                out.push(PplViolation {
                    restriction: Restriction::NoVarsInNot,
                    subexpression: t.to_string(),
                    variables: vars,
                });
            }
            walk_test(inner, out);
        }
        TestExpr::And(a, b) => {
            let sh = shared(&free_vars_test(a), &free_vars_test(b));
            if !sh.is_empty() {
                out.push(PplViolation {
                    restriction: Restriction::NoSharingInAnd,
                    subexpression: t.to_string(),
                    variables: sh,
                });
            }
            walk_test(a, out);
            walk_test(b, out);
        }
        TestExpr::Or(a, b) => {
            // `or` is unrestricted, like union.
            walk_test(a, out);
            walk_test(b, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;

    fn violations(src: &str) -> Vec<Restriction> {
        match check_ppl(&parse_path(src).unwrap()) {
            Ok(()) => Vec::new(),
            Err(vs) => vs.into_iter().map(|v| v.restriction).collect(),
        }
    }

    #[test]
    fn paper_introduction_example_is_ppl() {
        let src = "descendant::book[child::author[. is $y] and child::title[. is $z]]";
        assert_eq!(violations(src), Vec::new());
        assert!(is_ppl(&parse_path(src).unwrap()));
    }

    #[test]
    fn for_loops_violate_nfor() {
        assert_eq!(
            violations("for $x in child::a return child::b"),
            vec![Restriction::NoFor]
        );
    }

    #[test]
    fn variables_under_intersect_and_except() {
        assert_eq!(
            violations("$x intersect child::a"),
            vec![Restriction::NoVarsInIntersect]
        );
        assert_eq!(
            violations("child::a except $x"),
            vec![Restriction::NoVarsInExcept]
        );
        // Variable-free intersections are fine.
        assert_eq!(violations("child::a intersect child::b"), Vec::new());
        assert_eq!(violations("child::a except child::b"), Vec::new());
    }

    #[test]
    fn variables_under_not() {
        assert_eq!(
            violations("child::a[not(child::b[. is $x])]"),
            vec![Restriction::NoVarsInNot]
        );
        assert_eq!(violations("child::a[not(child::b)]"), Vec::new());
        // The paper's quantifier-free counterexample path (Section 3) is in
        // the fragment *without* variables under not... but with $y under
        // not it is rejected:
        let src = ".[not($x/descendant::*/next-sibling::*/descendant::*[. is $y])]";
        assert_eq!(violations(src), vec![Restriction::NoVarsInNot]);
    }

    #[test]
    fn variable_sharing_in_composition_and_filter_and_and() {
        assert_eq!(
            violations("child::a[. is $x]/child::b[. is $x]"),
            vec![Restriction::NoSharingInComposition]
        );
        assert_eq!(
            violations("child::a[. is $x][child::b[. is $x]]"),
            vec![Restriction::NoSharingInFilter]
        );
        assert_eq!(
            violations("child::a[child::b[. is $x] and child::c[. is $x]]"),
            vec![Restriction::NoSharingInAnd]
        );
        // Distinct variables are fine in all three positions.
        assert_eq!(
            violations("child::a[. is $x]/child::b[. is $y]"),
            Vec::new()
        );
        assert_eq!(
            violations("child::a[child::b[. is $x] and child::c[. is $y]]"),
            Vec::new()
        );
    }

    #[test]
    fn sharing_in_union_and_or_is_allowed() {
        assert_eq!(
            violations("child::a[. is $x] union child::b[. is $x]"),
            Vec::new()
        );
        assert_eq!(
            violations("child::a[child::b[. is $x] or child::c[. is $x]]"),
            Vec::new()
        );
    }

    #[test]
    fn multiple_violations_are_all_reported() {
        let src = "for $z in child::a return $x/child::b[. is $x]";
        let vs = violations(src);
        assert!(vs.contains(&Restriction::NoFor));
        assert!(vs.contains(&Restriction::NoSharingInComposition));
        assert_eq!(vs.len(), 2);
    }

    #[test]
    fn violation_display_mentions_rule_and_vars() {
        let p = parse_path("child::a[. is $x]/child::b[. is $x]").unwrap();
        let vs = check_ppl(&p).unwrap_err();
        let msg = vs[0].to_string();
        assert!(msg.contains("NVS(/)"));
        assert!(msg.contains("$x"));
    }

    #[test]
    fn pplbin_requires_variable_freedom() {
        let ok = parse_path("child::a/descendant::b union . except child::c").unwrap();
        assert!(check_pplbin(&ok).is_ok());
        assert!(is_variable_free(&ok));

        let with_var = parse_path("child::a[. is $x]").unwrap();
        let errs = check_pplbin(&with_var).unwrap_err();
        assert!(errs.iter().any(|v| v.restriction == Restriction::NoVariables));
        assert!(!is_variable_free(&with_var));

        let with_for = parse_path("for $x in child::a return child::b").unwrap();
        assert!(!is_variable_free(&with_for));
    }

    #[test]
    fn restriction_names_match_the_paper() {
        assert_eq!(Restriction::NoFor.to_string(), "N(for)");
        assert_eq!(Restriction::NoSharingInComposition.to_string(), "NVS(/)");
        assert_eq!(Restriction::NoVarsInNot.to_string(), "NV(not)");
        assert_eq!(Restriction::NoVariables.to_string(), "N($x)");
    }
}
