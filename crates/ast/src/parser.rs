//! Parser for the concrete syntax of Core XPath 2.0 (Fig. 1 of the paper).
//!
//! The grammar follows the paper's notation, with two common conveniences:
//!
//! * a bare name `book` abbreviates `child::book`, and a bare `*`
//!   abbreviates `child::*`;
//! * parentheses may be used freely around path and test expressions.
//!
//! Operator precedence, from loosest to tightest:
//! `for … return …`  <  `union`  <  `intersect` / `except`  <  `/`  <  `[…]`.
//! Test expressions: `or`  <  `and`  <  `not`  <  atoms.

use crate::expr::{NameTest, NodeRef, PathExpr, TestExpr, Var};
use std::fmt;
use xpath_tree::Axis;

/// Parse error with a byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a Core XPath 2.0 path expression.
pub fn parse_path(input: &str) -> Result<PathExpr, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.path()?;
    p.expect_eof()?;
    Ok(expr)
}

/// Parse a Core XPath 2.0 test expression (the part between `[` and `]`).
pub fn parse_test(input: &str) -> Result<TestExpr, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.test()?;
    p.expect_eof()?;
    Ok(expr)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Var(String),
    Dot,
    Slash,
    DoubleColon,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Star,
    Eof,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    position: usize,
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let position = i;
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
                continue;
            }
            b'.' => {
                out.push(Token { tok: Tok::Dot, position });
                i += 1;
            }
            b'/' => {
                out.push(Token { tok: Tok::Slash, position });
                i += 1;
            }
            b'[' => {
                out.push(Token { tok: Tok::LBracket, position });
                i += 1;
            }
            b']' => {
                out.push(Token { tok: Tok::RBracket, position });
                i += 1;
            }
            b'(' => {
                out.push(Token { tok: Tok::LParen, position });
                i += 1;
            }
            b')' => {
                out.push(Token { tok: Tok::RParen, position });
                i += 1;
            }
            b'*' => {
                out.push(Token { tok: Tok::Star, position });
                i += 1;
            }
            b':' => {
                if bytes.get(i + 1) == Some(&b':') {
                    out.push(Token { tok: Tok::DoubleColon, position });
                    i += 2;
                } else {
                    return Err(ParseError {
                        position,
                        message: "single ':' is not a valid token (did you mean '::'?)".into(),
                    });
                }
            }
            b'$' => {
                i += 1;
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if i == start {
                    return Err(ParseError {
                        position,
                        message: "expected a variable name after '$'".into(),
                    });
                }
                out.push(Token {
                    tok: Tok::Var(input[start..i].to_string()),
                    position,
                });
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || matches!(bytes[i], b'_' | b'-' | b'.'))
                {
                    // A '.' inside a name is only allowed when followed by a
                    // name character; otherwise it terminates the name so
                    // that `a.b` parses as one name but `a.` does not eat the
                    // context-node dot.
                    if bytes[i] == b'.'
                        && !(i + 1 < bytes.len()
                            && (bytes[i + 1].is_ascii_alphanumeric() || bytes[i + 1] == b'_'))
                    {
                        break;
                    }
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(input[start..i].to_string()),
                    position,
                });
            }
            _ => {
                return Err(ParseError {
                    position,
                    message: format!("unexpected character {:?}", c as char),
                })
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        position: bytes.len(),
    });
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_pos(&self) -> usize {
        self.tokens[self.pos].position
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.peek_pos(),
            message: message.into(),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword '{kw}'")))
        }
    }

    fn expect_tok(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(self.err("unexpected trailing input"))
        }
    }

    // path := 'for' $x 'in' path 'return' path | union_expr
    fn path(&mut self) -> Result<PathExpr, ParseError> {
        if self.at_keyword("for") {
            self.bump();
            let var = match self.bump() {
                Tok::Var(name) => Var::new(&name),
                _ => return Err(self.err("expected a variable after 'for'")),
            };
            self.expect_keyword("in")?;
            let p1 = self.path()?;
            self.expect_keyword("return")?;
            let p2 = self.path()?;
            return Ok(PathExpr::For(var, Box::new(p1), Box::new(p2)));
        }
        self.union_expr()
    }

    fn union_expr(&mut self) -> Result<PathExpr, ParseError> {
        let mut left = self.intersect_expr()?;
        while self.at_keyword("union") {
            self.bump();
            let right = self.intersect_expr()?;
            left = PathExpr::Union(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn intersect_expr(&mut self) -> Result<PathExpr, ParseError> {
        let mut left = self.seq_expr()?;
        loop {
            if self.at_keyword("intersect") {
                self.bump();
                let right = self.seq_expr()?;
                left = PathExpr::Intersect(Box::new(left), Box::new(right));
            } else if self.at_keyword("except") {
                self.bump();
                let right = self.seq_expr()?;
                left = PathExpr::Except(Box::new(left), Box::new(right));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn seq_expr(&mut self) -> Result<PathExpr, ParseError> {
        let mut left = self.postfix()?;
        while *self.peek() == Tok::Slash {
            self.bump();
            let right = self.postfix()?;
            left = PathExpr::Seq(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn postfix(&mut self) -> Result<PathExpr, ParseError> {
        let mut base = self.primary()?;
        while *self.peek() == Tok::LBracket {
            self.bump();
            let test = self.test()?;
            self.expect_tok(Tok::RBracket, "']' to close the filter")?;
            base = PathExpr::Filter(Box::new(base), Box::new(test));
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<PathExpr, ParseError> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let inner = self.path()?;
                self.expect_tok(Tok::RParen, "')'")?;
                Ok(inner)
            }
            Tok::Dot => {
                self.bump();
                Ok(PathExpr::NodeRef(NodeRef::Dot))
            }
            Tok::Var(name) => {
                self.bump();
                Ok(PathExpr::NodeRef(NodeRef::Var(Var::new(&name))))
            }
            Tok::Star => {
                self.bump();
                Ok(PathExpr::Step(Axis::Child, NameTest::Wildcard))
            }
            Tok::Ident(name) => {
                // Keywords never start a primary.
                if matches!(
                    name.as_str(),
                    "union" | "intersect" | "except" | "and" | "or" | "not" | "is" | "in"
                        | "return" | "for"
                ) {
                    return Err(self.err(format!("unexpected keyword '{name}'")));
                }
                self.bump();
                if *self.peek() == Tok::DoubleColon {
                    self.bump();
                    let axis = Axis::parse(&name)
                        .ok_or_else(|| self.err(format!("unknown axis '{name}'")))?;
                    let test = match self.bump() {
                        Tok::Star => NameTest::Wildcard,
                        Tok::Ident(n) => NameTest::Name(n),
                        _ => return Err(self.err("expected a name test after '::'")),
                    };
                    Ok(PathExpr::Step(axis, test))
                } else {
                    // Bare name abbreviation: `book` ≡ `child::book`.
                    Ok(PathExpr::Step(Axis::Child, NameTest::Name(name)))
                }
            }
            other => Err(self.err(format!("unexpected token {other:?} in path expression"))),
        }
    }

    // test := or_test
    fn test(&mut self) -> Result<TestExpr, ParseError> {
        self.or_test()
    }

    fn or_test(&mut self) -> Result<TestExpr, ParseError> {
        let mut left = self.and_test()?;
        while self.at_keyword("or") {
            self.bump();
            let right = self.and_test()?;
            left = TestExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_test(&mut self) -> Result<TestExpr, ParseError> {
        let mut left = self.unary_test()?;
        while self.at_keyword("and") {
            self.bump();
            let right = self.unary_test()?;
            left = TestExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_test(&mut self) -> Result<TestExpr, ParseError> {
        if self.at_keyword("not") {
            self.bump();
            let inner = self.unary_test()?;
            return Ok(TestExpr::Not(Box::new(inner)));
        }
        if *self.peek() == Tok::LParen {
            // Could be a parenthesised test or a parenthesised path; try the
            // test reading first and fall back to a path on failure.
            let save = self.pos;
            self.bump();
            if let Ok(inner) = self.test() {
                if *self.peek() == Tok::RParen {
                    self.bump();
                    // Only accept the test reading if what follows cannot
                    // extend a path (e.g. `(...)/child::a` must be a path).
                    if !matches!(self.peek(), Tok::Slash | Tok::LBracket)
                        && !self.at_keyword("union")
                        && !self.at_keyword("intersect")
                        && !self.at_keyword("except")
                        && !self.at_keyword("is")
                    {
                        return Ok(inner);
                    }
                }
            }
            self.pos = save;
        }
        self.comp_or_path()
    }

    fn comp_or_path(&mut self) -> Result<TestExpr, ParseError> {
        let path = self.union_expr()?;
        if self.at_keyword("is") {
            self.bump();
            let left = path_to_noderef(&path).ok_or_else(|| {
                self.err("the left operand of 'is' must be '.' or a variable")
            })?;
            let right = match self.bump() {
                Tok::Dot => NodeRef::Dot,
                Tok::Var(name) => NodeRef::Var(Var::new(&name)),
                _ => return Err(self.err("the right operand of 'is' must be '.' or a variable")),
            };
            return Ok(TestExpr::Comp(left, right));
        }
        Ok(TestExpr::Path(path))
    }
}

fn path_to_noderef(p: &PathExpr) -> Option<NodeRef> {
    match p {
        PathExpr::NodeRef(r) => Some(r.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(src: &str) -> String {
        parse_path(src).unwrap().to_string()
    }

    #[test]
    fn steps_and_abbreviations() {
        assert_eq!(round_trip("child::book"), "child::book");
        assert_eq!(round_trip("book"), "child::book");
        assert_eq!(round_trip("*"), "child::*");
        assert_eq!(round_trip("descendant::*"), "descendant::*");
        assert_eq!(round_trip("following_sibling::a"), "following_sibling::a");
        assert_eq!(round_trip("following-sibling::a"), "following_sibling::a");
    }

    #[test]
    fn composition_union_intersect_except() {
        assert_eq!(round_trip("child::a/child::b"), "child::a/child::b");
        assert_eq!(round_trip("child::a union child::b"), "child::a union child::b");
        assert_eq!(
            round_trip("child::a intersect child::b"),
            "child::a intersect child::b"
        );
        assert_eq!(round_trip("child::a except child::b"), "child::a except child::b");
        // precedence: / binds tighter than intersect which binds tighter than union
        assert_eq!(
            round_trip("child::a union child::b intersect child::c/child::d"),
            "child::a union child::b intersect child::c/child::d"
        );
        let p = parse_path("child::a union child::b intersect child::c").unwrap();
        assert!(matches!(p, PathExpr::Union(_, _)));
    }

    #[test]
    fn parentheses_override_precedence() {
        let p = parse_path("(child::a union child::b)/child::c").unwrap();
        assert!(matches!(p, PathExpr::Seq(_, _)));
        assert_eq!(p.to_string(), "(child::a union child::b)/child::c");
    }

    #[test]
    fn variables_and_dots() {
        assert_eq!(round_trip("$x"), "$x");
        assert_eq!(round_trip("."), ".");
        assert_eq!(round_trip("$x/child::a"), "$x/child::a");
    }

    #[test]
    fn filters_and_tests() {
        assert_eq!(
            round_trip("child::book[child::author]"),
            "child::book[child::author]"
        );
        assert_eq!(
            round_trip("child::book[child::author and child::title]"),
            "child::book[child::author and child::title]"
        );
        assert_eq!(
            round_trip("child::book[not(child::author) or child::title]"),
            "child::book[not(child::author) or child::title]"
        );
        assert_eq!(round_trip("child::a[. is $x]"), "child::a[. is $x]");
        assert_eq!(round_trip("child::a[$x is $y]"), "child::a[$x is $y]");
        assert_eq!(round_trip("child::a[. is .]"), "child::a[. is .]");
        assert_eq!(round_trip(".[. is $x and not(parent::*)]"), ".[. is $x and not(parent::*)]");
    }

    #[test]
    fn nested_filters_and_chained_filters() {
        assert_eq!(
            round_trip("child::a[child::b[child::c]]"),
            "child::a[child::b[child::c]]"
        );
        assert_eq!(
            round_trip("child::a[child::b][child::c]"),
            "child::a[child::b][child::c]"
        );
    }

    #[test]
    fn for_loops() {
        let src = "for $x in descendant::book return child::author[. is $x]";
        assert_eq!(round_trip(src), src);
        // Nested loops
        let nested = "for $x in child::a return for $y in child::b return $x";
        assert_eq!(round_trip(nested), nested);
    }

    #[test]
    fn paper_introduction_example() {
        let src = "descendant::book[child::author[. is $y] and child::title[. is $z]]";
        assert_eq!(round_trip(src), src);
    }

    #[test]
    fn parenthesised_test_expressions() {
        let p = parse_path("child::a[(child::b and child::c) or child::d]").unwrap();
        match &p {
            PathExpr::Filter(_, t) => assert!(matches!(**t, TestExpr::Or(_, _))),
            other => panic!("expected filter, got {other:?}"),
        }
        // A parenthesised path followed by '/' inside a test stays a path.
        let q = parse_path("child::a[(child::b union child::c)/child::d]").unwrap();
        match &q {
            PathExpr::Filter(_, t) => assert!(matches!(**t, TestExpr::Path(PathExpr::Seq(_, _)))),
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported_with_positions() {
        for bad in [
            "",
            "child::",
            "child:a",
            "bogusaxis::a",
            "child::a[",
            "child::a]",
            "child::a union",
            "for $x return child::a",
            "for x in child::a return child::b",
            "child::a child::b",
            "$",
            "child::a[child::b is $x]",
            "(child::a",
            "child::a[not]",
        ] {
            let err = parse_path(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad:?}");
            assert!(err.to_string().contains("parse error"), "{bad:?}");
        }
    }

    #[test]
    fn keywords_cannot_start_a_path() {
        assert!(parse_path("union").is_err());
        assert!(parse_path("not").is_err());
        // ...but they are fine as name tests after an axis.
        assert_eq!(round_trip("child::union"), "child::union");
        assert_eq!(round_trip("child::not"), "child::not");
    }

    #[test]
    fn parse_test_entry_point() {
        let t = parse_test("child::a and . is $x").unwrap();
        assert!(matches!(t, TestExpr::And(_, _)));
        assert!(parse_test("child::a and").is_err());
    }

    #[test]
    fn deeply_nested_expression_parses() {
        let mut src = String::from("child::a");
        for _ in 0..100 {
            src = format!("({src})[child::b]");
        }
        let p = parse_path(&src).unwrap();
        assert!(p.size() > 100);
    }
}
