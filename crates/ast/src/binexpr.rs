//! PPLbin — the variable-free binary path language (Fig. 3 of the paper) and
//! the linear-time translation from variable-free Core XPath 2.0 into it
//! (Fig. 4, Proposition 4).
//!
//! The PPLbin syntax is minimal:
//!
//! ```text
//! PathExpr := Axis :: NameTest
//!           | PathExpr / PathExpr
//!           | PathExpr union PathExpr
//!           | except PathExpr          (unary complement: nodes² \ P)
//!           | [ PathExpr ]             (partial identity: nodes with a P-successor)
//! ```
//!
//! Every PPLbin expression denotes a *binary* query — a set of node pairs —
//! and is evaluated by the Boolean-matrix engine in `xpath_pplbin`
//! (Theorem 2: `O(|P|·|t|³)`).
//!
//! The translation [`from_variable_free_path`] implements Fig. 4: it maps any
//! Core XPath 2.0 expression satisfying N($x) (no variables, no `for`, no
//! variable comparisons) to an equivalent PPLbin expression in linear time.
//! Binary `intersect`/`except` and test expressions are compiled away using
//! the unary complement:
//!
//! * `P1 intersect P2` → `except (except P1 union except P2)`
//! * `P1 except P2`    → `except (except P1 union P2)`
//! * `P[T]`            → `P / ⟦T⟧`, where `⟦T⟧` is a partial identity
//! * `[not P]`         → `self::* except [P]`, i.e.
//!   `except (except self::* union [P])` — the nodes with **no** `P`
//!   successor.  (Fig. 4 of the paper prints this case as `[except P]`,
//!   which would instead select the nodes having *some* non-`P` successor;
//!   we implement the semantically correct form and note the discrepancy in
//!   DESIGN.md.)

use crate::expr::{NameTest, NodeRef, PathExpr, TestExpr};
use std::fmt;
use xpath_tree::Axis;

/// A PPLbin expression (Fig. 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BinExpr {
    /// `Axis :: NameTest`
    Step(Axis, NameTest),
    /// `P1 / P2` — relation composition.
    Seq(Box<BinExpr>, Box<BinExpr>),
    /// `P1 union P2`
    Union(Box<BinExpr>, Box<BinExpr>),
    /// `except P` — complement with respect to `nodes(t)²`.
    Except(Box<BinExpr>),
    /// `[P]` — `{(u,u) | ∃u'. (u,u') ∈ P}`.
    Test(Box<BinExpr>),
}

impl BinExpr {
    /// `self::*` — the identity relation.
    pub fn self_star() -> BinExpr {
        BinExpr::Step(Axis::SelfAxis, NameTest::Wildcard)
    }

    /// The `nodes` relation of Section 2: every pair of nodes,
    /// `(ancestor::* union self::*)/(descendant::* union self::*)`.
    pub fn nodes() -> BinExpr {
        let up = BinExpr::Union(
            Box::new(BinExpr::Step(Axis::Ancestor, NameTest::Wildcard)),
            Box::new(BinExpr::self_star()),
        );
        let down = BinExpr::Union(
            Box::new(BinExpr::Step(Axis::Descendant, NameTest::Wildcard)),
            Box::new(BinExpr::self_star()),
        );
        BinExpr::Seq(Box::new(up), Box::new(down))
    }

    /// Composition `self / other`.
    pub fn then(self, other: BinExpr) -> BinExpr {
        BinExpr::Seq(Box::new(self), Box::new(other))
    }

    /// Union `self union other`.
    pub fn or(self, other: BinExpr) -> BinExpr {
        BinExpr::Union(Box::new(self), Box::new(other))
    }

    /// Unary complement `except self`.
    pub fn complement(self) -> BinExpr {
        BinExpr::Except(Box::new(self))
    }

    /// The filter test `[self]`.
    pub fn test(self) -> BinExpr {
        BinExpr::Test(Box::new(self))
    }

    /// Derived binary intersection:
    /// `a intersect b = except (except a union except b)`.
    pub fn intersect(a: BinExpr, b: BinExpr) -> BinExpr {
        BinExpr::Except(Box::new(BinExpr::Union(
            Box::new(BinExpr::Except(Box::new(a))),
            Box::new(BinExpr::Except(Box::new(b))),
        )))
    }

    /// Derived binary difference: `a except b = except (except a union b)`.
    pub fn minus(a: BinExpr, b: BinExpr) -> BinExpr {
        BinExpr::Except(Box::new(BinExpr::Union(
            Box::new(BinExpr::Except(Box::new(a))),
            Box::new(b),
        )))
    }

    /// `|P|` — the number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            BinExpr::Step(_, _) => 1,
            BinExpr::Seq(a, b) | BinExpr::Union(a, b) => 1 + a.size() + b.size(),
            BinExpr::Except(p) | BinExpr::Test(p) => 1 + p.size(),
        }
    }

    /// All distinct steps occurring in the expression (useful for
    /// precomputing axis relations).
    pub fn steps(&self) -> Vec<(Axis, NameTest)> {
        let mut out = Vec::new();
        self.collect_steps(&mut out);
        out
    }

    fn collect_steps(&self, out: &mut Vec<(Axis, NameTest)>) {
        match self {
            BinExpr::Step(a, n) => {
                if !out.iter().any(|(a2, n2)| a2 == a && n2 == n) {
                    out.push((*a, n.clone()));
                }
            }
            BinExpr::Seq(a, b) | BinExpr::Union(a, b) => {
                a.collect_steps(out);
                b.collect_steps(out);
            }
            BinExpr::Except(p) | BinExpr::Test(p) => p.collect_steps(out),
        }
    }
}

fn bin_prec(e: &BinExpr) -> u8 {
    match e {
        BinExpr::Union(_, _) => 1,
        BinExpr::Seq(_, _) => 2,
        BinExpr::Except(_) => 3,
        BinExpr::Step(_, _) | BinExpr::Test(_) => 4,
    }
}

fn fmt_bin(e: &BinExpr, min_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let prec = bin_prec(e);
    let parens = prec < min_prec;
    if parens {
        f.write_str("(")?;
    }
    match e {
        BinExpr::Step(a, n) => write!(f, "{a}::{n}")?,
        BinExpr::Seq(a, b) => {
            fmt_bin(a, prec, f)?;
            f.write_str("/")?;
            fmt_bin(b, prec, f)?;
        }
        BinExpr::Union(a, b) => {
            fmt_bin(a, prec, f)?;
            f.write_str(" union ")?;
            fmt_bin(b, prec, f)?;
        }
        BinExpr::Except(p) => {
            f.write_str("except ")?;
            fmt_bin(p, prec + 1, f)?;
        }
        BinExpr::Test(p) => {
            f.write_str("[")?;
            fmt_bin(p, 0, f)?;
            f.write_str("]")?;
        }
    }
    if parens {
        f.write_str(")")?;
    }
    Ok(())
}

impl fmt::Display for BinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_bin(self, 0, f)
    }
}

/// Error raised when translating an expression that is not variable-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotVariableFree {
    /// Rendering of the offending subexpression.
    pub subexpression: String,
}

impl fmt::Display for NotVariableFree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expression is not variable-free (condition N($x)): `{}`",
            self.subexpression
        )
    }
}

impl std::error::Error for NotVariableFree {}

/// Fig. 4: translate a variable-free Core XPath 2.0 path expression into
/// PPLbin.  Fails with [`NotVariableFree`] if the expression uses variables
/// or `for` loops.
pub fn from_variable_free_path(p: &PathExpr) -> Result<BinExpr, NotVariableFree> {
    match p {
        PathExpr::Step(a, n) => Ok(BinExpr::Step(*a, n.clone())),
        PathExpr::NodeRef(NodeRef::Dot) => Ok(BinExpr::self_star()),
        PathExpr::NodeRef(NodeRef::Var(_)) => Err(NotVariableFree {
            subexpression: p.to_string(),
        }),
        PathExpr::Seq(a, b) => Ok(from_variable_free_path(a)?.then(from_variable_free_path(b)?)),
        PathExpr::Union(a, b) => Ok(from_variable_free_path(a)?.or(from_variable_free_path(b)?)),
        PathExpr::Intersect(a, b) => Ok(BinExpr::intersect(
            from_variable_free_path(a)?,
            from_variable_free_path(b)?,
        )),
        PathExpr::Except(a, b) => Ok(BinExpr::minus(
            from_variable_free_path(a)?,
            from_variable_free_path(b)?,
        )),
        PathExpr::Filter(base, test) => Ok(from_variable_free_path(base)?
            .then(from_variable_free_test(test, true)?)),
        PathExpr::For(_, _, _) => Err(NotVariableFree {
            subexpression: p.to_string(),
        }),
    }
}

/// Fig. 4, test part: translate a variable-free test expression into a
/// PPLbin expression denoting a *partial identity* — the pairs `(u, u)` for
/// exactly the nodes `u` satisfying the test (or its negation when
/// `positive` is false).
pub fn from_variable_free_test(
    t: &TestExpr,
    positive: bool,
) -> Result<BinExpr, NotVariableFree> {
    match t {
        TestExpr::Path(p) => {
            let has_succ = from_variable_free_path(p)?.test();
            if positive {
                Ok(has_succ)
            } else {
                // Nodes with no P-successor: self::* except [P].
                Ok(BinExpr::minus(BinExpr::self_star(), has_succ))
            }
        }
        TestExpr::Comp(NodeRef::Dot, NodeRef::Dot) => {
            if positive {
                Ok(BinExpr::self_star())
            } else {
                // `not (. is .)` never holds.
                Ok(BinExpr::minus(BinExpr::self_star(), BinExpr::self_star()))
            }
        }
        TestExpr::Comp(_, _) => Err(NotVariableFree {
            subexpression: t.to_string(),
        }),
        TestExpr::Not(inner) => from_variable_free_test(inner, !positive),
        TestExpr::And(a, b) => {
            if positive {
                Ok(from_variable_free_test(a, true)?.then(from_variable_free_test(b, true)?))
            } else {
                Ok(from_variable_free_test(a, false)?.or(from_variable_free_test(b, false)?))
            }
        }
        TestExpr::Or(a, b) => {
            if positive {
                Ok(from_variable_free_test(a, true)?.or(from_variable_free_test(b, true)?))
            } else {
                Ok(from_variable_free_test(a, false)?.then(from_variable_free_test(b, false)?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;

    fn tr(src: &str) -> BinExpr {
        from_variable_free_path(&parse_path(src).unwrap()).unwrap()
    }

    #[test]
    fn steps_and_composition() {
        assert_eq!(tr("child::a").to_string(), "child::a");
        assert_eq!(tr("child::a/descendant::b").to_string(), "child::a/descendant::b");
        assert_eq!(tr(".").to_string(), "self::*");
        assert_eq!(tr("./child::a").to_string(), "self::*/child::a");
    }

    #[test]
    fn union_and_derived_operators() {
        assert_eq!(tr("child::a union child::b").to_string(), "child::a union child::b");
        assert_eq!(
            tr("child::a intersect child::b").to_string(),
            "except (except child::a union except child::b)"
        );
        assert_eq!(
            tr("child::a except child::b").to_string(),
            "except (except child::a union child::b)"
        );
    }

    #[test]
    fn filters_become_partial_identities() {
        assert_eq!(tr("child::a[child::b]").to_string(), "child::a/[child::b]");
        assert_eq!(
            tr("child::a[child::b and child::c]").to_string(),
            "child::a/[child::b]/[child::c]"
        );
        assert_eq!(
            tr("child::a[child::b or child::c]").to_string(),
            "child::a/([child::b] union [child::c])"
        );
        assert_eq!(
            tr("child::a[not(child::b)]").to_string(),
            "child::a/except (except self::* union [child::b])"
        );
        assert_eq!(tr("child::a[. is .]").to_string(), "child::a/self::*");
        assert_eq!(
            tr("child::a[not(not(child::b))]").to_string(),
            "child::a/[child::b]"
        );
    }

    #[test]
    fn de_morgan_on_negated_tests() {
        assert_eq!(
            tr("child::a[not(child::b and child::c)]").to_string(),
            tr("child::a[not(child::b) or not(child::c)]").to_string()
        );
        assert_eq!(
            tr("child::a[not(child::b or child::c)]").to_string(),
            tr("child::a[not(child::b) and not(child::c)]").to_string()
        );
    }

    #[test]
    fn variables_and_for_are_rejected() {
        for src in [
            "$x",
            "child::a[. is $x]",
            "for $x in child::a return child::b",
            "child::a[$x is $y]",
        ] {
            let p = parse_path(src).unwrap();
            assert!(from_variable_free_path(&p).is_err(), "{src}");
        }
    }

    #[test]
    fn translation_is_linear_in_size() {
        // A chain of filters and intersections must not blow up
        // exponentially.
        let mut src = String::from("child::a");
        for i in 0..20 {
            src = format!("{src}[child::b{i}] intersect descendant::c{i}");
        }
        let p = parse_path(&src).unwrap();
        let b = from_variable_free_path(&p).unwrap();
        // Each source node contributes a bounded number of target nodes.
        assert!(b.size() <= 6 * p.size(), "size {} vs {}", b.size(), p.size());
    }

    #[test]
    fn nodes_expression_shape() {
        let n = BinExpr::nodes();
        assert_eq!(
            n.to_string(),
            "(ancestor::* union self::*)/(descendant::* union self::*)"
        );
    }

    #[test]
    fn printer_round_trips_through_precedence() {
        let e = BinExpr::Except(Box::new(BinExpr::Union(
            Box::new(BinExpr::self_star()),
            Box::new(BinExpr::Step(Axis::Child, NameTest::name("a")).test()),
        )));
        assert_eq!(e.to_string(), "except (self::* union [child::a])");
        let seq_of_union = BinExpr::Seq(
            Box::new(BinExpr::Union(
                Box::new(BinExpr::Step(Axis::Child, NameTest::name("a"))),
                Box::new(BinExpr::Step(Axis::Child, NameTest::name("b"))),
            )),
            Box::new(BinExpr::Step(Axis::Child, NameTest::name("c"))),
        );
        assert_eq!(seq_of_union.to_string(), "(child::a union child::b)/child::c");
    }

    #[test]
    fn steps_collection_deduplicates() {
        let e = tr("child::a/child::a union descendant::b");
        let steps = e.steps();
        assert_eq!(steps.len(), 2);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(tr("child::a").size(), 1);
        assert_eq!(tr("child::a/child::b").size(), 3);
        assert_eq!(BinExpr::self_star().complement().size(), 2);
        assert_eq!(BinExpr::nodes().size(), 7);
    }

    #[test]
    fn not_variable_free_error_display() {
        let p = parse_path("$x/child::a").unwrap();
        let err = from_variable_free_path(&p).unwrap_err();
        assert!(err.to_string().contains("N($x)"));
        assert!(err.to_string().contains("$x"));
    }
}
