//! Abstract syntax of Core XPath 2.0 (Fig. 1 of the paper).
//!
//! ```text
//! Axis      := self | child | parent | descendant | ancestor
//!            | following_sibling | preceding_sibling
//! NameTest  := QName | *
//! Step      := Axis :: NameTest
//! NodeRef   := . | $x
//! PathExpr  := Step | NodeRef
//!            | PathExpr / PathExpr
//!            | PathExpr union PathExpr
//!            | PathExpr intersect PathExpr
//!            | PathExpr except PathExpr
//!            | PathExpr [ TestExpr ]
//!            | for $x in PathExpr return PathExpr
//! TestExpr  := PathExpr | CompTest | not TestExpr
//!            | TestExpr and TestExpr | TestExpr or TestExpr
//! CompTest  := NodeRef is NodeRef
//! ```

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use xpath_tree::Axis;

/// A node variable `$x`.
///
/// Variables are cheap to clone (`Arc<str>` internally) and ordered/hashable
/// so they can be used as map keys and in sorted variable sequences.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Arc<str>);

impl Var {
    /// Create a variable with the given name (without the leading `$`).
    pub fn new(name: &str) -> Var {
        Var(Arc::from(name))
    }

    /// The variable name, without the leading `$`.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Var {
        Var::new(s)
    }
}

/// A name test in a step: either a specific label or the wildcard `*`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NameTest {
    /// `*` — any label.
    Wildcard,
    /// A specific label `QName ∈ Σ`.
    Name(String),
}

impl NameTest {
    /// Convenience constructor for a named test.
    pub fn name(s: &str) -> NameTest {
        NameTest::Name(s.to_string())
    }

    /// Does the test accept the given label?
    pub fn matches(&self, label: &str) -> bool {
        match self {
            NameTest::Wildcard => true,
            NameTest::Name(n) => n == label,
        }
    }
}

impl fmt::Display for NameTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameTest::Wildcard => f.write_str("*"),
            NameTest::Name(n) => f.write_str(n),
        }
    }
}

/// A node reference: the context node `.` or a variable `$x`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// `.` — the current node.
    Dot,
    /// `$x` — the node bound to a variable.
    Var(Var),
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Dot => f.write_str("."),
            NodeRef::Var(v) => write!(f, "{v}"),
        }
    }
}

/// A Core XPath 2.0 path expression (Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PathExpr {
    /// `Axis :: NameTest`
    Step(Axis, NameTest),
    /// `.` or `$x`
    NodeRef(NodeRef),
    /// `P1 / P2`
    Seq(Box<PathExpr>, Box<PathExpr>),
    /// `P1 union P2`
    Union(Box<PathExpr>, Box<PathExpr>),
    /// `P1 intersect P2`
    Intersect(Box<PathExpr>, Box<PathExpr>),
    /// `P1 except P2`
    Except(Box<PathExpr>, Box<PathExpr>),
    /// `P [ T ]`
    Filter(Box<PathExpr>, Box<TestExpr>),
    /// `for $x in P1 return P2`
    For(Var, Box<PathExpr>, Box<PathExpr>),
}

/// A Core XPath 2.0 test expression (Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TestExpr {
    /// A path used as an existence test.
    Path(PathExpr),
    /// `NodeRef is NodeRef`
    Comp(NodeRef, NodeRef),
    /// `not T`
    Not(Box<TestExpr>),
    /// `T1 and T2`
    And(Box<TestExpr>, Box<TestExpr>),
    /// `T1 or T2`
    Or(Box<TestExpr>, Box<TestExpr>),
}

impl PathExpr {
    /// `|P|` — the number of AST nodes, the size measure used by the paper's
    /// complexity statements.
    pub fn size(&self) -> usize {
        match self {
            PathExpr::Step(_, _) | PathExpr::NodeRef(_) => 1,
            PathExpr::Seq(a, b)
            | PathExpr::Union(a, b)
            | PathExpr::Intersect(a, b)
            | PathExpr::Except(a, b) => 1 + a.size() + b.size(),
            PathExpr::Filter(p, t) => 1 + p.size() + t.size(),
            PathExpr::For(_, p1, p2) => 1 + p1.size() + p2.size(),
        }
    }

    /// Does the expression mention any variable (free or bound)?
    pub fn mentions_variables(&self) -> bool {
        !free_vars_path(self).is_empty() || self.has_for()
    }

    /// Does the expression contain a `for` loop?
    pub fn has_for(&self) -> bool {
        match self {
            PathExpr::Step(_, _) | PathExpr::NodeRef(_) => false,
            PathExpr::Seq(a, b)
            | PathExpr::Union(a, b)
            | PathExpr::Intersect(a, b)
            | PathExpr::Except(a, b) => a.has_for() || b.has_for(),
            PathExpr::Filter(p, t) => p.has_for() || t.has_for(),
            PathExpr::For(_, _, _) => true,
        }
    }

    /// The free variables `Var(P)` of the expression, in sorted order.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        free_vars_path(self)
    }

    /// Convenience: wrap in a filter.
    pub fn filter(self, test: TestExpr) -> PathExpr {
        PathExpr::Filter(Box::new(self), Box::new(test))
    }

    /// Convenience: compose with another path (`self / other`).
    pub fn then(self, other: PathExpr) -> PathExpr {
        PathExpr::Seq(Box::new(self), Box::new(other))
    }

    /// Convenience: union with another path.
    pub fn or_path(self, other: PathExpr) -> PathExpr {
        PathExpr::Union(Box::new(self), Box::new(other))
    }
}

impl TestExpr {
    /// `|T|` — number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            TestExpr::Path(p) => p.size(),
            TestExpr::Comp(_, _) => 1,
            TestExpr::Not(t) => 1 + t.size(),
            TestExpr::And(a, b) | TestExpr::Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Does the test contain a `for` loop?
    pub fn has_for(&self) -> bool {
        match self {
            TestExpr::Path(p) => p.has_for(),
            TestExpr::Comp(_, _) => false,
            TestExpr::Not(t) => t.has_for(),
            TestExpr::And(a, b) | TestExpr::Or(a, b) => a.has_for() || b.has_for(),
        }
    }

    /// The free variables `Var(T)`.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        free_vars_test(self)
    }
}

/// Free variables of a path expression.
///
/// `for $x in P1 return P2` binds `$x` in `P2` (but not in `P1`), exactly as
/// in the paper's quantifier semantics.
pub fn free_vars_path(p: &PathExpr) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    collect_path(p, &mut out);
    out
}

/// Free variables of a test expression.
pub fn free_vars_test(t: &TestExpr) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    collect_test(t, &mut out);
    out
}

fn collect_path(p: &PathExpr, out: &mut BTreeSet<Var>) {
    match p {
        PathExpr::Step(_, _) => {}
        PathExpr::NodeRef(NodeRef::Dot) => {}
        PathExpr::NodeRef(NodeRef::Var(v)) => {
            out.insert(v.clone());
        }
        PathExpr::Seq(a, b)
        | PathExpr::Union(a, b)
        | PathExpr::Intersect(a, b)
        | PathExpr::Except(a, b) => {
            collect_path(a, out);
            collect_path(b, out);
        }
        PathExpr::Filter(p, t) => {
            collect_path(p, out);
            collect_test(t, out);
        }
        PathExpr::For(x, p1, p2) => {
            collect_path(p1, out);
            let mut inner = BTreeSet::new();
            collect_path(p2, &mut inner);
            inner.remove(x);
            out.extend(inner);
        }
    }
}

fn collect_test(t: &TestExpr, out: &mut BTreeSet<Var>) {
    match t {
        TestExpr::Path(p) => collect_path(p, out),
        TestExpr::Comp(a, b) => {
            for r in [a, b] {
                if let NodeRef::Var(v) = r {
                    out.insert(v.clone());
                }
            }
        }
        TestExpr::Not(t) => collect_test(t, out),
        TestExpr::And(a, b) | TestExpr::Or(a, b) => {
            collect_test(a, out);
            collect_test(b, out);
        }
    }
}

/// The auxiliary path expression `nodes` from Section 2 of the paper, which
/// reaches every node of the tree from any start node:
/// `(ancestor::* union .)/(descendant::* union .)`.
pub fn nodes_path() -> PathExpr {
    let up = PathExpr::Union(
        Box::new(PathExpr::Step(Axis::Ancestor, NameTest::Wildcard)),
        Box::new(PathExpr::NodeRef(NodeRef::Dot)),
    );
    let down = PathExpr::Union(
        Box::new(PathExpr::Step(Axis::Descendant, NameTest::Wildcard)),
        Box::new(PathExpr::NodeRef(NodeRef::Dot)),
    );
    PathExpr::Seq(Box::new(up), Box::new(down))
}

/// The paper's "anchor the start of navigation at the root" prefix:
/// `.[. is $x and not(parent::*)] / P`, used when defining n-ary queries
/// whose navigation must begin at the document root.
pub fn anchor_at_root(var: &Var, p: PathExpr) -> PathExpr {
    let test = TestExpr::And(
        Box::new(TestExpr::Comp(NodeRef::Dot, NodeRef::Var(var.clone()))),
        Box::new(TestExpr::Not(Box::new(TestExpr::Path(PathExpr::Step(
            Axis::Parent,
            NameTest::Wildcard,
        ))))),
    );
    PathExpr::Seq(
        Box::new(PathExpr::Filter(
            Box::new(PathExpr::NodeRef(NodeRef::Dot)),
            Box::new(test),
        )),
        Box::new(p),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_path;

    #[test]
    fn var_basics() {
        let x = Var::new("x");
        let x2: Var = "x".into();
        assert_eq!(x, x2);
        assert_eq!(x.to_string(), "$x");
        assert_eq!(x.name(), "x");
        let y = Var::new("y");
        assert!(x < y);
    }

    #[test]
    fn name_test_matching() {
        assert!(NameTest::Wildcard.matches("anything"));
        assert!(NameTest::name("book").matches("book"));
        assert!(!NameTest::name("book").matches("author"));
    }

    #[test]
    fn size_counts_ast_nodes() {
        let p = parse_path("child::a/descendant::b union .").unwrap();
        // union(seq(step, step), dot) = 5 nodes
        assert_eq!(p.size(), 5);
        let q = parse_path("child::a[child::b and not(child::c)]").unwrap();
        // filter(step, and(path(step), not(path(step)))) = 1+1+ (1 + 1 + (1+1)) = 6
        assert_eq!(q.size(), 6);
    }

    #[test]
    fn free_vars_of_paths_and_tests() {
        let p = parse_path("$x/child::a[. is $y]").unwrap();
        let vars: Vec<String> = p.free_vars().iter().map(|v| v.name().to_string()).collect();
        assert_eq!(vars, vec!["x", "y"]);
    }

    #[test]
    fn for_binds_its_variable_in_the_return_clause_only() {
        let p = parse_path("for $x in child::a return $x/child::b").unwrap();
        assert!(p.free_vars().is_empty());
        assert!(p.has_for());
        // $x free in the `in` clause is NOT bound by the loop.
        let q = parse_path("for $x in $x/child::a return child::b").unwrap();
        assert_eq!(q.free_vars().len(), 1);
        // A different variable stays free.
        let r = parse_path("for $x in child::a return $y").unwrap();
        assert_eq!(
            r.free_vars().iter().next().unwrap().name(),
            "y"
        );
    }

    #[test]
    fn nodes_path_matches_paper_definition() {
        let n = nodes_path();
        assert_eq!(
            n.to_string(),
            "(ancestor::* union .)/(descendant::* union .)"
        );
        assert!(n.free_vars().is_empty());
    }

    #[test]
    fn anchor_at_root_shape() {
        let p = anchor_at_root(&Var::new("x"), parse_path("descendant::book").unwrap());
        let s = p.to_string();
        assert!(s.contains(". is $x"));
        assert!(s.contains("not(parent::*)"));
        assert!(s.ends_with("/descendant::book"));
    }

    #[test]
    fn builder_conveniences() {
        let p = PathExpr::Step(Axis::Child, NameTest::name("a"))
            .then(PathExpr::Step(Axis::Child, NameTest::name("b")))
            .filter(TestExpr::Path(PathExpr::Step(Axis::Child, NameTest::Wildcard)));
        // The filter applies to the whole composition, so the printer must
        // parenthesise it (a bare `child::a/child::b[child::*]` would attach
        // the filter to the last step only).
        assert_eq!(p.to_string(), "(child::a/child::b)[child::*]");
        let u = PathExpr::NodeRef(NodeRef::Dot).or_path(PathExpr::Step(Axis::Parent, NameTest::Wildcard));
        assert_eq!(u.to_string(), ". union parent::*");
    }

    #[test]
    fn mentions_variables_detects_bound_only_vars() {
        let p = parse_path("for $x in child::a return child::b").unwrap();
        assert!(p.free_vars().is_empty());
        assert!(p.mentions_variables());
        let q = parse_path("child::a").unwrap();
        assert!(!q.mentions_variables());
    }
}
