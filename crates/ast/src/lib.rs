//! # `xpath_ast` — Core XPath 2.0 syntax and the PPL fragment
//!
//! This crate implements the *syntactic* side of the paper:
//!
//! * [`expr`] — the abstract syntax of Core XPath 2.0 exactly as in Fig. 1 of
//!   the paper: path expressions with steps, node references (`.` and `$x`),
//!   composition, `union`, `intersect`, `except`, filters, `for … return …`
//!   loops, and test expressions with `is`-comparisons, `not`, `and`, `or`.
//! * [`parser`] — a recursive-descent parser for the concrete syntax used in
//!   the paper (with the usual XPath abbreviations `name` ≡ `child::name`).
//! * [`printer`] — `Display` implementations that print expressions back in
//!   the paper's notation.
//! * [`ppl`] — the checker for Definition 1: the seven restrictions
//!   N(for), NV(intersect), NV(except), NV(not), NVS(/), NVS([]), NVS(and)
//!   that carve the polynomial-time path language **PPL** out of
//!   Core XPath 2.0, with precise per-subexpression diagnostics.
//! * [`binexpr`] — the variable-free dialect **PPLbin** (Fig. 3) and the
//!   linear-time translation of Fig. 4 from variable-free Core XPath 2.0
//!   into PPLbin.
//! * [`dsl`] — programmatic constructors for building queries without going
//!   through the parser.
//!
//! The evaluation algorithms live in the sibling crates `xpath_naive`
//! (specification semantics of Fig. 2), `xpath_pplbin` (Boolean-matrix
//! evaluation, Thm. 2) and `xpath_hcl` (the n-ary answering algorithm of
//! Fig. 8).
//!
//! ```
//! use xpath_ast::parse_path;
//!
//! // The author/title pair query from the paper's introduction.
//! let p = parse_path(
//!     "descendant::book[child::author[. is $y] and child::title[. is $z]]",
//! ).unwrap();
//! assert_eq!(xpath_ast::ppl::check_ppl(&p), Ok(()));
//! let vars = xpath_ast::expr::free_vars_path(&p);
//! assert_eq!(vars.len(), 2);
//! ```

#![forbid(unsafe_code)]

pub mod binexpr;
pub mod dsl;
pub mod expr;
pub mod parser;
pub mod ppl;
pub mod printer;

pub use binexpr::BinExpr;
pub use expr::{NameTest, NodeRef, PathExpr, TestExpr, Var};
pub use parser::{parse_path, ParseError};
pub use ppl::{check_ppl, check_pplbin, PplViolation, Restriction};
pub use xpath_tree::Axis;
