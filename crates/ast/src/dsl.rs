//! Programmatic construction of Core XPath 2.0 expressions.
//!
//! The DSL offers short, composable constructors so that examples,
//! workload generators and tests can build queries without going through the
//! concrete-syntax parser:
//!
//! ```
//! use xpath_ast::dsl::*;
//!
//! // descendant::book[child::author[. is $y] and child::title[. is $z]]
//! let q = step_desc("book").filter(and(
//!     has(step_child("author").filter(is_var("y"))),
//!     has(step_child("title").filter(is_var("z"))),
//! ));
//! assert_eq!(
//!     q.to_string(),
//!     "descendant::book[child::author[. is $y] and child::title[. is $z]]"
//! );
//! ```

use crate::expr::{NameTest, NodeRef, PathExpr, TestExpr, Var};
use xpath_tree::Axis;

/// A step along an arbitrary axis with a named label test.
pub fn step(axis: Axis, name: &str) -> PathExpr {
    PathExpr::Step(axis, NameTest::name(name))
}

/// A step along an arbitrary axis with the wildcard test.
pub fn step_any(axis: Axis) -> PathExpr {
    PathExpr::Step(axis, NameTest::Wildcard)
}

/// `child::name`
pub fn step_child(name: &str) -> PathExpr {
    step(Axis::Child, name)
}

/// `descendant::name`
pub fn step_desc(name: &str) -> PathExpr {
    step(Axis::Descendant, name)
}

/// `parent::name`
pub fn step_parent(name: &str) -> PathExpr {
    step(Axis::Parent, name)
}

/// `.` — the context node.
pub fn dot() -> PathExpr {
    PathExpr::NodeRef(NodeRef::Dot)
}

/// `$name` — a variable reference used as a path (goto semantics).
pub fn var(name: &str) -> PathExpr {
    PathExpr::NodeRef(NodeRef::Var(Var::new(name)))
}

/// `a / b`
pub fn seq(a: PathExpr, b: PathExpr) -> PathExpr {
    PathExpr::Seq(Box::new(a), Box::new(b))
}

/// Compose a non-empty sequence of paths left to right.
pub fn seq_all<I: IntoIterator<Item = PathExpr>>(paths: I) -> PathExpr {
    let mut it = paths.into_iter();
    let first = it.next().expect("seq_all needs at least one path");
    it.fold(first, seq)
}

/// `a union b`
pub fn union(a: PathExpr, b: PathExpr) -> PathExpr {
    PathExpr::Union(Box::new(a), Box::new(b))
}

/// Union of a non-empty sequence of paths.
pub fn union_all<I: IntoIterator<Item = PathExpr>>(paths: I) -> PathExpr {
    let mut it = paths.into_iter();
    let first = it.next().expect("union_all needs at least one path");
    it.fold(first, union)
}

/// `a intersect b`
pub fn intersect(a: PathExpr, b: PathExpr) -> PathExpr {
    PathExpr::Intersect(Box::new(a), Box::new(b))
}

/// `a except b`
pub fn except(a: PathExpr, b: PathExpr) -> PathExpr {
    PathExpr::Except(Box::new(a), Box::new(b))
}

/// `for $x in p1 return p2`
pub fn for_in(x: &str, p1: PathExpr, p2: PathExpr) -> PathExpr {
    PathExpr::For(Var::new(x), Box::new(p1), Box::new(p2))
}

/// Use a path as an existence test.
pub fn has(p: PathExpr) -> TestExpr {
    TestExpr::Path(p)
}

/// `. is $name`
pub fn is_var(name: &str) -> TestExpr {
    TestExpr::Comp(NodeRef::Dot, NodeRef::Var(Var::new(name)))
}

/// `$a is $b`
pub fn var_is_var(a: &str, b: &str) -> TestExpr {
    TestExpr::Comp(NodeRef::Var(Var::new(a)), NodeRef::Var(Var::new(b)))
}

/// `. is .`
pub fn dot_is_dot() -> TestExpr {
    TestExpr::Comp(NodeRef::Dot, NodeRef::Dot)
}

/// `t1 and t2`
pub fn and(a: TestExpr, b: TestExpr) -> TestExpr {
    TestExpr::And(Box::new(a), Box::new(b))
}

/// Conjunction of a non-empty sequence of tests.
pub fn and_all<I: IntoIterator<Item = TestExpr>>(tests: I) -> TestExpr {
    let mut it = tests.into_iter();
    let first = it.next().expect("and_all needs at least one test");
    it.fold(first, and)
}

/// `t1 or t2`
pub fn or(a: TestExpr, b: TestExpr) -> TestExpr {
    TestExpr::Or(Box::new(a), Box::new(b))
}

/// `not t`
pub fn not(t: TestExpr) -> TestExpr {
    TestExpr::Not(Box::new(t))
}

/// The root test: `.[not(parent::*)]`.
pub fn at_root() -> PathExpr {
    dot().filter(not(has(step_any(Axis::Parent))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;

    #[test]
    fn dsl_matches_parser() {
        let built = step_desc("book").filter(and(
            has(step_child("author").filter(is_var("y"))),
            has(step_child("title").filter(is_var("z"))),
        ));
        let parsed = parse_path(
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn n_ary_combinators() {
        let s = seq_all([step_child("a"), step_child("b"), step_child("c")]);
        assert_eq!(s.to_string(), "child::a/child::b/child::c");
        let u = union_all([dot(), var("x"), step_child("a")]);
        assert_eq!(u.to_string(), ". union $x union child::a");
        let t = and_all([has(step_child("a")), is_var("x"), dot_is_dot()]);
        assert_eq!(t.to_string(), "child::a and . is $x and . is .");
    }

    #[test]
    fn root_anchor() {
        assert_eq!(at_root().to_string(), ".[not(parent::*)]");
    }

    #[test]
    fn operators_and_loops() {
        let q = for_in("x", step_child("a"), intersect(dot(), except(var("x"), dot())));
        assert_eq!(
            q.to_string(),
            "for $x in child::a return . intersect ($x except .)"
        );
        assert_eq!(var_is_var("a", "b").to_string(), "$a is $b");
        assert_eq!(or(dot_is_dot(), not(dot_is_dot())).to_string(), ". is . or not(. is .)");
        assert_eq!(step_parent("p").to_string(), "parent::p");
        assert_eq!(step_any(Axis::Ancestor).to_string(), "ancestor::*");
    }
}
