//! Pretty-printing of Core XPath 2.0 expressions in the paper's notation.
//!
//! The printer inserts parentheses only where required by operator
//! precedence, so `parse(print(e)) == e` for every expression `e`
//! (round-trip property, tested in `parser.rs` and with proptest in the
//! crate's integration tests).

use crate::expr::{PathExpr, TestExpr};
use std::fmt;

/// Binding strength of a path-expression construct; larger binds tighter.
fn path_prec(p: &PathExpr) -> u8 {
    match p {
        PathExpr::For(_, _, _) => 0,
        PathExpr::Union(_, _) => 1,
        PathExpr::Intersect(_, _) | PathExpr::Except(_, _) => 2,
        PathExpr::Seq(_, _) => 3,
        PathExpr::Filter(_, _) => 4,
        PathExpr::Step(_, _) | PathExpr::NodeRef(_) => 5,
    }
}

fn test_prec(t: &TestExpr) -> u8 {
    match t {
        TestExpr::Or(_, _) => 1,
        TestExpr::And(_, _) => 2,
        TestExpr::Not(_) => 3,
        TestExpr::Path(_) | TestExpr::Comp(_, _) => 4,
    }
}

fn fmt_path(p: &PathExpr, min_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let prec = path_prec(p);
    let parens = prec < min_prec;
    if parens {
        f.write_str("(")?;
    }
    match p {
        PathExpr::Step(axis, test) => write!(f, "{axis}::{test}")?,
        PathExpr::NodeRef(r) => write!(f, "{r}")?,
        PathExpr::Seq(a, b) => {
            fmt_path(a, prec, f)?;
            f.write_str("/")?;
            // `/` parses left-associatively, so a right-nested composition
            // needs parentheses for the print/parse round trip to preserve
            // the AST shape exactly.
            fmt_path(b, prec + 1, f)?;
        }
        PathExpr::Union(a, b) => {
            fmt_path(a, prec, f)?;
            f.write_str(" union ")?;
            fmt_path(b, prec + 1, f)?;
        }
        PathExpr::Intersect(a, b) => {
            fmt_path(a, prec, f)?;
            f.write_str(" intersect ")?;
            // intersect / except are left-associative and mutually
            // non-associative: parenthesise a right child at the same level.
            fmt_path(b, prec + 1, f)?;
        }
        PathExpr::Except(a, b) => {
            fmt_path(a, prec, f)?;
            f.write_str(" except ")?;
            fmt_path(b, prec + 1, f)?;
        }
        PathExpr::Filter(base, test) => {
            fmt_path(base, prec, f)?;
            f.write_str("[")?;
            fmt_test(test, 0, f)?;
            f.write_str("]")?;
        }
        PathExpr::For(x, p1, p2) => {
            write!(f, "for {x} in ")?;
            fmt_path(p1, 1, f)?;
            f.write_str(" return ")?;
            fmt_path(p2, 0, f)?;
        }
    }
    if parens {
        f.write_str(")")?;
    }
    Ok(())
}

fn fmt_test(t: &TestExpr, min_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let prec = test_prec(t);
    let parens = prec < min_prec;
    if parens {
        f.write_str("(")?;
    }
    match t {
        TestExpr::Path(p) => fmt_path(p, 0, f)?,
        TestExpr::Comp(a, b) => write!(f, "{a} is {b}")?,
        TestExpr::Not(inner) => {
            f.write_str("not(")?;
            fmt_test(inner, 0, f)?;
            f.write_str(")")?;
        }
        TestExpr::And(a, b) => {
            fmt_test(a, prec, f)?;
            f.write_str(" and ")?;
            fmt_test(b, prec + 1, f)?;
        }
        TestExpr::Or(a, b) => {
            fmt_test(a, prec, f)?;
            f.write_str(" or ")?;
            fmt_test(b, prec + 1, f)?;
        }
    }
    if parens {
        f.write_str(")")?;
    }
    Ok(())
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_path(self, 0, f)
    }
}

impl fmt::Display for TestExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_test(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_path;
    use crate::{NameTest, NodeRef, PathExpr, TestExpr, Var};
    use xpath_tree::Axis;

    fn rt(src: &str) {
        let p = parse_path(src).unwrap();
        let printed = p.to_string();
        let reparsed = parse_path(&printed).unwrap();
        assert_eq!(p, reparsed, "print/parse round trip changed {src:?} -> {printed:?}");
    }

    #[test]
    fn round_trips_preserve_structure() {
        for src in [
            "child::a",
            "child::a/child::b/child::c",
            "child::a union child::b union child::c",
            "(child::a union child::b)/child::c",
            "child::a intersect (child::b intersect child::c)",
            "child::a except (child::b union child::c)",
            "(child::a except child::b) except child::c",
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
            "for $x in descendant::book return child::author[. is $x]",
            ".[. is $x and not(parent::*)]/descendant::*",
            "child::a[not(not(child::b))]",
            "child::a[(child::b or child::c) and child::d]",
        ] {
            rt(src);
        }
    }

    #[test]
    fn filters_on_unions_are_parenthesised() {
        let p = PathExpr::Filter(
            Box::new(PathExpr::Union(
                Box::new(PathExpr::Step(Axis::Child, NameTest::name("a"))),
                Box::new(PathExpr::Step(Axis::Child, NameTest::name("b"))),
            )),
            Box::new(TestExpr::Path(PathExpr::Step(Axis::Child, NameTest::name("c")))),
        );
        assert_eq!(p.to_string(), "(child::a union child::b)[child::c]");
        rt(&p.to_string());
    }

    #[test]
    fn right_nested_operators_keep_parens() {
        let p = PathExpr::Except(
            Box::new(PathExpr::Step(Axis::Child, NameTest::name("a"))),
            Box::new(PathExpr::Except(
                Box::new(PathExpr::Step(Axis::Child, NameTest::name("b"))),
                Box::new(PathExpr::Step(Axis::Child, NameTest::name("c"))),
            )),
        );
        let s = p.to_string();
        assert_eq!(s, "child::a except (child::b except child::c)");
        assert_eq!(parse_path(&s).unwrap(), p);
    }

    #[test]
    fn for_in_a_composition_is_parenthesised() {
        let p = PathExpr::Seq(
            Box::new(PathExpr::For(
                Var::new("x"),
                Box::new(PathExpr::Step(Axis::Child, NameTest::name("a"))),
                Box::new(PathExpr::NodeRef(NodeRef::Var(Var::new("x")))),
            )),
            Box::new(PathExpr::Step(Axis::Child, NameTest::name("b"))),
        );
        let s = p.to_string();
        assert_eq!(s, "(for $x in child::a return $x)/child::b");
        assert_eq!(parse_path(&s).unwrap(), p);
    }

    #[test]
    fn test_display_direct() {
        let t = TestExpr::And(
            Box::new(TestExpr::Comp(NodeRef::Dot, NodeRef::Var(Var::new("x")))),
            Box::new(TestExpr::Not(Box::new(TestExpr::Path(PathExpr::Step(
                Axis::Parent,
                NameTest::Wildcard,
            ))))),
        );
        assert_eq!(t.to_string(), ". is $x and not(parent::*)");
    }
}
