//! The `MC` satisfiability table (Proposition 10 of the paper).
//!
//! For a sharing expression `D`, equation system `∆` and tree `t`, the table
//! stores for every sub-expression `D0` and node `u` whether
//!
//! ```text
//! MC(D0, u) = 1  iff  ∃α. ∃u' ∈ nodes(t). (u, u') ∈ ⟦(D0)_∆⟧^{t,α}
//! ```
//!
//! i.e. whether a navigation starting at `u` can succeed for *some*
//! assignment of the variables.  Because of the NVS(/) restriction, the
//! recursive equations of the paper are sound:
//!
//! ```text
//! MC(self, u)       = 1
//! MC(b/D, u)        = ⋁_{(u,u') ∈ q_b(t)} MC(D, u')
//! MC(p, u)          = MC(∆(p), u)
//! MC([D']/D'', u)   = MC(D', u) ∧ MC(D'', u)
//! MC(x/D, u)        = MC(D, u)
//! MC(D ∪ D', u)     = MC(D, u) ∨ MC(D', u)
//! ```
//!
//! The table is computed by one bottom-up sweep over the arena (children
//! have smaller ids than parents), in time `O(|t|²·(|D|+|∆|))` after the
//! oracle precompilation — the bound of Prop. 10.

use crate::oracle::CompiledAtoms;
use crate::share::{EquationSystem, ShareId, ShareNode};
use xpath_tree::{NodeId, NodeSet};

/// The computed `MC` table: one node set per sharing-expression node.
#[derive(Debug, Clone)]
pub struct McTable {
    /// `sets[d]` — the nodes `u` with `MC(d, u) = 1`.
    sets: Vec<NodeSet>,
}

impl McTable {
    /// Compute the table for a normalised expression over a compiled oracle.
    pub fn compute(eq: &EquationSystem, atoms: &CompiledAtoms) -> McTable {
        let n = atoms.domain();
        let mut sets: Vec<NodeSet> = Vec::with_capacity(eq.len());
        for (id, node) in eq.iter() {
            debug_assert_eq!(id.index(), sets.len());
            let set = match node {
                ShareNode::SelfEnd => NodeSet::full(n),
                ShareNode::Param(body) => sets[body.index()].clone(),
                ShareNode::Union(a, b) => {
                    let mut s = sets[a.index()].clone();
                    s.union_with(&sets[b.index()]);
                    s
                }
                ShareNode::StepVar(_, rest) => sets[rest.index()].clone(),
                ShareNode::StepFilter(body, rest) => {
                    let mut s = sets[body.index()].clone();
                    s.intersect_with(&sets[rest.index()]);
                    s
                }
                ShareNode::StepAtom(atom, rest) => {
                    let rest_set = &sets[rest.index()];
                    let mut s = NodeSet::empty(n);
                    for u in 0..n {
                        let uid = NodeId(u as u32);
                        // Early-exit row predicate: lazy atom sources answer
                        // without materialising the row, so the sweep stays
                        // `O(pairs touched)` over deferred complements.
                        if atoms.row_any(*atom, uid, |v| rest_set.contains(v)) {
                            s.insert(uid);
                        }
                    }
                    s
                }
            };
            sets.push(set);
        }
        McTable { sets }
    }

    /// `MC(d, u)`.
    #[inline]
    pub fn holds(&self, d: ShareId, u: NodeId) -> bool {
        self.sets[d.index()].contains(u)
    }

    /// The set of nodes `u` with `MC(d, u) = 1`.
    pub fn satisfying(&self, d: ShareId) -> &NodeSet {
        &self.sets[d.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::Hcl;
    use crate::oracle::{intern_atoms, PplBinAtoms};
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_ast::{parse_path, Var};
    use xpath_tree::Tree;

    fn bin(src: &str) -> xpath_ast::BinExpr {
        from_variable_free_path(&parse_path(src).unwrap()).unwrap()
    }

    fn setup(
        tree: &Tree,
        hcl: &Hcl<xpath_ast::BinExpr>,
    ) -> (EquationSystem, CompiledAtoms) {
        let (interned, atoms) = intern_atoms(hcl);
        let compiled = PplBinAtoms::compile(tree, &atoms);
        let eq = EquationSystem::from_hcl(&interned);
        (eq, compiled)
    }

    #[test]
    fn atom_chain_mc_matches_reachability() {
        let t = Tree::from_terms("bib(book(author,title),book(title))").unwrap();
        // child::book / child::author — satisfiable only from the root.
        let hcl = Hcl::Atom(bin("child::book")).then(Hcl::Atom(bin("child::author")));
        let (eq, compiled) = setup(&t, &hcl);
        let mc = McTable::compute(&eq, &compiled);
        let sat = mc.satisfying(eq.root());
        assert_eq!(sat.iter().collect::<Vec<_>>(), vec![t.root()]);
    }

    #[test]
    fn variables_do_not_constrain_mc() {
        let t = Tree::from_terms("a(b,c)").unwrap();
        // child::* / x — satisfiable from the root for *some* assignment of
        // x (namely x ↦ the reached child), so MC holds at the root.
        let hcl = Hcl::Atom(bin("child::*")).then(Hcl::Var(Var::new("x")));
        let (eq, compiled) = setup(&t, &hcl);
        let mc = McTable::compute(&eq, &compiled);
        assert!(mc.holds(eq.root(), t.root()));
        // But not from a leaf, which has no child at all.
        let leaf = t.nodes_with_label_str("b")[0];
        assert!(!mc.holds(eq.root(), leaf));
    }

    #[test]
    fn filters_conjoin_and_unions_disjoin() {
        let t = Tree::from_terms("r(a(x),b(y),c)").unwrap();
        // [child::x]/child::* — nodes with an x child that also have some child.
        let hcl = Hcl::Filter(Box::new(Hcl::Atom(bin("child::x"))))
            .then(Hcl::Atom(bin("child::*")));
        let (eq, compiled) = setup(&t, &hcl);
        let mc = McTable::compute(&eq, &compiled);
        let sat: Vec<_> = mc.satisfying(eq.root()).iter().collect();
        assert_eq!(sat, vec![t.nodes_with_label_str("a")[0]]);

        // child::x ∪ child::y — nodes with an x child or a y child.
        let hcl2 = Hcl::Atom(bin("child::x")).or(Hcl::Atom(bin("child::y")));
        let (eq2, compiled2) = setup(&t, &hcl2);
        let mc2 = McTable::compute(&eq2, &compiled2);
        let sat2: Vec<_> = mc2.satisfying(eq2.root()).iter().collect();
        assert_eq!(
            sat2,
            vec![t.nodes_with_label_str("a")[0], t.nodes_with_label_str("b")[0]]
        );
    }

    #[test]
    fn shared_tails_are_computed_once_and_agree() {
        let t = Tree::from_terms("r(a(c),b(c),d)").unwrap();
        // (child::a ∪ child::b)/child::c — the tail child::c is shared via a
        // parameter; MC at the root must hold.
        let hcl = Hcl::Atom(bin("child::a"))
            .or(Hcl::Atom(bin("child::b")))
            .then(Hcl::Atom(bin("child::c")));
        let (eq, compiled) = setup(&t, &hcl);
        let mc = McTable::compute(&eq, &compiled);
        assert!(mc.holds(eq.root(), t.root()));
        assert_eq!(mc.satisfying(eq.root()).len(), 1);
    }

    #[test]
    fn unsatisfiable_everywhere() {
        let t = Tree::from_terms("a(b)").unwrap();
        let hcl = Hcl::Atom(bin("child::zzz")).then(Hcl::Var(Var::new("x")));
        let (eq, compiled) = setup(&t, &hcl);
        let mc = McTable::compute(&eq, &compiled);
        assert!(mc.satisfying(eq.root()).is_empty());
    }
}
