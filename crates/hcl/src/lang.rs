//! The hybrid composition language HCL(L) — syntax and semantics-level
//! helpers (Fig. 5 and Fig. 6 of the paper).
//!
//! An expression `C ∈ HCL(L)` is one of
//!
//! ```text
//! C := b        (b ∈ L, an expression defining a binary query)
//!    | C / C'   (composition)
//!    | x        (a variable, interpreted as the node test {(α(x), α(x))})
//!    | [C]      (filter: {(u,u) | ∃u'. (u,u') ∈ ⟦C⟧})
//!    | C ∪ C'   (union)
//! ```
//!
//! The type is generic in the atom type `B`, mirroring the paper's
//! parameterisation by the binary query language `L`.  `HCL⁻(L)` is the
//! fragment satisfying NVS(/): no variable sharing in compositions;
//! [`Hcl::check_no_sharing`] verifies it.

use std::collections::BTreeSet;
use std::fmt;
use xpath_ast::Var;

/// An HCL(L) expression with atoms of type `B`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Hcl<B> {
    /// A binary query `b ∈ L`.
    Atom(B),
    /// A variable `x`, used as an equality node test.
    Var(Var),
    /// Composition `C / C'`.
    Seq(Box<Hcl<B>>, Box<Hcl<B>>),
    /// Filter `[C]`.
    Filter(Box<Hcl<B>>),
    /// Union `C ∪ C'`.
    Union(Box<Hcl<B>>, Box<Hcl<B>>),
}

impl<B> Hcl<B> {
    /// Composition `self / other`.
    pub fn then(self, other: Hcl<B>) -> Hcl<B> {
        Hcl::Seq(Box::new(self), Box::new(other))
    }

    /// Union `self ∪ other`.
    pub fn or(self, other: Hcl<B>) -> Hcl<B> {
        Hcl::Union(Box::new(self), Box::new(other))
    }

    /// Filter `[self]`.
    pub fn filter(self) -> Hcl<B> {
        Hcl::Filter(Box::new(self))
    }

    /// The *composition size* `|C|`: the number of HCL nodes.  Atoms count 1
    /// regardless of their size as expressions of `L`, exactly as defined in
    /// Section 5 of the paper.
    pub fn size(&self) -> usize {
        match self {
            Hcl::Atom(_) | Hcl::Var(_) => 1,
            Hcl::Seq(a, b) | Hcl::Union(a, b) => 1 + a.size() + b.size(),
            Hcl::Filter(c) => 1 + c.size(),
        }
    }

    /// The variables occurring in the expression.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Hcl::Atom(_) => {}
            Hcl::Var(x) => {
                out.insert(x.clone());
            }
            Hcl::Seq(a, b) | Hcl::Union(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Hcl::Filter(c) => c.collect_vars(out),
        }
    }

    /// All atoms of the expression, in left-to-right order (with repeats).
    pub fn atoms(&self) -> Vec<&B> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a B>) {
        match self {
            Hcl::Atom(b) => out.push(b),
            Hcl::Var(_) => {}
            Hcl::Seq(a, b) | Hcl::Union(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
            Hcl::Filter(c) => c.collect_atoms(out),
        }
    }

    /// Check the NVS(/) condition of `HCL⁻(L)`: no composition `C/C'` with
    /// `Var(C) ∩ Var(C') ≠ ∅`.  Returns the shared variables of the first
    /// violating composition, if any.
    pub fn check_no_sharing(&self) -> Result<(), Vec<Var>> {
        match self {
            Hcl::Atom(_) | Hcl::Var(_) => Ok(()),
            Hcl::Seq(a, b) => {
                let shared: Vec<Var> = a.vars().intersection(&b.vars()).cloned().collect();
                if !shared.is_empty() {
                    return Err(shared);
                }
                a.check_no_sharing()?;
                b.check_no_sharing()
            }
            Hcl::Union(a, b) => {
                a.check_no_sharing()?;
                b.check_no_sharing()
            }
            Hcl::Filter(c) => c.check_no_sharing(),
        }
    }

    /// Is the expression in `HCL⁻(L)`?
    pub fn is_hcl_minus(&self) -> bool {
        self.check_no_sharing().is_ok()
    }

    /// Is the expression union-free (the `N(∪)` fragment related to acyclic
    /// conjunctive queries in Section 6)?
    pub fn is_union_free(&self) -> bool {
        match self {
            Hcl::Atom(_) | Hcl::Var(_) => true,
            Hcl::Seq(a, b) => a.is_union_free() && b.is_union_free(),
            Hcl::Union(_, _) => false,
            Hcl::Filter(c) => c.is_union_free(),
        }
    }

    /// Map the atoms of the expression, keeping the structure.
    pub fn map_atoms<B2>(&self, f: &mut impl FnMut(&B) -> B2) -> Hcl<B2> {
        match self {
            Hcl::Atom(b) => Hcl::Atom(f(b)),
            Hcl::Var(x) => Hcl::Var(x.clone()),
            Hcl::Seq(a, b) => Hcl::Seq(Box::new(a.map_atoms(f)), Box::new(b.map_atoms(f))),
            Hcl::Union(a, b) => Hcl::Union(Box::new(a.map_atoms(f)), Box::new(b.map_atoms(f))),
            Hcl::Filter(c) => Hcl::Filter(Box::new(c.map_atoms(f))),
        }
    }
}

fn hcl_prec<B>(c: &Hcl<B>) -> u8 {
    match c {
        Hcl::Union(_, _) => 1,
        Hcl::Seq(_, _) => 2,
        Hcl::Atom(_) | Hcl::Var(_) | Hcl::Filter(_) => 3,
    }
}

fn fmt_hcl<B: fmt::Display>(
    c: &Hcl<B>,
    min_prec: u8,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    let prec = hcl_prec(c);
    let parens = prec < min_prec;
    if parens {
        f.write_str("(")?;
    }
    match c {
        Hcl::Atom(b) => write!(f, "{b}")?,
        Hcl::Var(x) => write!(f, "{x}")?,
        Hcl::Seq(a, b) => {
            fmt_hcl(a, prec, f)?;
            f.write_str("/")?;
            fmt_hcl(b, prec, f)?;
        }
        Hcl::Union(a, b) => {
            fmt_hcl(a, prec, f)?;
            f.write_str(" ∪ ")?;
            fmt_hcl(b, prec, f)?;
        }
        Hcl::Filter(inner) => {
            f.write_str("[")?;
            fmt_hcl(inner, 0, f)?;
            f.write_str("]")?;
        }
    }
    if parens {
        f.write_str(")")?;
    }
    Ok(())
}

impl<B: fmt::Display> fmt::Display for Hcl<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_hcl(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(s: &str) -> Hcl<String> {
        Hcl::Atom(s.to_string())
    }

    fn var(s: &str) -> Hcl<String> {
        Hcl::Var(Var::new(s))
    }

    #[test]
    fn size_counts_hcl_nodes_not_atom_sizes() {
        let c = atom("a-very-long-binary-query").then(var("x")).or(atom("b"));
        // union(seq(atom, var), atom) = 5
        assert_eq!(c.size(), 5);
    }

    #[test]
    fn vars_and_atoms_collection() {
        let c = atom("ch").then(var("x")).or(atom("desc").then(var("y"))).filter();
        assert_eq!(
            c.vars().iter().map(|v| v.name().to_string()).collect::<Vec<_>>(),
            vec!["x", "y"]
        );
        assert_eq!(c.atoms().len(), 2);
    }

    #[test]
    fn nvs_check_detects_sharing_only_in_compositions() {
        let shared_comp = var("x").then(atom("ch")).then(var("x"));
        assert!(!shared_comp.is_hcl_minus());
        assert_eq!(shared_comp.check_no_sharing().unwrap_err(), vec![Var::new("x")]);

        let shared_union = var("x").then(atom("a")).or(var("x").then(atom("b")));
        assert!(shared_union.is_hcl_minus());

        let nested = atom("a").then(var("x").then(atom("b")).filter().then(var("x")));
        assert!(!nested.is_hcl_minus());
    }

    #[test]
    fn union_freedom() {
        assert!(atom("a").then(var("x")).is_union_free());
        assert!(!atom("a").or(atom("b")).is_union_free());
        assert!(!atom("a").then(atom("b").or(atom("c"))).filter().is_union_free());
    }

    #[test]
    fn display_with_precedence() {
        let c = atom("a").or(atom("b")).then(atom("c"));
        assert_eq!(c.to_string(), "(a ∪ b)/c");
        let d = atom("a").then(var("x")).or(atom("b").filter());
        assert_eq!(d.to_string(), "a/$x ∪ [b]");
    }

    #[test]
    fn map_atoms_preserves_structure() {
        let c = atom("a").then(var("x")).or(atom("b"));
        let mapped = c.map_atoms(&mut |s| s.len());
        assert_eq!(mapped.size(), c.size());
        assert_eq!(mapped.atoms(), vec![&1usize, &1usize]);
        assert_eq!(mapped.vars(), c.vars());
    }
}
