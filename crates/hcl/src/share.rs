//! Sharing expressions and equation systems (Lemma 3 of the paper).
//!
//! The answering algorithm of Fig. 8 requires that no union appears on the
//! left of a composition.  Naively rewriting `(C1 ∪ C2)/C ⇒ C1/C ∪ C2/C`
//! duplicates `C` and can blow up exponentially; the paper avoids this with
//! *sharing expressions* `D` that may refer to *parameters* `p` bound by an
//! acyclic *equation system* `∆`:
//!
//! ```text
//! E ::= x | [D] | b
//! D ::= p | D ∪ D' | E/D | self
//! ```
//!
//! Lemma 3: every composition formula `C` can be transformed in linear time
//! into a pair `(D, ∆)` with `C ≡ D_∆` and `|D| + |∆| = O(|C|)`.
//!
//! Implementation: sharing expressions are stored in an arena
//! ([`EquationSystem`]) where every node has a dense [`ShareId`]; parameters
//! are simply ids of shared sub-expressions.  Children always have smaller
//! ids than their parents, so downstream passes (the MC table, the `vals`
//! algorithm) can process nodes bottom-up by a single forward sweep and
//! memoise per id — this realises the "at most once for all subformulas of
//! `D` and `∆`" accounting of Prop. 10/11.

use crate::lang::Hcl;
use crate::oracle::AtomId;
use std::collections::BTreeSet;
use xpath_ast::Var;

/// Identifier of a sharing-expression node inside an [`EquationSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShareId(pub u32);

impl ShareId {
    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node of a sharing expression.
///
/// The head alternatives `E` of the paper's grammar are fused into the
/// composition nodes (`b/D`, `x/D`, `[D']/D''`), matching the case analysis
/// of the MC table and of Fig. 8 line by line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShareNode {
    /// `self` — the identity, end of a composition chain.
    SelfEnd,
    /// A parameter `p` bound (by the equation system) to the node `ShareId`.
    Param(ShareId),
    /// `D ∪ D'`.
    Union(ShareId, ShareId),
    /// `b / D` — an atom followed by the rest of the chain.
    StepAtom(AtomId, ShareId),
    /// `x / D` — a variable test followed by the rest of the chain.
    StepVar(Var, ShareId),
    /// `[D'] / D''` — a filter followed by the rest of the chain.
    StepFilter(ShareId, ShareId),
}

/// An arena of sharing-expression nodes together with the distinguished root
/// (the `D` of the pair `(D, ∆)`).
#[derive(Debug, Clone)]
pub struct EquationSystem {
    nodes: Vec<ShareNode>,
    /// Variables of the sub-expression rooted at each node
    /// (`Var(D_∆)` restricted to the node), used by the union case of
    /// Fig. 8.
    vars: Vec<BTreeSet<Var>>,
    root: ShareId,
}

impl EquationSystem {
    /// Normalise an HCL expression (with interned atoms) into a sharing
    /// expression — Lemma 3.
    pub fn from_hcl(hcl: &Hcl<AtomId>) -> EquationSystem {
        let mut builder = Builder { nodes: Vec::new(), vars: Vec::new() };
        let end = builder.push(ShareNode::SelfEnd);
        let root = builder.normalise(hcl, end);
        EquationSystem {
            nodes: builder.nodes,
            vars: builder.vars,
            root,
        }
    }

    /// The root node (the `D` of the pair).
    pub fn root(&self) -> ShareId {
        self.root
    }

    /// Total number of sharing nodes, `|D| + |∆|` in the paper's accounting.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the system contains no nodes (never the case after
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    pub fn node(&self, id: ShareId) -> &ShareNode {
        &self.nodes[id.index()]
    }

    /// Iterate over all `(id, node)` pairs in bottom-up (children-first)
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (ShareId, &ShareNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (ShareId(i as u32), n))
    }

    /// The variables occurring in the sub-expression rooted at `id`.
    pub fn vars(&self, id: ShareId) -> &BTreeSet<Var> {
        &self.vars[id.index()]
    }

    /// Check the structural invariant that every child id is smaller than
    /// its parent id (acyclicity of the equation system).
    pub fn check_acyclic(&self) -> bool {
        self.iter().all(|(id, node)| match node {
            ShareNode::SelfEnd => true,
            ShareNode::Param(c) => c.0 < id.0,
            ShareNode::Union(a, b) | ShareNode::StepFilter(a, b) => a.0 < id.0 && b.0 < id.0,
            ShareNode::StepAtom(_, c) | ShareNode::StepVar(_, c) => c.0 < id.0,
        })
    }
}

struct Builder {
    nodes: Vec<ShareNode>,
    vars: Vec<BTreeSet<Var>>,
}

impl Builder {
    fn push(&mut self, node: ShareNode) -> ShareId {
        let vars = match &node {
            ShareNode::SelfEnd => BTreeSet::new(),
            ShareNode::Param(c) => self.vars[c.index()].clone(),
            ShareNode::Union(a, b) | ShareNode::StepFilter(a, b) => {
                let mut v = self.vars[a.index()].clone();
                v.extend(self.vars[b.index()].iter().cloned());
                v
            }
            ShareNode::StepAtom(_, c) => self.vars[c.index()].clone(),
            ShareNode::StepVar(x, c) => {
                let mut v = self.vars[c.index()].clone();
                v.insert(x.clone());
                v
            }
        };
        let id = ShareId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.vars.push(vars);
        id
    }

    /// Is duplicating a reference to `tail` free of size blow-up?
    fn is_cheap(&self, tail: ShareId) -> bool {
        matches!(
            self.nodes[tail.index()],
            ShareNode::SelfEnd | ShareNode::Param(_)
        )
    }

    /// Wrap `tail` into a parameter unless it is already cheap to reference.
    fn share(&mut self, tail: ShareId) -> ShareId {
        if self.is_cheap(tail) {
            tail
        } else {
            self.push(ShareNode::Param(tail))
        }
    }

    /// Build a sharing expression denoting `hcl / tail`.
    fn normalise(&mut self, hcl: &Hcl<AtomId>, tail: ShareId) -> ShareId {
        match hcl {
            Hcl::Atom(b) => self.push(ShareNode::StepAtom(*b, tail)),
            Hcl::Var(x) => self.push(ShareNode::StepVar(x.clone(), tail)),
            Hcl::Filter(inner) => {
                let end = self.push(ShareNode::SelfEnd);
                let body = self.normalise(inner, end);
                self.push(ShareNode::StepFilter(body, tail))
            }
            Hcl::Seq(a, b) => {
                let rest = self.normalise(b, tail);
                self.normalise(a, rest)
            }
            Hcl::Union(a, b) => {
                // The tail would be referenced by both branches: share it so
                // the construction stays linear (the rewrite rule of
                // Lemma 3, `(C1 ∪ C2)/C ⇒ C1/p ∪ C2/p with ∆(p) = C`).
                let shared = self.share(tail);
                let left = self.normalise(a, shared);
                let right = self.normalise(b, shared);
                self.push(ShareNode::Union(left, right))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(i: u32) -> Hcl<AtomId> {
        Hcl::Atom(AtomId(i))
    }

    fn var(s: &str) -> Hcl<AtomId> {
        Hcl::Var(Var::new(s))
    }

    #[test]
    fn simple_chain() {
        // a/x/b  becomes  StepAtom(a, StepVar(x, StepAtom(b, self)))
        let c = atom(0).then(var("x")).then(atom(1));
        let eq = EquationSystem::from_hcl(&c);
        assert!(eq.check_acyclic());
        assert!(!eq.is_empty());
        match eq.node(eq.root()) {
            ShareNode::StepAtom(AtomId(0), rest) => match eq.node(*rest) {
                ShareNode::StepVar(x, rest2) => {
                    assert_eq!(x.name(), "x");
                    assert!(matches!(eq.node(*rest2), ShareNode::StepAtom(AtomId(1), _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            eq.vars(eq.root()).iter().map(|v| v.name().to_string()).collect::<Vec<_>>(),
            vec!["x"]
        );
    }

    #[test]
    fn unions_on_the_left_of_compositions_are_shared() {
        // (a ∪ b)/c — the tail `c/self` must be bound to a parameter that
        // both branches reference.
        let c = atom(0).or(atom(1)).then(atom(2));
        let eq = EquationSystem::from_hcl(&c);
        assert!(eq.check_acyclic());
        let params = eq
            .iter()
            .filter(|(_, n)| matches!(n, ShareNode::Param(_)))
            .count();
        assert_eq!(params, 1);
        // Both union branches end in the same parameter id.
        let mut param_targets = Vec::new();
        for (_, n) in eq.iter() {
            if let ShareNode::StepAtom(_, rest) = n {
                if matches!(eq.node(*rest), ShareNode::Param(_)) {
                    param_targets.push(*rest);
                }
            }
        }
        assert_eq!(param_targets.len(), 2);
        assert_eq!(param_targets[0], param_targets[1]);
    }

    #[test]
    fn nested_unions_stay_linear() {
        // ((a ∪ b) ∪ (c ∪ d)) / ((e ∪ f) / g) — repeated nesting of unions on
        // the left must keep the arena linear in the source size.
        fn unions(depth: u32, next: &mut u32) -> Hcl<AtomId> {
            if depth == 0 {
                let a = Hcl::Atom(AtomId(*next));
                *next += 1;
                a
            } else {
                unions(depth - 1, next).or(unions(depth - 1, next))
            }
        }
        let mut next = 0;
        let mut expr = unions(4, &mut next); // 16 atoms in a union tree
        for _ in 0..6 {
            expr = unions(2, &mut next).then(expr);
        }
        let size = expr.size();
        let eq = EquationSystem::from_hcl(&expr);
        assert!(eq.check_acyclic());
        assert!(
            eq.len() <= 3 * size,
            "sharing normalisation must stay linear: {} vs source {}",
            eq.len(),
            size
        );
    }

    #[test]
    fn naive_distribution_would_be_exponential_but_sharing_is_not() {
        // (a0 ∪ b0)/(a1 ∪ b1)/…/(ak ∪ bk): distributing unions to the top
        // yields 2^k leaves, the sharing normalisation stays linear.
        let k = 16;
        let mut expr = atom(0).or(atom(1));
        for i in 1..k {
            expr = expr.then(atom(2 * i).or(atom(2 * i + 1)));
        }
        let eq = EquationSystem::from_hcl(&expr);
        assert!(eq.check_acyclic());
        assert!(eq.len() <= 4 * expr.size());
    }

    #[test]
    fn filters_get_their_own_self_terminated_body() {
        let c = Hcl::Filter(Box::new(atom(0).then(var("y")))).then(atom(1));
        let eq = EquationSystem::from_hcl(&c);
        assert!(eq.check_acyclic());
        match eq.node(eq.root()) {
            ShareNode::StepFilter(body, rest) => {
                assert!(matches!(eq.node(*body), ShareNode::StepAtom(AtomId(0), _)));
                assert!(matches!(eq.node(*rest), ShareNode::StepAtom(AtomId(1), _)));
                assert_eq!(eq.vars(*body).len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn variable_sets_propagate_through_unions_and_params() {
        let c = var("x").or(var("y")).then(atom(0));
        let eq = EquationSystem::from_hcl(&c);
        let root_vars: Vec<String> = eq
            .vars(eq.root())
            .iter()
            .map(|v| v.name().to_string())
            .collect();
        assert_eq!(root_vars, vec!["x", "y"]);
    }
}
