//! The n-ary query answering algorithm for HCL⁻(L) — Fig. 8 and Prop. 11 of
//! the paper.
//!
//! Given a normalised sharing expression `(D, ∆)` (Lemma 3), a compiled
//! binary-query oracle (Prop. 10) and the output variable sequence `x`, the
//! algorithm computes
//!
//! ```text
//! q_{D_∆, x}(t) = { (α(x₁), …, α(xₙ)) | ⟦D_∆⟧^{t,α} ≠ ∅ }
//! ```
//!
//! in time `O((|D|+|∆|) · |t|² · n · |A|)` where `|A|` is the size of the
//! answer set, using
//!
//! * the `MC` table to prune unsatisfiable branches in O(1),
//! * memoisation of the intermediate valuation sets `vals(D₀, u)`, and
//! * duplicate elimination after every union and projection.
//!
//! The algorithm is exposed in two shapes: the materialising entry points
//! (`answer_*`, returning a sorted `BTreeSet` of tuples) and the *streaming*
//! [`AnswerStream`] iterator, which explores start nodes lazily and yields
//! each answer tuple as soon as it is derived — a consumer that stops after
//! `k` tuples pays only for the prefix of start nodes explored so far, not
//! for the full `|A|`.

use crate::lang::Hcl;
use crate::mc::McTable;
use crate::oracle::{intern_atoms, CompiledAtoms, PplBinAtoms};
use crate::share::{EquationSystem, ShareId, ShareNode};
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use xpath_ast::{BinExpr, Var};
use xpath_pplbin::{CapacityError, MatrixStore, SharedMatrixStore, SuccessorSource};
use xpath_tree::{NodeId, Tree};

/// An answer tuple: one node per output variable, in the order of the output
/// variable sequence.
pub type Tuple = Vec<NodeId>;

/// Errors of the HCL answering pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HclError {
    /// The expression violates NVS(/) — it is in HCL(L) but not HCL⁻(L), so
    /// the polynomial algorithm does not apply.
    VariableSharing(Vec<Var>),
    /// Compiling an atom would materialise a dense matrix over the capacity
    /// budget (e.g. an eager complement at |t| = 1M, ~125 GB).
    Capacity(CapacityError),
}

impl fmt::Display for HclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HclError::VariableSharing(vars) => {
                let names: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
                write!(
                    f,
                    "variable sharing in composition (NVS(/) violated) for {}",
                    names.join(", ")
                )
            }
            HclError::Capacity(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for HclError {}

impl From<CapacityError> for HclError {
    fn from(err: CapacityError) -> HclError {
        HclError::Capacity(err)
    }
}

/// A partial valuation over the output variables: `None` means "not yet
/// constrained".
type PartialVal = Vec<Option<NodeId>>;

/// Answer an `HCL⁻(PPLbin)` query on a tree.
///
/// This is the instantiation used by Theorem 1: atoms are PPLbin expressions
/// compiled with the Boolean-matrix engine (Theorem 2), and the combined
/// complexity is `O(|P|·|t|³ + n·|P|·|t|²·|A|)`.
pub fn answer_hcl_pplbin(
    tree: &Tree,
    hcl: &Hcl<BinExpr>,
    output: &[Var],
) -> Result<BTreeSet<Tuple>, HclError> {
    answer_hcl(tree, hcl, output, |t: &Tree, atoms: &[BinExpr]| {
        Ok(PplBinAtoms::compile(t, atoms))
    })
}

/// Answer an `HCL⁻(PPLbin)` query with atoms compiled through a
/// [`MatrixStore`], so step matrices, hash-consed subterms and successor
/// lists shared with earlier queries over the same tree are reused instead
/// of recompiled.  This is the cached entry point used by
/// `ppl_xpath::Document` for repeated and batched query workloads.
pub fn answer_hcl_pplbin_with_store(
    tree: &Tree,
    hcl: &Hcl<BinExpr>,
    output: &[Var],
    store: &mut MatrixStore,
) -> Result<BTreeSet<Tuple>, HclError> {
    answer_hcl(tree, hcl, output, |t: &Tree, atoms: &[BinExpr]| {
        Ok(PplBinAtoms::try_compile_with_store(t, atoms, store)?)
    })
}

/// Answer an `HCL⁻(PPLbin)` query with atoms compiled through a thread-safe
/// [`SharedMatrixStore`] (`&self` — many threads can answer over the same
/// store concurrently).  This is the entry point behind
/// `ppl_xpath::Session`.
pub fn answer_hcl_pplbin_shared(
    tree: &Tree,
    hcl: &Hcl<BinExpr>,
    output: &[Var],
    store: &SharedMatrixStore,
) -> Result<BTreeSet<Tuple>, HclError> {
    answer_hcl(tree, hcl, output, |t: &Tree, atoms: &[BinExpr]| {
        Ok(PplBinAtoms::try_compile_with_shared(t, atoms, store)?)
    })
}

/// Answer an `HCL⁻(L)` query with a caller-provided atom compiler.
pub fn answer_hcl<B, F>(
    tree: &Tree,
    hcl: &Hcl<B>,
    output: &[Var],
    compile: F,
) -> Result<BTreeSet<Tuple>, HclError>
where
    B: Clone + Eq + std::hash::Hash,
    F: FnOnce(&Tree, &[B]) -> Result<CompiledAtoms, HclError>,
{
    Ok(stream_hcl(tree, hcl, output, compile)?.collect())
}

/// Build a lazy [`AnswerStream`] for an `HCL⁻(L)` query with a
/// caller-provided atom compiler.  Atom compilation (the `|t|³` part) still
/// happens up front; the Fig. 8 `vals`/`extend` exploration is deferred to
/// iteration.
pub fn stream_hcl<B, F>(
    tree: &Tree,
    hcl: &Hcl<B>,
    output: &[Var],
    compile: F,
) -> Result<AnswerStream, HclError>
where
    B: Clone + Eq + std::hash::Hash,
    F: FnOnce(&Tree, &[B]) -> Result<CompiledAtoms, HclError>,
{
    hcl.check_no_sharing().map_err(HclError::VariableSharing)?;
    let (interned, atoms) = intern_atoms(hcl);
    let compiled = compile(tree, &atoms)?;
    let eq = EquationSystem::from_hcl(&interned);
    Ok(AnswerStream::new(eq, compiled, output.to_vec()))
}

/// Build a lazy [`AnswerStream`] with cold-compiled PPLbin atoms.
pub fn stream_hcl_pplbin(
    tree: &Tree,
    hcl: &Hcl<BinExpr>,
    output: &[Var],
) -> Result<AnswerStream, HclError> {
    stream_hcl(tree, hcl, output, |t: &Tree, atoms: &[BinExpr]| {
        Ok(PplBinAtoms::compile(t, atoms))
    })
}

/// Build a lazy [`AnswerStream`] with atoms compiled through a
/// [`SharedMatrixStore`]; the shard locks are released before this function
/// returns, so iteration is lock-free.
pub fn stream_hcl_pplbin_shared(
    tree: &Tree,
    hcl: &Hcl<BinExpr>,
    output: &[Var],
    store: &SharedMatrixStore,
) -> Result<AnswerStream, HclError> {
    stream_hcl(tree, hcl, output, |t: &Tree, atoms: &[BinExpr]| {
        Ok(PplBinAtoms::try_compile_with_shared(t, atoms, store)?)
    })
}

/// Answer a query from pre-normalised and pre-compiled pieces.
///
/// Callers are responsible for having checked NVS(/) on the source
/// expression; the algorithm is only correct on HCL⁻(L).
pub fn answer_compiled(
    eq: &EquationSystem,
    atoms: &CompiledAtoms,
    output: &[Var],
) -> BTreeSet<Tuple> {
    AnswerStream::new(eq.clone(), atoms.clone(), output.to_vec()).collect()
}

/// A lazy answer iterator over the Fig. 8 algorithm.
///
/// The stream owns the normalised equation system, the compiled atom oracle
/// and the `MC` table, and explores the start nodes `u ∈ nodes(t)` one at a
/// time: the partial valuations of `vals(D, u)` are extended to total
/// valuations and their projections yielded immediately, deduplicated
/// against everything yielded before.  Consuming only a prefix therefore
/// skips the `vals` computation of every unexplored start node — the
/// memoisation table, shared across start nodes, still guarantees that a
/// full drain does no more work than the materialising algorithm.
///
/// Tuples are yielded in *discovery* order (by start node, then derivation
/// order), not in the lexicographic order of `AnswerSet`; collect and sort
/// when a canonical order is needed.
///
/// The stream is self-contained (`Send`): atom lists are shared via `Arc`,
/// so streams for several queries can be drained on worker threads while
/// the session that created them keeps serving.
#[derive(Debug)]
pub struct AnswerStream {
    eq: EquationSystem,
    atoms: CompiledAtoms,
    mc: McTable,
    output: Vec<Var>,
    domain: usize,
    memo: Vec<Vec<Option<Arc<Vec<PartialVal>>>>>,
    /// Next start node to explore.
    next_node: usize,
    /// Partial valuations already extended (across start nodes), so a
    /// partial rediscovered from a later start node is not re-extended.
    seen_partials: HashSet<PartialVal>,
    /// Tuples already yielded.
    seen: HashSet<Tuple>,
    /// Tuples derived from the current start node, pending yield.
    pending: VecDeque<Tuple>,
}

impl AnswerStream {
    /// Build a stream from pre-normalised and pre-compiled pieces (the
    /// NVS(/) check is the caller's responsibility, as for
    /// [`answer_compiled`]).
    pub fn new(eq: EquationSystem, atoms: CompiledAtoms, output: Vec<Var>) -> AnswerStream {
        let mc = McTable::compute(&eq, &atoms);
        let domain = atoms.domain();
        let memo = vec![vec![None; domain]; eq.len()];
        AnswerStream {
            eq,
            atoms,
            mc,
            output,
            domain,
            memo,
            next_node: 0,
            seen_partials: HashSet::new(),
            seen: HashSet::new(),
            pending: VecDeque::new(),
        }
    }

    /// The output variables, in tuple order.
    pub fn variables(&self) -> &[Var] {
        &self.output
    }

    fn output_position(&self, var: &Var) -> Option<usize> {
        self.output.iter().position(|v| v == var)
    }

    fn vals(&mut self, d: ShareId, u: NodeId) -> Arc<Vec<PartialVal>> {
        if let Some(cached) = &self.memo[d.index()][u.index()] {
            return Arc::clone(cached);
        }
        let result = Arc::new(self.compute_vals(d, u));
        self.memo[d.index()][u.index()] = Some(Arc::clone(&result));
        result
    }

    fn compute_vals(&mut self, d: ShareId, u: NodeId) -> Vec<PartialVal> {
        if !self.mc.holds(d, u) {
            return Vec::new();
        }
        let empty_val = || vec![None; self.output.len()];
        match self.eq.node(d).clone() {
            ShareNode::SelfEnd => vec![empty_val()],
            ShareNode::Param(body) => self.vals(body, u).as_ref().clone(),
            ShareNode::StepAtom(atom, rest) => {
                let mut out: Vec<PartialVal> = Vec::new();
                // Clone the source handle (one refcount bump, no node
                // copies): `vals` below re-borrows `self` mutably.  Lazy
                // sources materialise (and memoise) exactly the rows the
                // exploration visits.
                match self.atoms.source(atom).clone() {
                    SuccessorSource::Eager(lists) => {
                        for &v in &lists[u.index()] {
                            let vals = self.vals(rest, v);
                            out.extend(vals.iter().cloned());
                        }
                    }
                    SuccessorSource::Lazy(rows) => {
                        for &v in rows.row(u).iter() {
                            let vals = self.vals(rest, v);
                            out.extend(vals.iter().cloned());
                        }
                    }
                }
                dedup(out)
            }
            ShareNode::StepVar(x, rest) => {
                let vals = self.vals(rest, u);
                match self.output_position(&x) {
                    Some(pos) => vals
                        .iter()
                        .map(|val| {
                            let mut val = val.clone();
                            debug_assert!(
                                val[pos].is_none(),
                                "NVS(/) guarantees {x} is unbound in the tail"
                            );
                            val[pos] = Some(u);
                            val
                        })
                        .collect(),
                    None => vals.as_ref().clone(),
                }
            }
            ShareNode::StepFilter(body, rest) => {
                let left = self.vals(body, u);
                let right = self.vals(rest, u);
                let mut out = Vec::with_capacity(left.len() * right.len());
                for a in left.iter() {
                    for b in right.iter() {
                        if let Some(merged) = merge(a, b) {
                            out.push(merged);
                        }
                    }
                }
                dedup(out)
            }
            ShareNode::Union(left, right) => {
                // Pad both branches to the variables of the whole union
                // (intersected with the output variables), so that a branch
                // that does not mention a variable lets it range freely.
                let positions: Vec<usize> = self
                    .eq
                    .vars(d)
                    .iter()
                    .filter_map(|v| self.output_position(v))
                    .collect();
                let lv = self.vals(left, u);
                let rv = self.vals(right, u);
                let mut out = extend(lv.as_ref(), &positions, self.domain);
                out.extend(extend(rv.as_ref(), &positions, self.domain));
                dedup(out)
            }
        }
    }
}

impl Iterator for AnswerStream {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some(tuple) = self.pending.pop_front() {
                return Some(tuple);
            }
            if self.next_node >= self.domain {
                return None;
            }
            let u = NodeId(self.next_node as u32);
            self.next_node += 1;
            let vals = self.vals(self.eq.root(), u);
            let all_positions: Vec<usize> = (0..self.output.len()).collect();
            for val in vals.iter() {
                if !self.seen_partials.insert(val.clone()) {
                    continue;
                }
                for complete in extend(std::slice::from_ref(val), &all_positions, self.domain) {
                    let tuple: Tuple = complete
                        .into_iter()
                        .map(|slot| slot.expect("extension makes every position total"))
                        .collect();
                    if self.seen.insert(tuple.clone()) {
                        self.pending.push_back(tuple);
                    }
                }
            }
        }
    }
}

/// Disjoint union `α'·α''` of two partial valuations.  Returns `None` if the
/// valuations disagree on a position (cannot happen for NVS(/)-respecting
/// input, but keeps the algorithm safe on arbitrary input).
fn merge(a: &PartialVal, b: &PartialVal) -> Option<PartialVal> {
    let mut out = a.clone();
    for (slot, bv) in out.iter_mut().zip(b) {
        match (&slot, bv) {
            (_, None) => {}
            (None, Some(v)) => *slot = Some(*v),
            (Some(old), Some(v)) => {
                if old != v {
                    return None;
                }
            }
        }
    }
    Some(out)
}

/// `extend_{t,X}`: extend each partial valuation so it is total on the given
/// positions, in all possible ways over the `domain` nodes.
fn extend(vals: &[PartialVal], positions: &[usize], domain: usize) -> Vec<PartialVal> {
    let mut current: Vec<PartialVal> = vals.to_vec();
    for &pos in positions {
        let mut next = Vec::with_capacity(current.len());
        for val in current {
            if val[pos].is_some() {
                next.push(val);
            } else {
                for node in 0..domain {
                    let mut extended = val.clone();
                    extended[pos] = Some(NodeId(node as u32));
                    next.push(extended);
                }
            }
        }
        current = next;
    }
    dedup(current)
}

fn dedup(vals: Vec<PartialVal>) -> Vec<PartialVal> {
    let mut seen: HashSet<PartialVal> = HashSet::with_capacity(vals.len());
    let mut out = Vec::with_capacity(vals.len());
    for v in vals {
        if seen.insert(v.clone()) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_ast::parse_path;

    fn bin(src: &str) -> BinExpr {
        from_variable_free_path(&parse_path(src).unwrap()).unwrap()
    }

    fn v(name: &str) -> Var {
        Var::new(name)
    }

    fn bib() -> Tree {
        Tree::from_terms("bib(book(author,title),book(author,author,title))").unwrap()
    }

    #[test]
    fn author_title_pairs_per_book() {
        let tree = bib();
        // descendant::book / [child::author/x] / child::title / y
        let hcl = Hcl::Atom(bin("descendant::book"))
            .then(Hcl::Filter(Box::new(
                Hcl::Atom(bin("child::author")).then(Hcl::Var(v("x"))),
            )))
            .then(Hcl::Atom(bin("child::title")))
            .then(Hcl::Var(v("y")));
        let ans = answer_hcl_pplbin(&tree, &hcl, &[v("x"), v("y")]).unwrap();
        assert_eq!(ans.len(), 3);
        for tuple in &ans {
            assert_eq!(tree.label_str(tuple[0]), "author");
            assert_eq!(tree.label_str(tuple[1]), "title");
            assert_eq!(tree.parent(tuple[0]), tree.parent(tuple[1]));
        }
    }

    #[test]
    fn single_variable_query() {
        let tree = bib();
        let hcl = Hcl::Atom(bin("descendant::author")).then(Hcl::Var(v("a")));
        let ans = answer_hcl_pplbin(&tree, &hcl, &[v("a")]).unwrap();
        assert_eq!(ans.len(), 3);
        assert!(ans.iter().all(|t| tree.label_str(t[0]) == "author"));
    }

    #[test]
    fn output_variable_not_in_query_ranges_over_all_nodes() {
        let tree = Tree::from_terms("a(b,c)").unwrap();
        let hcl: Hcl<BinExpr> = Hcl::Atom(bin("child::b"));
        let ans = answer_hcl_pplbin(&tree, &hcl, &[v("free")]).unwrap();
        assert_eq!(ans.len(), tree.len());
        // Unsatisfiable query: empty answer despite the free variable.
        let none: Hcl<BinExpr> = Hcl::Atom(bin("child::zzz"));
        assert!(answer_hcl_pplbin(&tree, &none, &[v("free")]).unwrap().is_empty());
    }

    #[test]
    fn union_lets_unmentioned_variables_range_freely() {
        let tree = Tree::from_terms("a(b,c)").unwrap();
        let hcl: Hcl<BinExpr> = Hcl::Var(v("x")).or(Hcl::Var(v("y")));
        let ans = answer_hcl_pplbin(&tree, &hcl, &[v("x"), v("y")]).unwrap();
        // (x ∪ y) is satisfiable under every assignment, so all |t|² tuples.
        assert_eq!(ans.len(), tree.len() * tree.len());
    }

    #[test]
    fn filter_joins_variables_on_the_same_start_node() {
        let tree = bib();
        // book nodes u with an author child x and a title child y — the
        // filter case merges the two partial valuations at u.
        let hcl = Hcl::Atom(bin("descendant::book"))
            .then(Hcl::Filter(Box::new(
                Hcl::Atom(bin("child::author")).then(Hcl::Var(v("x"))),
            )))
            .then(Hcl::Filter(Box::new(
                Hcl::Atom(bin("child::title")).then(Hcl::Var(v("y"))),
            )));
        let ans = answer_hcl_pplbin(&tree, &hcl, &[v("x"), v("y")]).unwrap();
        assert_eq!(ans.len(), 3);
    }

    #[test]
    fn zero_ary_queries_report_satisfiability() {
        let tree = bib();
        let sat: Hcl<BinExpr> = Hcl::Atom(bin("descendant::title"));
        let ans = answer_hcl_pplbin(&tree, &sat, &[]).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&Vec::new()));
        let unsat: Hcl<BinExpr> = Hcl::Atom(bin("descendant::publisher"));
        assert!(answer_hcl_pplbin(&tree, &unsat, &[]).unwrap().is_empty());
    }

    #[test]
    fn variable_sharing_is_rejected() {
        let tree = bib();
        let hcl = Hcl::Var(v("x"))
            .then(Hcl::Atom(bin("child::*")))
            .then(Hcl::Var(v("x")));
        let err = answer_hcl_pplbin(&tree, &hcl, &[v("x")]).unwrap_err();
        assert!(matches!(err, HclError::VariableSharing(_)));
        assert!(err.to_string().contains("$x"));
    }

    #[test]
    fn answers_agree_with_naive_enumeration_on_small_documents() {
        // Differential test against the specification evaluator via the
        // HCL → PPL translation direction exercised in translate.rs; here we
        // hand-build the equivalent PPL query.
        use xpath_naive::answer_nary;
        let tree = Tree::from_terms("r(s(a,b),s(b),a)").unwrap();
        // HCL: descendant::s / [child::a/x] / child::b / y
        let hcl = Hcl::Atom(bin("descendant::s"))
            .then(Hcl::Filter(Box::new(
                Hcl::Atom(bin("child::a")).then(Hcl::Var(v("x"))),
            )))
            .then(Hcl::Atom(bin("child::b")))
            .then(Hcl::Var(v("y")));
        let got = answer_hcl_pplbin(&tree, &hcl, &[v("x"), v("y")]).unwrap();
        // PPL equivalent: descendant::s[child::a[. is $x]]/child::b[. is $y]
        let ppl = parse_path("descendant::s[child::a[. is $x]]/child::b[. is $y]").unwrap();
        let expected = answer_nary(&tree, &ppl, &[v("x"), v("y")]).unwrap();
        let expected_tuples: BTreeSet<Tuple> = expected.into_iter().collect();
        assert_eq!(got, expected_tuples);
    }

    #[test]
    fn memoisation_handles_shared_tails() {
        let tree = bib();
        // (child::book ∪ descendant::book)/child::title/y — the tail is
        // shared via a parameter; answers must still be the two titles.
        let hcl = Hcl::Atom(bin("child::book"))
            .or(Hcl::Atom(bin("descendant::book")))
            .then(Hcl::Atom(bin("child::title")))
            .then(Hcl::Var(v("y")));
        let ans = answer_hcl_pplbin(&tree, &hcl, &[v("y")]).unwrap();
        assert_eq!(ans.len(), 2);
        assert!(ans.iter().all(|t| tree.label_str(t[0]) == "title"));
    }

    #[test]
    fn streaming_yields_exactly_the_materialised_answers() {
        let tree = bib();
        let hcl = Hcl::Atom(bin("descendant::book"))
            .then(Hcl::Filter(Box::new(
                Hcl::Atom(bin("child::author")).then(Hcl::Var(v("x"))),
            )))
            .then(Hcl::Atom(bin("child::title")))
            .then(Hcl::Var(v("y")));
        let output = [v("x"), v("y")];
        let expected = answer_hcl_pplbin(&tree, &hcl, &output).unwrap();
        let stream = stream_hcl_pplbin(&tree, &hcl, &output).unwrap();
        assert_eq!(stream.variables(), &output);
        let streamed: Vec<Tuple> = stream.collect();
        assert_eq!(streamed.len(), expected.len(), "no duplicates in the stream");
        let as_set: BTreeSet<Tuple> = streamed.into_iter().collect();
        assert_eq!(as_set, expected);
        // A truncated stream yields a subset.
        let prefix: BTreeSet<Tuple> =
            stream_hcl_pplbin(&tree, &hcl, &output).unwrap().take(2).collect();
        assert_eq!(prefix.len(), 2);
        assert!(prefix.is_subset(&expected));
    }

    #[test]
    fn streaming_handles_boolean_and_free_variable_queries() {
        let tree = Tree::from_terms("a(b,c)").unwrap();
        let sat: Hcl<BinExpr> = Hcl::Atom(bin("child::b"));
        // 0-ary satisfiable: exactly one empty tuple, once.
        let tuples: Vec<Tuple> = stream_hcl_pplbin(&tree, &sat, &[]).unwrap().collect();
        assert_eq!(tuples, vec![Vec::new()]);
        let unsat: Hcl<BinExpr> = Hcl::Atom(bin("child::zzz"));
        assert_eq!(stream_hcl_pplbin(&tree, &unsat, &[]).unwrap().count(), 0);
        // A free output variable ranges over all nodes, lazily.
        let mut stream = stream_hcl_pplbin(&tree, &sat, &[v("free")]).unwrap();
        assert!(stream.next().is_some());
        assert_eq!(stream.count() + 1, tree.len());
    }

    #[test]
    fn shared_store_answering_matches_cold_and_hits_the_cache() {
        let tree = bib();
        let hcl = Hcl::Atom(bin("descendant::book"))
            .then(Hcl::Filter(Box::new(
                Hcl::Atom(bin("child::author")).then(Hcl::Var(v("x"))),
            )))
            .then(Hcl::Var(v("y")));
        let output = [v("x"), v("y")];
        let cold = answer_hcl_pplbin(&tree, &hcl, &output).unwrap();
        let store = SharedMatrixStore::new(tree.len());
        let warm = answer_hcl_pplbin_shared(&tree, &hcl, &output, &store).unwrap();
        assert_eq!(warm, cold);
        let misses = store.stats().misses;
        let again = answer_hcl_pplbin_shared(&tree, &hcl, &output, &store).unwrap();
        assert_eq!(again, cold);
        assert_eq!(store.stats().misses, misses, "second run must be pure hits");
        // The streaming path reuses the same shared atoms.
        let streamed: BTreeSet<Tuple> = stream_hcl_pplbin_shared(&tree, &hcl, &output, &store)
            .unwrap()
            .collect();
        assert_eq!(streamed, cold);
        assert_eq!(store.stats().misses, misses);
    }

    #[test]
    fn store_backed_answering_matches_cold_answering() {
        let tree = bib();
        let hcl = Hcl::Atom(bin("descendant::book"))
            .then(Hcl::Filter(Box::new(
                Hcl::Atom(bin("child::author")).then(Hcl::Var(v("x"))),
            )))
            .then(Hcl::Atom(bin("child::title")))
            .then(Hcl::Var(v("y")));
        let output = [v("x"), v("y")];
        let cold = answer_hcl_pplbin(&tree, &hcl, &output).unwrap();
        let mut store = MatrixStore::new(tree.len());
        let warm = answer_hcl_pplbin_with_store(&tree, &hcl, &output, &mut store).unwrap();
        assert_eq!(warm, cold);
        // A second pass over the same store compiles nothing new.
        let misses = store.stats().misses;
        let again = answer_hcl_pplbin_with_store(&tree, &hcl, &output, &mut store).unwrap();
        assert_eq!(again, cold);
        assert_eq!(store.stats().misses, misses);
    }
}
