//! # `xpath_hcl` — the hybrid composition language HCL(L) and the
//! polynomial-time n-ary answering algorithm
//!
//! This crate implements Sections 5 and 7 of the paper:
//!
//! * [`lang`] — the language `HCL(L)` of Fig. 5/6: expressions are binary
//!   queries `b ∈ L`, variables `x`, compositions `C/C'`, filters `[C]` and
//!   unions `C ∪ C'`.  The fragment `HCL⁻(L)` forbids variable sharing in
//!   compositions (condition NVS(/)).
//! * [`oracle`] — the binary-query oracle: atoms of `L` are precompiled on a
//!   tree into per-node successor lists, so that the answering algorithm can
//!   treat query answering for `L` as a constant-time oracle, exactly as in
//!   Prop. 10/11.  A [`oracle::PplBinAtoms`] implementation backs atoms by
//!   the Boolean-matrix engine of `xpath_pplbin`; [`oracle::AxisAtoms`] backs
//!   them by raw tree axes.
//! * [`share`] — *sharing expressions* and *equation systems* (Lemma 3): the
//!   linear-time normalisation that removes unions from the left of
//!   compositions without the exponential blow-up of naive distribution.
//! * [`mc`] — the `MC` satisfiability table of Prop. 10.
//! * [`answer`] — the `vals` algorithm of Fig. 8 (Prop. 11), computing the
//!   answer set of an n-ary query in time
//!   `O(Σ_b p(|b|,|t|) + n·|C|·|t|²·|A|)`.
//! * [`translate`] — the linear-time translations between PPL and
//!   `HCL⁻(PPLbin)` (Fig. 4 / Fig. 7, Prop. 5), which together with the
//!   answering algorithm yield Theorem 1.
//!
//! ## Example
//!
//! ```
//! use xpath_ast::{parse_path, Var};
//! use xpath_hcl::translate::ppl_to_hcl;
//! use xpath_hcl::answer::answer_hcl_pplbin;
//! use xpath_tree::Tree;
//!
//! let tree = Tree::from_terms("bib(book(author,title),book(author,author,title))").unwrap();
//! let ppl = parse_path(
//!     "descendant::book[child::author[. is $y] and child::title[. is $z]]",
//! ).unwrap();
//! let hcl = ppl_to_hcl(&ppl).unwrap();
//! let answers = answer_hcl_pplbin(&tree, &hcl, &[Var::new("y"), Var::new("z")]).unwrap();
//! assert_eq!(answers.len(), 3); // one author-title pair per (author, book)
//! ```

#![forbid(unsafe_code)]

pub mod answer;
pub mod lang;
pub mod mc;
pub mod oracle;
pub mod share;
pub mod translate;

pub use answer::{
    answer_hcl, answer_hcl_pplbin, answer_hcl_pplbin_shared, answer_hcl_pplbin_with_store,
    stream_hcl, stream_hcl_pplbin, stream_hcl_pplbin_shared, AnswerStream, HclError,
};
pub use lang::Hcl;
pub use oracle::{AtomId, AxisAtoms, CompiledAtoms, PplBinAtoms};
pub use share::{EquationSystem, ShareId};
pub use translate::{hcl_to_ppl, ppl_to_hcl, TranslateError};
