//! Translations between PPL and HCL⁻(PPLbin) — Proposition 5 of the paper
//! (Fig. 4 and Fig. 7), the bridge that turns the HCL answering algorithm
//! into the PPL query engine of Theorem 1.
//!
//! * [`ppl_to_hcl`] (Fig. 7, the `⟦·⟧⁻¹` direction): a PPL expression is
//!   mapped to an `HCL⁻(PPLbin)` expression in linear time.  Variable-free
//!   subexpressions collapse to single PPLbin atoms via Fig. 4 (this is
//!   where the NV(intersect)/NV(except)/NV(not) conditions are used);
//!   variables `$x` become `nodes/x`; filters, conjunctions and
//!   disjunctions map to HCL filters, compositions and unions (the
//!   NVS(·) conditions guarantee that the image satisfies NVS(/)).
//! * [`hcl_to_ppl`] (the forward direction of Prop. 5): every
//!   `HCL⁻(PPLbin)` expression maps back into PPL, with `x ↦ .[. is $x]`
//!   and `[C] ↦ .[C]`.

use crate::lang::Hcl;
use std::fmt;
use xpath_ast::binexpr::{from_variable_free_path, from_variable_free_test};
use xpath_ast::expr::nodes_path;
use xpath_ast::ppl::{check_ppl, is_variable_free, PplViolation};
use xpath_ast::{BinExpr, NameTest, NodeRef, PathExpr, TestExpr, Var};
use xpath_tree::Axis;

/// Errors of the PPL → HCL translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The input expression is not in the PPL fragment (Definition 1); the
    /// violations are reported verbatim.
    NotPpl(Vec<PplViolation>),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::NotPpl(violations) => {
                write!(f, "expression is not in PPL:")?;
                for v in violations {
                    write!(f, "\n  - {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translate a PPL expression into `HCL⁻(PPLbin)` (Fig. 7).
pub fn ppl_to_hcl(p: &PathExpr) -> Result<Hcl<BinExpr>, TranslateError> {
    check_ppl(p).map_err(TranslateError::NotPpl)?;
    Ok(translate_path(p))
}

fn variable_free_atom(p: &PathExpr) -> Hcl<BinExpr> {
    Hcl::Atom(
        from_variable_free_path(p)
            .expect("caller checked that the subexpression is variable-free"),
    )
}

fn translate_path(p: &PathExpr) -> Hcl<BinExpr> {
    if is_variable_free(p) {
        // Whole variable-free subexpressions become one PPLbin atom (Fig. 4);
        // this covers steps, `.`, and — thanks to NV(intersect)/NV(except) —
        // every intersection and exception of a PPL expression.
        return variable_free_atom(p);
    }
    match p {
        PathExpr::NodeRef(NodeRef::Var(x)) => {
            // $x  ↦  nodes/x
            Hcl::Atom(BinExpr::nodes()).then(Hcl::Var(x.clone()))
        }
        PathExpr::Seq(a, b) => translate_path(a).then(translate_path(b)),
        PathExpr::Union(a, b) => translate_path(a).or(translate_path(b)),
        PathExpr::Filter(base, test) => translate_path(base).then(translate_test(test)),
        // The remaining constructors either cannot contain variables in PPL
        // (`intersect`, `except` — caught by the variable-free case above)
        // or are excluded from PPL altogether (`for`), and steps/`.`/
        // variable-free node refs were handled above.
        PathExpr::Step(_, _)
        | PathExpr::NodeRef(NodeRef::Dot)
        | PathExpr::Intersect(_, _)
        | PathExpr::Except(_, _)
        | PathExpr::For(_, _, _) => {
            unreachable!("PPL check rules out variable-bearing {p}")
        }
    }
}

/// Translate a PPL test expression into an HCL expression denoting a partial
/// identity — the `⟦./[T]⟧⁻¹` of Fig. 7.
fn translate_test(t: &TestExpr) -> Hcl<BinExpr> {
    let variable_free = t.free_vars().is_empty() && !t.has_for();
    if variable_free {
        return Hcl::Atom(
            from_variable_free_test(t, true)
                .expect("variable-free test translates to PPLbin"),
        );
    }
    match t {
        TestExpr::Path(p) => Hcl::Filter(Box::new(translate_path(p))),
        TestExpr::Comp(NodeRef::Dot, NodeRef::Var(x))
        | TestExpr::Comp(NodeRef::Var(x), NodeRef::Dot) => Hcl::Var(x.clone()),
        TestExpr::Comp(NodeRef::Var(x), NodeRef::Var(y)) => {
            // Fig. 2: ⟦$x is $y⟧_test = {α(x) | α(x) = α(y)} — the test holds
            // only at the node α(x), and only when the two variables denote
            // the same node.  The composition x/y is exactly that partial
            // identity (and satisfies NVS(/) since x ≠ y syntactically).
            if x == y {
                Hcl::Var(x.clone())
            } else {
                Hcl::Var(x.clone()).then(Hcl::Var(y.clone()))
            }
        }
        TestExpr::And(a, b) => translate_test(a).then(translate_test(b)),
        TestExpr::Or(a, b) => translate_test(a).or(translate_test(b)),
        // `not` with variables violates NV(not) and `. is .` is variable
        // free; both were excluded before reaching this match.
        TestExpr::Comp(NodeRef::Dot, NodeRef::Dot) | TestExpr::Not(_) => {
            unreachable!("PPL check rules out variable-bearing {t}")
        }
    }
}

/// Translate an `HCL⁻(PPLbin)` expression back into PPL (the forward
/// direction of Prop. 5).
pub fn hcl_to_ppl(c: &Hcl<BinExpr>) -> PathExpr {
    match c {
        Hcl::Atom(b) => binexpr_to_path(b),
        Hcl::Var(x) => var_as_path(x),
        Hcl::Seq(a, b) => PathExpr::Seq(Box::new(hcl_to_ppl(a)), Box::new(hcl_to_ppl(b))),
        Hcl::Union(a, b) => PathExpr::Union(Box::new(hcl_to_ppl(a)), Box::new(hcl_to_ppl(b))),
        Hcl::Filter(inner) => PathExpr::Filter(
            Box::new(PathExpr::NodeRef(NodeRef::Dot)),
            Box::new(TestExpr::Path(hcl_to_ppl(inner))),
        ),
    }
}

/// `x ↦ .[. is $x]` — the equality-test reading of HCL variables.
fn var_as_path(x: &Var) -> PathExpr {
    PathExpr::Filter(
        Box::new(PathExpr::NodeRef(NodeRef::Dot)),
        Box::new(TestExpr::Comp(NodeRef::Dot, NodeRef::Var(x.clone()))),
    )
}

/// Convert a PPLbin expression back into Core XPath 2.0 syntax (a
/// variable-free PPL path expression).
pub fn binexpr_to_path(b: &BinExpr) -> PathExpr {
    match b {
        BinExpr::Step(axis, test) => PathExpr::Step(*axis, test.clone()),
        BinExpr::Seq(a, c) => {
            PathExpr::Seq(Box::new(binexpr_to_path(a)), Box::new(binexpr_to_path(c)))
        }
        BinExpr::Union(a, c) => {
            PathExpr::Union(Box::new(binexpr_to_path(a)), Box::new(binexpr_to_path(c)))
        }
        BinExpr::Except(inner) => {
            // Unary complement: `nodes except P`.
            PathExpr::Except(Box::new(nodes_path()), Box::new(binexpr_to_path(inner)))
        }
        BinExpr::Test(inner) => PathExpr::Filter(
            Box::new(PathExpr::NodeRef(NodeRef::Dot)),
            Box::new(TestExpr::Path(binexpr_to_path(inner))),
        ),
    }
}

/// Convenience: the paper's `nodes` binary query as a step-only PPLbin atom,
/// re-exported for callers assembling HCL expressions manually.
pub fn nodes_atom() -> Hcl<BinExpr> {
    Hcl::Atom(BinExpr::nodes())
}

/// Convenience: a single-axis atom.
pub fn axis_atom(axis: Axis, test: NameTest) -> Hcl<BinExpr> {
    Hcl::Atom(BinExpr::Step(axis, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::answer_hcl_pplbin;
    use std::collections::BTreeSet;
    use xpath_ast::parse_path;
    use xpath_naive::answer_nary;
    use xpath_tree::{NodeId, Tree};

    fn vars(names: &[&str]) -> Vec<Var> {
        names.iter().map(|n| Var::new(n)).collect()
    }

    /// Differential check: the PPL pipeline (Fig. 7 translation + Fig. 8
    /// answering) must agree with the naive specification semantics.
    fn check_pipeline(tree: &Tree, src: &str, output: &[&str]) {
        let ppl = parse_path(src).unwrap();
        let out_vars = vars(output);
        let hcl = ppl_to_hcl(&ppl).unwrap();
        assert!(hcl.is_hcl_minus(), "Fig. 7 must produce HCL⁻: {src}");
        let got = answer_hcl_pplbin(tree, &hcl, &out_vars).unwrap();
        let expected: BTreeSet<Vec<NodeId>> =
            answer_nary(tree, &ppl, &out_vars).unwrap().into_iter().collect();
        assert_eq!(got, expected, "pipeline disagrees with the specification on {src}");

        // Round trip: HCL → PPL must also agree.
        let back = hcl_to_ppl(&hcl);
        let back_ans: BTreeSet<Vec<NodeId>> =
            answer_nary(tree, &back, &out_vars).unwrap().into_iter().collect();
        assert_eq!(back_ans, expected, "hcl_to_ppl changed the answers of {src}");
    }

    fn bib() -> Tree {
        Tree::from_terms("bib(book(author,title),book(author,author,title),paper(title))")
            .unwrap()
    }

    #[test]
    fn intro_example_pipeline() {
        let t = bib();
        check_pipeline(
            &t,
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
            &["y", "z"],
        );
    }

    #[test]
    fn unary_and_binary_queries() {
        let t = bib();
        check_pipeline(&t, "descendant::author[. is $a]", &["a"]);
        check_pipeline(&t, "descendant::book[. is $b]/child::title[. is $t]", &["b", "t"]);
        check_pipeline(&t, "child::*[. is $x]/child::*[. is $y]", &["x", "y"]);
    }

    #[test]
    fn variable_free_operators_collapse_to_atoms() {
        let t = bib();
        check_pipeline(
            &t,
            "(descendant::* except descendant::title)[. is $n]",
            &["n"],
        );
        check_pipeline(
            &t,
            "(child::book intersect descendant::book)[. is $b]",
            &["b"],
        );
        check_pipeline(&t, "descendant::*[not(child::*)][. is $leaf]", &["leaf"]);
    }

    #[test]
    fn unions_with_shared_variables_are_allowed() {
        let t = bib();
        check_pipeline(
            &t,
            "descendant::author[. is $x] union descendant::title[. is $x]",
            &["x"],
        );
        check_pipeline(
            &t,
            "descendant::book[child::author[. is $x] or child::title[. is $x]]",
            &["x"],
        );
    }

    #[test]
    fn goto_variables_and_comparisons() {
        let t = Tree::from_terms("r(a(c),b(c))").unwrap();
        check_pipeline(&t, "$x/child::c[. is $y]", &["x", "y"]);
        check_pipeline(&t, "descendant::c[$x is $y]", &["x", "y"]);
        check_pipeline(&t, "descendant::c[$x is $x]", &["x"]);
        check_pipeline(&t, "$x", &["x"]);
    }

    #[test]
    fn non_ppl_inputs_are_rejected_with_diagnostics() {
        for src in [
            "for $x in child::a return child::b",
            "child::a[. is $x]/child::b[. is $x]",
            "$x intersect child::a",
            "child::a[not(child::b[. is $x])]",
        ] {
            let err = ppl_to_hcl(&parse_path(src).unwrap()).unwrap_err();
            let TranslateError::NotPpl(violations) = &err;
            assert!(!violations.is_empty(), "{src}");
            assert!(err.to_string().contains("not in PPL"));
        }
    }

    #[test]
    fn translation_is_linear_in_size() {
        // Chain of filters with fresh variables: |HCL| must stay within a
        // constant factor of |PPL|.
        let mut src = String::from("descendant::book");
        for i in 0..30 {
            src.push_str(&format!("[child::author[. is $v{i}]]"));
        }
        let ppl = parse_path(&src).unwrap();
        let hcl = ppl_to_hcl(&ppl).unwrap();
        assert!(hcl.size() <= 3 * ppl.size());
    }

    #[test]
    fn binexpr_round_trip_preserves_binary_semantics() {
        use xpath_ast::binexpr::from_variable_free_path;
        use xpath_naive::answer_binary;
        use xpath_pplbin::answer_binary as matrix_binary;
        let t = bib();
        for src in [
            "child::book/child::author",
            "descendant::* except child::*",
            "child::*[not(child::author)]",
            "(child::book union child::paper)/child::title",
        ] {
            let bin = from_variable_free_path(&parse_path(src).unwrap()).unwrap();
            let back = binexpr_to_path(&bin);
            let via_matrix = matrix_binary(&t, &bin).pairs();
            let via_naive = answer_binary(&t, &back).unwrap();
            assert_eq!(via_matrix, via_naive, "{src}");
        }
    }

    #[test]
    fn helper_constructors() {
        assert_eq!(nodes_atom().size(), 1);
        let a = axis_atom(Axis::Child, NameTest::name("book"));
        assert!(matches!(a, Hcl::Atom(BinExpr::Step(Axis::Child, _))));
    }
}
