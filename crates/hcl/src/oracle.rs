//! Binary-query oracles for HCL(L).
//!
//! The answering algorithm of Fig. 8 assumes that "all binary queries
//! occurring in `D_∆` are precompiled in a data structure that returns in
//! time `|S_{u,b}|` the set `S_{u,b} = {u' | (u, u') ∈ q_b(t)}`"
//! (Prop. 10).  [`CompiledAtoms`] is exactly that data structure: one sorted
//! successor list per (atom, node) pair.
//!
//! Two compilers are provided:
//!
//! * [`PplBinAtoms`] — atoms are PPLbin expressions, answered by the
//!   Boolean-matrix engine of `xpath_pplbin` in `O(|b|·|t|³)` each
//!   (Theorem 2), which instantiates the `p(|b|, |t|)` of Prop. 10;
//! * [`AxisAtoms`] — atoms are raw `(Axis, NameTest)` steps, answered
//!   directly from the tree in `O(|t|²)`; used by the ACQ experiments.

use crate::lang::Hcl;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;
use xpath_ast::{BinExpr, NameTest};
use xpath_pplbin::{
    eval_relation, CapacityError, KernelMode, KernelStats, MatrixStore, SharedMatrixStore,
    SuccessorSource,
};
use xpath_tree::{Axis, NodeId, Tree};

/// Identifier of an interned atom inside a [`CompiledAtoms`] table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

impl AtomId {
    /// Dense index of the atom.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Precompiled successor rows for a set of binary queries over one tree.
///
/// Per-atom rows are held behind `Arc`d [`SuccessorSource`] handles so a
/// cache (the `MatrixStore` of a `Document`, or the `SharedMatrixStore` of a
/// `Session`) can hand out the same compiled rows to many queries — on any
/// thread — without copying them.  Under the lazy kernel mode a source
/// computes and memoises rows the first time the Fig. 8 answering phase
/// pulls them, so "precompiled" means the *symbolic* form is ready; the
/// `|S_{u,b}|`-time guarantee of Prop. 10 then holds per pulled row.
#[derive(Debug, Clone)]
pub struct CompiledAtoms {
    /// `succ[atom]` — the successor rows of one atom.
    succ: Vec<SuccessorSource>,
    domain: usize,
}

impl CompiledAtoms {
    /// Build a table directly from per-atom pair lists.
    pub fn from_pairs(domain: usize, atoms: Vec<Vec<(NodeId, NodeId)>>) -> CompiledAtoms {
        let mut succ = Vec::with_capacity(atoms.len());
        for pairs in atoms {
            let mut lists = vec![Vec::new(); domain];
            for (u, v) in pairs {
                lists[u.index()].push(v);
            }
            for l in lists.iter_mut() {
                l.sort_unstable();
                l.dedup();
            }
            succ.push(SuccessorSource::Eager(Arc::new(lists)));
        }
        CompiledAtoms { succ, domain }
    }

    /// Build a table from already-shared per-atom successor lists (each
    /// `lists[atom][node]` sorted in document order), e.g. straight out of a
    /// [`MatrixStore`] or [`SharedMatrixStore`].
    pub fn from_successor_lists(
        domain: usize,
        atoms: Vec<Arc<Vec<Vec<NodeId>>>>,
    ) -> CompiledAtoms {
        debug_assert!(atoms.iter().all(|per_node| per_node.len() == domain));
        CompiledAtoms {
            succ: atoms.into_iter().map(SuccessorSource::Eager).collect(),
            domain,
        }
    }

    /// Build a table from per-atom row sources (eager or lazy).
    pub fn from_sources(domain: usize, atoms: Vec<SuccessorSource>) -> CompiledAtoms {
        debug_assert!(atoms.iter().all(|src| src.len() == domain));
        CompiledAtoms { succ: atoms, domain }
    }

    /// Number of nodes of the underlying tree.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Number of compiled atoms.
    pub fn atom_count(&self) -> usize {
        self.succ.len()
    }

    /// The row source of one atom.  Cloning the handle (an `Arc` bump) lets
    /// a caller iterate rows while holding `&mut` state of its own (the
    /// Fig. 8 stream does this) without copying any nodes.
    pub fn source(&self, atom: AtomId) -> &SuccessorSource {
        &self.succ[atom.index()]
    }

    /// The successors `S_{u,b}` of `u` under atom `b`, in document order.
    /// Lazy sources materialise (and memoise) the row on first pull.
    pub fn successors(&self, atom: AtomId, u: NodeId) -> Vec<NodeId> {
        self.succ[atom.index()].row_vec(u)
    }

    /// Does row `u` of `atom` contain a node satisfying `pred`?  Early-exits
    /// on the first hit; lazy sources answer without materialising the row,
    /// in time proportional to what the symbolic form touches — this is what
    /// keeps the `MC` sweep of Prop. 10 subquadratic over deferred
    /// complements.
    pub fn row_any(&self, atom: AtomId, u: NodeId, pred: impl FnMut(NodeId) -> bool) -> bool {
        self.succ[atom.index()].row_any(u, pred)
    }

    /// Does `u` have any successor under `atom`?
    pub fn has_successor(&self, atom: AtomId, u: NodeId) -> bool {
        self.succ[atom.index()].row_nonempty(u)
    }

    /// Total number of stored pairs (the size of the induced relational
    /// database `db = {q_b(t) | b ∈ L}` of Section 6).  Materialises every
    /// row of lazy sources — a diagnostic, not a hot path.
    pub fn pair_count(&self) -> usize {
        self.succ
            .iter()
            .map(|src| {
                (0..self.domain)
                    .map(|u| src.with_row(NodeId(u as u32), <[NodeId]>::len))
                    .sum::<usize>()
            })
            .sum()
    }
}

/// Intern the atoms of an HCL expression: equal atoms share an [`AtomId`].
///
/// Returns the rewritten expression together with the distinct atoms in
/// first-occurrence order.
pub fn intern_atoms<B: Clone + Eq + Hash>(hcl: &Hcl<B>) -> (Hcl<AtomId>, Vec<B>) {
    let mut table: HashMap<B, AtomId> = HashMap::new();
    let mut atoms: Vec<B> = Vec::new();
    let rewritten = hcl.map_atoms(&mut |b: &B| {
        *table.entry(b.clone()).or_insert_with(|| {
            let id = AtomId(atoms.len() as u32);
            atoms.push(b.clone());
            id
        })
    });
    (rewritten, atoms)
}

/// Atom compiler backed by the PPLbin Boolean-matrix engine.
pub struct PplBinAtoms;

impl PplBinAtoms {
    /// Compile each PPLbin atom on the tree (Theorem 2 per atom), through
    /// the adaptive relation kernels: the successor lists of Prop. 10 are
    /// read straight off the compiled [`Relation`], so interval- and
    /// sparse-shaped atoms never materialise their dense bits.
    ///
    /// [`Relation`]: xpath_pplbin::Relation
    pub fn compile(tree: &Tree, atoms: &[BinExpr]) -> CompiledAtoms {
        let succ: Vec<Arc<Vec<Vec<NodeId>>>> = atoms
            .iter()
            .map(|b| {
                let relation =
                    eval_relation(tree, b, KernelMode::default(), &mut KernelStats::default());
                Arc::new(
                    tree.nodes()
                        .map(|u| relation.successor_list(u))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        CompiledAtoms::from_successor_lists(tree.len(), succ)
    }

    /// Compile each PPLbin atom through a [`MatrixStore`]: subterms already
    /// compiled by earlier queries over the same tree are reused, and the
    /// successor rows themselves are shared with the store via `Arc`.
    /// Panics past the dense capacity budget; see
    /// [`PplBinAtoms::try_compile_with_store`].
    pub fn compile_with_store(
        tree: &Tree,
        atoms: &[BinExpr],
        store: &mut MatrixStore,
    ) -> CompiledAtoms {
        Self::try_compile_with_store(tree, atoms, store)
            .expect("dense capacity exceeded while compiling atoms")
    }

    /// Fallible form of [`PplBinAtoms::compile_with_store`].  Under the lazy
    /// kernel mode the returned table holds on-demand row caches; under the
    /// eager modes it holds materialised lists, and compilation fails
    /// (instead of aborting) when a dense intermediate would exceed the
    /// capacity budget.
    pub fn try_compile_with_store(
        tree: &Tree,
        atoms: &[BinExpr],
        store: &mut MatrixStore,
    ) -> Result<CompiledAtoms, CapacityError> {
        let sources: Vec<SuccessorSource> = atoms
            .iter()
            .map(|b| store.successor_source(tree, b))
            .collect::<Result<_, _>>()?;
        Ok(CompiledAtoms::from_sources(tree.len(), sources))
    }

    /// Compile each PPLbin atom through a thread-safe [`SharedMatrixStore`]:
    /// the per-atom shard lock is held only while that atom compiles, and
    /// the returned rows are shared with the store (and with any other
    /// thread answering the same atoms) via `Arc`.  Panics past the dense
    /// capacity budget; see [`PplBinAtoms::try_compile_with_shared`].
    pub fn compile_with_shared(
        tree: &Tree,
        atoms: &[BinExpr],
        store: &SharedMatrixStore,
    ) -> CompiledAtoms {
        Self::try_compile_with_shared(tree, atoms, store)
            .expect("dense capacity exceeded while compiling atoms")
    }

    /// Fallible form of [`PplBinAtoms::compile_with_shared`].
    pub fn try_compile_with_shared(
        tree: &Tree,
        atoms: &[BinExpr],
        store: &SharedMatrixStore,
    ) -> Result<CompiledAtoms, CapacityError> {
        let sources: Vec<SuccessorSource> = atoms
            .iter()
            .map(|b| store.successor_source(tree, b))
            .collect::<Result<_, _>>()?;
        Ok(CompiledAtoms::from_sources(tree.len(), sources))
    }
}

/// Atom compiler for raw axis steps `(Axis, NameTest)`.
pub struct AxisAtoms;

impl AxisAtoms {
    /// Compile each `(axis, name-test)` atom by direct axis iteration.
    pub fn compile(tree: &Tree, atoms: &[(Axis, NameTest)]) -> CompiledAtoms {
        let pair_lists: Vec<Vec<(NodeId, NodeId)>> = atoms
            .iter()
            .map(|(axis, test)| {
                let mut pairs = Vec::new();
                for u in tree.nodes() {
                    for v in tree.axis_iter(*axis, u) {
                        if test.matches(tree.label_str(v)) {
                            pairs.push((u, v));
                        }
                    }
                }
                pairs
            })
            .collect();
        CompiledAtoms::from_pairs(tree.len(), pair_lists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_ast::{parse_path, Var};
    use xpath_pplbin::answer_binary;

    fn tree() -> Tree {
        Tree::from_terms("a(b(c,d),b(d))").unwrap()
    }

    #[test]
    fn interning_deduplicates_equal_atoms() {
        let c: Hcl<String> = Hcl::Atom("ch".to_string())
            .then(Hcl::Var(Var::new("x")))
            .or(Hcl::Atom("ch".to_string()).then(Hcl::Atom("desc".to_string())));
        let (interned, atoms) = intern_atoms(&c);
        assert_eq!(atoms, vec!["ch".to_string(), "desc".to_string()]);
        assert_eq!(interned.atoms().len(), 3);
        assert_eq!(interned.atoms().iter().filter(|a| ***a == AtomId(0)).count(), 2);
    }

    #[test]
    fn pplbin_atoms_match_matrix_rows() {
        let t = tree();
        let child = from_variable_free_path(&parse_path("child::*").unwrap()).unwrap();
        let desc_d = from_variable_free_path(&parse_path("descendant::d").unwrap()).unwrap();
        let compiled = PplBinAtoms::compile(&t, &[child.clone(), desc_d.clone()]);
        assert_eq!(compiled.atom_count(), 2);
        assert_eq!(compiled.domain(), t.len());
        for (i, b) in [child, desc_d].iter().enumerate() {
            let m = answer_binary(&t, b);
            for u in t.nodes() {
                let expected: Vec<NodeId> = m.successors(u).collect();
                assert_eq!(compiled.successors(AtomId(i as u32), u), expected.as_slice());
                assert_eq!(compiled.has_successor(AtomId(i as u32), u), !expected.is_empty());
            }
        }
        assert!(compiled.pair_count() > 0);
    }

    #[test]
    fn axis_atoms_match_direct_iteration() {
        let t = tree();
        let atoms = vec![
            (Axis::Child, NameTest::Wildcard),
            (Axis::Descendant, NameTest::name("d")),
            (Axis::Parent, NameTest::Wildcard),
        ];
        let compiled = AxisAtoms::compile(&t, &atoms);
        for (i, (axis, test)) in atoms.iter().enumerate() {
            for u in t.nodes() {
                let expected: Vec<NodeId> = t
                    .axis_iter(*axis, u)
                    .filter(|&v| test.matches(t.label_str(v)))
                    .collect();
                let mut expected_sorted = expected.clone();
                expected_sorted.sort_unstable();
                assert_eq!(
                    compiled.successors(AtomId(i as u32), u),
                    expected_sorted.as_slice()
                );
            }
        }
    }

    #[test]
    fn compile_with_store_matches_cold_compile_and_shares_lists() {
        let t = tree();
        let child = from_variable_free_path(&parse_path("child::*").unwrap()).unwrap();
        let desc_d = from_variable_free_path(&parse_path("descendant::d").unwrap()).unwrap();
        let atoms = [child, desc_d];
        let cold = PplBinAtoms::compile(&t, &atoms);
        let mut store = MatrixStore::new(t.len());
        let warm = PplBinAtoms::compile_with_store(&t, &atoms, &mut store);
        for i in 0..atoms.len() {
            for u in t.nodes() {
                assert_eq!(
                    warm.successors(AtomId(i as u32), u),
                    cold.successors(AtomId(i as u32), u)
                );
            }
        }
        assert_eq!(warm.pair_count(), cold.pair_count());
        // Recompiling through the same store is pure cache traffic.
        let before = store.stats();
        let again = PplBinAtoms::compile_with_store(&t, &atoms, &mut store);
        assert_eq!(again.pair_count(), cold.pair_count());
        assert_eq!(store.stats().misses, before.misses);
        assert!(store.stats().hits > before.hits);
    }

    #[test]
    fn from_pairs_deduplicates_and_sorts() {
        let compiled = CompiledAtoms::from_pairs(
            3,
            vec![vec![
                (NodeId(0), NodeId(2)),
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
            ]],
        );
        assert_eq!(compiled.successors(AtomId(0), NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(compiled.pair_count(), 2);
        assert!(compiled.successors(AtomId(0), NodeId(1)).is_empty());
    }
}
