//! Binary-query oracles for HCL(L).
//!
//! The answering algorithm of Fig. 8 assumes that "all binary queries
//! occurring in `D_∆` are precompiled in a data structure that returns in
//! time `|S_{u,b}|` the set `S_{u,b} = {u' | (u, u') ∈ q_b(t)}`"
//! (Prop. 10).  [`CompiledAtoms`] is exactly that data structure: one sorted
//! successor list per (atom, node) pair.
//!
//! Two compilers are provided:
//!
//! * [`PplBinAtoms`] — atoms are PPLbin expressions, answered by the
//!   Boolean-matrix engine of `xpath_pplbin` in `O(|b|·|t|³)` each
//!   (Theorem 2), which instantiates the `p(|b|, |t|)` of Prop. 10;
//! * [`AxisAtoms`] — atoms are raw `(Axis, NameTest)` steps, answered
//!   directly from the tree in `O(|t|²)`; used by the ACQ experiments.

use crate::lang::Hcl;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;
use xpath_ast::{BinExpr, NameTest};
use xpath_pplbin::{eval_relation, KernelMode, KernelStats, MatrixStore, SharedMatrixStore};
use xpath_tree::{Axis, NodeId, Tree};

/// Identifier of an interned atom inside a [`CompiledAtoms`] table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

impl AtomId {
    /// Dense index of the atom.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Precompiled successor lists for a set of binary queries over one tree.
///
/// Per-atom lists are held behind `Arc` so a cache (the `MatrixStore` of a
/// `Document`, or the `SharedMatrixStore` of a `Session`) can hand out the
/// same compiled lists to many queries — on any thread — without copying
/// them.
#[derive(Debug, Clone)]
pub struct CompiledAtoms {
    /// `succ[atom][node]` — sorted successors of `node` under `atom`.
    succ: Vec<Arc<Vec<Vec<NodeId>>>>,
    domain: usize,
}

impl CompiledAtoms {
    /// Build a table directly from per-atom pair lists.
    pub fn from_pairs(domain: usize, atoms: Vec<Vec<(NodeId, NodeId)>>) -> CompiledAtoms {
        let mut succ = Vec::with_capacity(atoms.len());
        for pairs in atoms {
            let mut lists = vec![Vec::new(); domain];
            for (u, v) in pairs {
                lists[u.index()].push(v);
            }
            for l in lists.iter_mut() {
                l.sort_unstable();
                l.dedup();
            }
            succ.push(Arc::new(lists));
        }
        CompiledAtoms { succ, domain }
    }

    /// Build a table from already-shared per-atom successor lists (each
    /// `lists[atom][node]` sorted in document order), e.g. straight out of a
    /// [`MatrixStore`] or [`SharedMatrixStore`].
    pub fn from_successor_lists(
        domain: usize,
        atoms: Vec<Arc<Vec<Vec<NodeId>>>>,
    ) -> CompiledAtoms {
        debug_assert!(atoms.iter().all(|per_node| per_node.len() == domain));
        CompiledAtoms { succ: atoms, domain }
    }

    /// Number of nodes of the underlying tree.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Number of compiled atoms.
    pub fn atom_count(&self) -> usize {
        self.succ.len()
    }

    /// The successors `S_{u,b}` of `u` under atom `b`, in document order.
    pub fn successors(&self, atom: AtomId, u: NodeId) -> &[NodeId] {
        &self.succ[atom.index()][u.index()]
    }

    /// The shared per-node successor lists of one atom.  Cloning the `Arc`
    /// lets a caller iterate a list while holding `&mut` state of its own
    /// (the Fig. 8 stream does this) without copying any nodes.
    pub fn shared_lists(&self, atom: AtomId) -> &Arc<Vec<Vec<NodeId>>> {
        &self.succ[atom.index()]
    }

    /// Does `u` have any successor under `atom`?
    pub fn has_successor(&self, atom: AtomId, u: NodeId) -> bool {
        !self.successors(atom, u).is_empty()
    }

    /// Total number of stored pairs (the size of the induced relational
    /// database `db = {q_b(t) | b ∈ L}` of Section 6).
    pub fn pair_count(&self) -> usize {
        self.succ
            .iter()
            .map(|per_node| per_node.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

/// Intern the atoms of an HCL expression: equal atoms share an [`AtomId`].
///
/// Returns the rewritten expression together with the distinct atoms in
/// first-occurrence order.
pub fn intern_atoms<B: Clone + Eq + Hash>(hcl: &Hcl<B>) -> (Hcl<AtomId>, Vec<B>) {
    let mut table: HashMap<B, AtomId> = HashMap::new();
    let mut atoms: Vec<B> = Vec::new();
    let rewritten = hcl.map_atoms(&mut |b: &B| {
        *table.entry(b.clone()).or_insert_with(|| {
            let id = AtomId(atoms.len() as u32);
            atoms.push(b.clone());
            id
        })
    });
    (rewritten, atoms)
}

/// Atom compiler backed by the PPLbin Boolean-matrix engine.
pub struct PplBinAtoms;

impl PplBinAtoms {
    /// Compile each PPLbin atom on the tree (Theorem 2 per atom), through
    /// the adaptive relation kernels: the successor lists of Prop. 10 are
    /// read straight off the compiled [`Relation`], so interval- and
    /// sparse-shaped atoms never materialise their dense bits.
    ///
    /// [`Relation`]: xpath_pplbin::Relation
    pub fn compile(tree: &Tree, atoms: &[BinExpr]) -> CompiledAtoms {
        let succ: Vec<Arc<Vec<Vec<NodeId>>>> = atoms
            .iter()
            .map(|b| {
                let relation =
                    eval_relation(tree, b, KernelMode::default(), &mut KernelStats::default());
                Arc::new(
                    tree.nodes()
                        .map(|u| relation.successor_list(u))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        CompiledAtoms::from_successor_lists(tree.len(), succ)
    }

    /// Compile each PPLbin atom through a [`MatrixStore`]: subterms already
    /// compiled by earlier queries over the same tree are reused, and the
    /// successor lists themselves are shared with the store via `Arc`.
    pub fn compile_with_store(
        tree: &Tree,
        atoms: &[BinExpr],
        store: &mut MatrixStore,
    ) -> CompiledAtoms {
        let lists: Vec<Arc<Vec<Vec<NodeId>>>> = atoms
            .iter()
            .map(|b| store.successor_lists(tree, b))
            .collect();
        CompiledAtoms::from_successor_lists(tree.len(), lists)
    }

    /// Compile each PPLbin atom through a thread-safe [`SharedMatrixStore`]:
    /// the per-atom shard lock is held only while that atom compiles, and
    /// the returned lists are shared with the store (and with any other
    /// thread answering the same atoms) via `Arc`.
    pub fn compile_with_shared(
        tree: &Tree,
        atoms: &[BinExpr],
        store: &SharedMatrixStore,
    ) -> CompiledAtoms {
        let lists: Vec<Arc<Vec<Vec<NodeId>>>> = atoms
            .iter()
            .map(|b| store.successor_lists(tree, b))
            .collect();
        CompiledAtoms::from_successor_lists(tree.len(), lists)
    }
}

/// Atom compiler for raw axis steps `(Axis, NameTest)`.
pub struct AxisAtoms;

impl AxisAtoms {
    /// Compile each `(axis, name-test)` atom by direct axis iteration.
    pub fn compile(tree: &Tree, atoms: &[(Axis, NameTest)]) -> CompiledAtoms {
        let pair_lists: Vec<Vec<(NodeId, NodeId)>> = atoms
            .iter()
            .map(|(axis, test)| {
                let mut pairs = Vec::new();
                for u in tree.nodes() {
                    for v in tree.axis_iter(*axis, u) {
                        if test.matches(tree.label_str(v)) {
                            pairs.push((u, v));
                        }
                    }
                }
                pairs
            })
            .collect();
        CompiledAtoms::from_pairs(tree.len(), pair_lists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_ast::{parse_path, Var};
    use xpath_pplbin::answer_binary;

    fn tree() -> Tree {
        Tree::from_terms("a(b(c,d),b(d))").unwrap()
    }

    #[test]
    fn interning_deduplicates_equal_atoms() {
        let c: Hcl<String> = Hcl::Atom("ch".to_string())
            .then(Hcl::Var(Var::new("x")))
            .or(Hcl::Atom("ch".to_string()).then(Hcl::Atom("desc".to_string())));
        let (interned, atoms) = intern_atoms(&c);
        assert_eq!(atoms, vec!["ch".to_string(), "desc".to_string()]);
        assert_eq!(interned.atoms().len(), 3);
        assert_eq!(interned.atoms().iter().filter(|a| ***a == AtomId(0)).count(), 2);
    }

    #[test]
    fn pplbin_atoms_match_matrix_rows() {
        let t = tree();
        let child = from_variable_free_path(&parse_path("child::*").unwrap()).unwrap();
        let desc_d = from_variable_free_path(&parse_path("descendant::d").unwrap()).unwrap();
        let compiled = PplBinAtoms::compile(&t, &[child.clone(), desc_d.clone()]);
        assert_eq!(compiled.atom_count(), 2);
        assert_eq!(compiled.domain(), t.len());
        for (i, b) in [child, desc_d].iter().enumerate() {
            let m = answer_binary(&t, b);
            for u in t.nodes() {
                let expected: Vec<NodeId> = m.successors(u).collect();
                assert_eq!(compiled.successors(AtomId(i as u32), u), expected.as_slice());
                assert_eq!(compiled.has_successor(AtomId(i as u32), u), !expected.is_empty());
            }
        }
        assert!(compiled.pair_count() > 0);
    }

    #[test]
    fn axis_atoms_match_direct_iteration() {
        let t = tree();
        let atoms = vec![
            (Axis::Child, NameTest::Wildcard),
            (Axis::Descendant, NameTest::name("d")),
            (Axis::Parent, NameTest::Wildcard),
        ];
        let compiled = AxisAtoms::compile(&t, &atoms);
        for (i, (axis, test)) in atoms.iter().enumerate() {
            for u in t.nodes() {
                let expected: Vec<NodeId> = t
                    .axis_iter(*axis, u)
                    .filter(|&v| test.matches(t.label_str(v)))
                    .collect();
                let mut expected_sorted = expected.clone();
                expected_sorted.sort_unstable();
                assert_eq!(
                    compiled.successors(AtomId(i as u32), u),
                    expected_sorted.as_slice()
                );
            }
        }
    }

    #[test]
    fn compile_with_store_matches_cold_compile_and_shares_lists() {
        let t = tree();
        let child = from_variable_free_path(&parse_path("child::*").unwrap()).unwrap();
        let desc_d = from_variable_free_path(&parse_path("descendant::d").unwrap()).unwrap();
        let atoms = [child, desc_d];
        let cold = PplBinAtoms::compile(&t, &atoms);
        let mut store = MatrixStore::new(t.len());
        let warm = PplBinAtoms::compile_with_store(&t, &atoms, &mut store);
        for i in 0..atoms.len() {
            for u in t.nodes() {
                assert_eq!(
                    warm.successors(AtomId(i as u32), u),
                    cold.successors(AtomId(i as u32), u)
                );
            }
        }
        assert_eq!(warm.pair_count(), cold.pair_count());
        // Recompiling through the same store is pure cache traffic.
        let before = store.stats();
        let again = PplBinAtoms::compile_with_store(&t, &atoms, &mut store);
        assert_eq!(again.pair_count(), cold.pair_count());
        assert_eq!(store.stats().misses, before.misses);
        assert!(store.stats().hits > before.hits);
    }

    #[test]
    fn from_pairs_deduplicates_and_sorts() {
        let compiled = CompiledAtoms::from_pairs(
            3,
            vec![vec![
                (NodeId(0), NodeId(2)),
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
            ]],
        );
        assert_eq!(compiled.successors(AtomId(0), NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(compiled.pair_count(), 2);
        assert!(compiled.successors(AtomId(0), NodeId(1)).is_empty());
    }
}
