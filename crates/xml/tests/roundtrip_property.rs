//! Serializer ↔ parser round-trip property: `parse_with(to_xml_with_text(t),
//! text_labels) == t` on random trees — including text leaves that need
//! `&amp;`/`&lt;` escaping and numeric character references, adjacent text
//! runs, and multi-byte UTF-8 content.

use proptest::prelude::*;
use xpath_tree::{NodeId, Tree, TreeBuilder};
use xpath_xml::{parse, parse_with, to_xml, to_xml_pretty, to_xml_with_text, ParseOptions};

/// A generated document node: element with children, or a text leaf.
#[derive(Debug, Clone)]
enum GenNode {
    Element(String, Vec<GenNode>),
    Text(String),
}

/// Strategy for valid element names (ASCII letter head, name tail).
fn name_strategy() -> impl Strategy<Value = String> {
    (
        0usize..26,
        prop::collection::vec(0usize..39, 0..6),
    )
        .prop_map(|(head, tail)| {
            const TAIL: &[u8; 39] = b"abcdefghijklmnopqrstuvwxyz0123456789_-.";
            let mut name = String::new();
            name.push((b'a' + head as u8) as char);
            for i in tail {
                name.push(TAIL[i] as char);
            }
            name
        })
}

/// Strategy for text content: first character non-whitespace (whitespace-only
/// runs are dropped by the parser), then a mix of plain characters, markup
/// characters needing escaping, whitespace, and non-ASCII code points.
fn text_strategy() -> impl Strategy<Value = String> {
    let any_char = prop_oneof![
        (0usize..26).prop_map(|i| (b'a' + i as u8) as char),
        prop_oneof![
            Just('&'),
            Just('<'),
            Just('>'),
            Just('"'),
            Just('\''),
            Just(' '),
            Just('\n'),
            Just('\t'),
            Just('é'),
            Just('λ'),
            Just('❤'),
            Just(';'),
            Just('#'),
        ],
    ];
    let head = prop_oneof![
        (0usize..26).prop_map(|i| (b'a' + i as u8) as char),
        prop_oneof![Just('&'), Just('<'), Just('é'), Just('#')],
    ];
    (head, prop::collection::vec(any_char, 0..8)).prop_map(|(head, tail)| {
        let mut text = String::new();
        text.push(head);
        text.extend(tail);
        text
    })
}

/// Strategy for document subtrees of bounded depth.
fn node_strategy() -> BoxedStrategy<GenNode> {
    let leaf = prop_oneof![
        name_strategy().prop_map(|n| GenNode::Element(n, Vec::new())),
        text_strategy().prop_map(GenNode::Text),
    ];
    leaf.boxed().prop_recursive(3, 24, 4, |inner| {
        (name_strategy(), prop::collection::vec(inner, 0..4))
            .prop_map(|(name, children)| GenNode::Element(name, children))
    })
}

/// Strategy for whole documents: the root must be an element.
fn doc_strategy() -> impl Strategy<Value = GenNode> {
    (name_strategy(), prop::collection::vec(node_strategy(), 0..4))
        .prop_map(|(name, children)| GenNode::Element(name, children))
}

fn build(node: &GenNode, builder: &mut TreeBuilder) {
    match node {
        GenNode::Element(name, children) if children.is_empty() => {
            builder.leaf(name);
        }
        GenNode::Element(name, children) => {
            builder.open(name);
            for child in children {
                build(child, builder);
            }
            builder.close();
        }
        GenNode::Text(text) => {
            builder.leaf(text);
        }
    }
}

fn to_tree(doc: &GenNode) -> Tree {
    let mut builder = TreeBuilder::new();
    build(doc, &mut builder);
    builder.finish().expect("generated documents have a root")
}

/// Structural equality of trees as (parent-preorder, label) sequences.
fn shape(tree: &Tree) -> Vec<(Option<u32>, String)> {
    fn walk(tree: &Tree, node: NodeId, parent: Option<u32>, out: &mut Vec<(Option<u32>, String)>) {
        out.push((parent, tree.label_str(node).to_string()));
        let me = tree.preorder(node);
        for child in tree.children(node) {
            walk(tree, child, Some(me), out);
        }
    }
    let mut out = Vec::new();
    walk(tree, tree.root(), None, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The headline property: serialize with text escaping, parse with
    /// text labels, and get the identical tree back.
    #[test]
    fn serialize_parse_identity_with_text(doc in doc_strategy()) {
        let tree = to_tree(&doc);
        let xml = to_xml_with_text(&tree);
        let opts = ParseOptions { text_labels: true, ..Default::default() };
        let back = parse_with(&xml, &opts)
            .unwrap_or_else(|e| panic!("serialized XML must reparse: {e}\n  xml: {xml}"));
        prop_assert_eq!(shape(&back), shape(&tree), "xml: {}", xml);
    }

    /// Element-only trees round trip through the plain serializer too, in
    /// both compact and pretty form.
    #[test]
    fn element_only_round_trip(doc in doc_strategy()) {
        let tree = to_tree(&doc);
        // Keep only what the serializer emits as *elements*: real elements,
        // plus text leaves whose label happens to be a valid name (those
        // serialize as `<name/>` and survive default parsing).
        fn strip(node: &GenNode, builder: &mut TreeBuilder) {
            match node {
                GenNode::Element(name, children) => {
                    if children.is_empty() {
                        builder.leaf(name);
                    } else {
                        builder.open(name);
                        for child in children {
                            strip(child, builder);
                        }
                        builder.close();
                    }
                }
                GenNode::Text(text) if xpath_xml::is_valid_name(text) => {
                    builder.leaf(text);
                }
                GenNode::Text(_) => {}
            }
        }
        let mut builder = TreeBuilder::new();
        strip(&doc, &mut builder);
        let skeleton = builder.finish().expect("root is an element");
        let compact = parse(&to_xml(&skeleton)).unwrap();
        prop_assert_eq!(shape(&compact), shape(&skeleton));
        let pretty = parse(&to_xml_pretty(&skeleton)).unwrap();
        prop_assert_eq!(shape(&pretty), shape(&skeleton));
        // The full tree's text leaves never leak into default parsing.
        let stripped = parse(&to_xml_with_text(&tree)).unwrap();
        prop_assert_eq!(shape(&stripped), shape(&skeleton));
    }
}
