//! Hand-written recursive-descent parser for a practical XML subset.

use xpath_tree::{Tree, TreeBuilder, TreeError};

/// A source location: 1-based line and column (column counts bytes within
/// the line, so multi-byte UTF-8 text advances it per byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column within the line.
    pub column: usize,
    /// Raw byte offset in the input.
    pub position: usize,
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Compute the [`Location`] of a byte offset in `input`.
pub fn locate(input: &str, position: usize) -> Location {
    let upto = position.min(input.len());
    let bytes = input.as_bytes();
    let mut line = 1;
    let mut line_start = 0;
    for (i, &b) in bytes[..upto].iter().enumerate() {
        if b == b'\n' {
            line += 1;
            line_start = i + 1;
        }
    }
    Location {
        line,
        column: upto - line_start + 1,
        position,
    }
}

/// Errors reported by the XML parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Unexpected end of input.
    UnexpectedEof { context: &'static str },
    /// A syntactic problem at a source location.
    Syntax { location: Location, message: String },
    /// Closing tag does not match the open element.
    MismatchedTag {
        location: Location,
        expected: String,
        found: String,
    },
    /// The document contains no root element.
    NoRootElement,
    /// Content found after the root element closed.
    TrailingContent { location: Location },
    /// The underlying tree construction failed.
    Tree(TreeError),
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while parsing {context}")
            }
            XmlError::Syntax { location, message } => {
                write!(f, "XML syntax error at {location}: {message}")
            }
            XmlError::MismatchedTag {
                location,
                expected,
                found,
            } => write!(
                f,
                "mismatched closing tag at {location}: expected </{expected}>, found </{found}>"
            ),
            XmlError::NoRootElement => write!(f, "document has no root element"),
            XmlError::TrailingContent { location } => {
                write!(f, "content after the root element at {location}")
            }
            XmlError::Tree(e) => write!(f, "tree construction failed: {e}"),
        }
    }
}

impl std::error::Error for XmlError {}

impl From<TreeError> for XmlError {
    fn from(e: TreeError) -> XmlError {
        XmlError::Tree(e)
    }
}

/// Options controlling how XML documents are mapped to trees.
#[derive(Debug, Clone, Default)]
pub struct ParseOptions {
    /// Keep non-whitespace character data as `#text`-labelled leaves.
    /// Default: `false` (the paper's data model ignores data values).
    pub keep_text: bool,
    /// Map each attribute `name="…"` to a child element labelled
    /// `@name`.  Default: `false`.
    pub attributes_as_children: bool,
    /// Label text leaves with their decoded character data instead of
    /// `#text` (implies keeping text).  With
    /// [`crate::serializer::to_xml_with_text`] this makes
    /// parse ∘ serialize the identity on trees with text leaves.
    /// Default: `false`.
    pub text_labels: bool,
}

/// Label given to text leaves when [`ParseOptions::keep_text`] is enabled.
pub const TEXT_LABEL: &str = "#text";

/// Parse an XML document with default options (elements only).
pub fn parse(input: &str) -> Result<Tree, XmlError> {
    parse_with(input, &ParseOptions::default())
}

/// Parse an XML document with explicit [`ParseOptions`].
pub fn parse_with(input: &str, options: &ParseOptions) -> Result<Tree, XmlError> {
    let mut p = Parser {
        source: input,
        input: input.as_bytes(),
        pos: 0,
        options: options.clone(),
        builder: TreeBuilder::new(),
        open_names: Vec::new(),
        seen_root: false,
    };
    p.document()?;
    Ok(p.builder.finish()?)
}

struct Parser<'a> {
    source: &'a str,
    input: &'a [u8],
    pos: usize,
    options: ParseOptions,
    builder: TreeBuilder,
    open_names: Vec<String>,
    seen_root: bool,
}

impl<'a> Parser<'a> {
    fn location(&self) -> Location {
        locate(self.source, self.pos)
    }

    fn syntax(&self, message: impl Into<String>) -> XmlError {
        XmlError::Syntax {
            location: self.location(),
            message: message.into(),
        }
    }

    fn eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, s: &str, context: &'static str) -> Result<(), XmlError> {
        if self.starts_with(s) {
            self.advance(s.len());
            Ok(())
        } else if self.eof() {
            Err(XmlError::UnexpectedEof { context })
        } else {
            Err(self.syntax(format!("expected `{s}` while parsing {context}")))
        }
    }

    fn skip_until(&mut self, terminator: &str, context: &'static str) -> Result<(), XmlError> {
        match find_subslice(&self.input[self.pos..], terminator.as_bytes()) {
            Some(offset) => {
                self.pos += offset + terminator.len();
                Ok(())
            }
            None => Err(XmlError::UnexpectedEof { context }),
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':');
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.syntax("expected a name"));
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.syntax("name is not valid UTF-8"))?;
        if name.as_bytes()[0].is_ascii_digit() {
            return Err(self.syntax("names must not start with a digit"));
        }
        Ok(name.to_string())
    }

    fn document(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_whitespace();
            if self.eof() {
                break;
            }
            if self.starts_with("<?") {
                self.skip_until("?>", "processing instruction")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->", "comment")?;
            } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                self.skip_doctype()?;
            } else if self.starts_with("<") {
                if self.seen_root {
                    return Err(XmlError::TrailingContent { location: self.location() });
                }
                self.element()?;
                self.seen_root = true;
            } else {
                // Character data outside the root element: only whitespace is
                // allowed, and whitespace was already skipped.
                return Err(if self.seen_root {
                    XmlError::TrailingContent { location: self.location() }
                } else {
                    self.syntax("character data before the root element")
                });
            }
        }
        if !self.seen_root {
            return Err(XmlError::NoRootElement);
        }
        Ok(())
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        // Skip to the matching `>` taking a possible internal subset
        // `[...]` into account.
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            match c {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(XmlError::UnexpectedEof { context: "DOCTYPE" })
    }

    fn element(&mut self) -> Result<(), XmlError> {
        self.expect("<", "element start tag")?;
        let name = self.name()?;
        self.builder.open(&name);
        self.open_names.push(name.clone());

        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.advance(1);
                    break;
                }
                Some(b'/') => {
                    self.expect("/>", "self-closing tag")?;
                    self.builder.close();
                    self.open_names.pop();
                    return Ok(());
                }
                Some(_) => {
                    let (attr, _value) = self.attribute()?;
                    if self.options.attributes_as_children {
                        self.builder.leaf(&format!("@{attr}"));
                    }
                }
                None => return Err(XmlError::UnexpectedEof { context: "start tag" }),
            }
        }

        // Content.
        loop {
            if self.eof() {
                return Err(XmlError::UnexpectedEof { context: "element content" });
            }
            if self.starts_with("</") {
                self.advance(2);
                let close = self.name()?;
                self.skip_whitespace();
                self.expect(">", "closing tag")?;
                let open = self.open_names.pop().expect("open element on the stack");
                if open != close {
                    return Err(XmlError::MismatchedTag {
                        location: self.location(),
                        expected: open,
                        found: close,
                    });
                }
                self.builder.close();
                return Ok(());
            } else if self.starts_with("<!--") {
                self.skip_until("-->", "comment")?;
            } else if self.starts_with("<![CDATA[") {
                let start = self.pos + "<![CDATA[".len();
                let end_rel = find_subslice(&self.input[start..], b"]]>")
                    .ok_or(XmlError::UnexpectedEof { context: "CDATA" })?;
                let text = std::str::from_utf8(&self.input[start..start + end_rel])
                    .map_err(|_| self.syntax("CDATA is not valid UTF-8"))?
                    .to_string();
                self.pos = start + end_rel + 3;
                self.text_node(&text);
            } else if self.starts_with("<?") {
                self.skip_until("?>", "processing instruction")?;
            } else if self.starts_with("<") {
                self.element()?;
            } else {
                let text = self.char_data()?;
                self.text_node(&text);
            }
        }
    }

    fn text_node(&mut self, text: &str) {
        if text.trim().is_empty() {
            return;
        }
        if self.options.text_labels {
            self.builder.leaf(text);
        } else if self.options.keep_text {
            self.builder.leaf(TEXT_LABEL);
        }
    }

    fn char_data(&mut self) -> Result<String, XmlError> {
        let mut out = String::new();
        loop {
            // Take a maximal run of plain bytes in one go: `<` and `&` are
            // ASCII, so a run boundary can never split a UTF-8 code point.
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'<' || c == b'&' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.syntax("character data is not valid UTF-8"))?,
                );
            }
            match self.peek() {
                Some(b'&') => out.push(self.entity()?),
                _ => break,
            }
        }
        Ok(out)
    }

    fn entity(&mut self) -> Result<char, XmlError> {
        self.expect("&", "entity reference")?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b';' {
                break;
            }
            self.pos += 1;
        }
        if self.eof() {
            return Err(XmlError::UnexpectedEof { context: "entity reference" });
        }
        let body = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.syntax("entity is not valid UTF-8"))?
            .to_string();
        self.advance(1); // the ';'
        let ch = match body.as_str() {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "apos" => '\'',
            "quot" => '"',
            _ if body.starts_with("#x") || body.starts_with("#X") => {
                let code = u32::from_str_radix(&body[2..], 16)
                    .map_err(|_| self.syntax(format!("invalid character reference &{body};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.syntax(format!("invalid code point in &{body};")))?
            }
            _ if body.starts_with('#') => {
                let code = body[1..]
                    .parse::<u32>()
                    .map_err(|_| self.syntax(format!("invalid character reference &{body};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.syntax(format!("invalid code point in &{body};")))?
            }
            _ => return Err(self.syntax(format!("unknown entity &{body};"))),
        };
        Ok(ch)
    }

    fn attribute(&mut self) -> Result<(String, String), XmlError> {
        let name = self.name()?;
        self.skip_whitespace();
        self.expect("=", "attribute")?;
        self.skip_whitespace();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.syntax("attribute value must be quoted")),
        };
        self.advance(1);
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                break;
            }
            self.pos += 1;
        }
        if self.eof() {
            return Err(XmlError::UnexpectedEof { context: "attribute value" });
        }
        let value = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.syntax("attribute value is not valid UTF-8"))?
            .to_string();
        self.advance(1);
        Ok((name, value))
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (0..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_only() {
        let t = parse("<bib><book><author/><title/></book></bib>").unwrap();
        assert_eq!(t.to_terms(), "bib(book(author,title))");
    }

    #[test]
    fn self_closing_and_nested() {
        let t = parse("<a><b/><c><d/></c></a>").unwrap();
        assert_eq!(t.to_terms(), "a(b,c(d))");
    }

    #[test]
    fn declaration_comments_doctype_are_skipped() {
        let src = r#"<?xml version="1.0" encoding="UTF-8"?>
            <!DOCTYPE bib [ <!ELEMENT bib (book*)> ]>
            <!-- a bibliography -->
            <bib><!-- inner --><book/></bib>"#;
        let t = parse(src).unwrap();
        assert_eq!(t.to_terms(), "bib(book)");
    }

    #[test]
    fn text_is_dropped_by_default_and_kept_on_request() {
        let src = "<book><title>T &amp; A</title></book>";
        let t = parse(src).unwrap();
        assert_eq!(t.to_terms(), "book(title)");
        let t2 = parse_with(
            src,
            &ParseOptions {
                keep_text: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t2.to_terms(), "book(title(#text))");
    }

    #[test]
    fn attributes_are_validated_and_optionally_mapped() {
        let src = r#"<book isbn="123" lang='en'><title/></book>"#;
        let t = parse(src).unwrap();
        assert_eq!(t.to_terms(), "book(title)");
        let t2 = parse_with(
            src,
            &ParseOptions {
                attributes_as_children: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t2.to_terms(), "book(@isbn,@lang,title)");
    }

    #[test]
    fn cdata_and_char_refs() {
        let src = "<a><![CDATA[ <raw> ]]>&#65;&#x42;</a>";
        let t = parse_with(
            src,
            &ParseOptions {
                keep_text: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t.to_terms(), "a(#text,#text)");
        // Default options drop the text entirely.
        assert_eq!(parse(src).unwrap().to_terms(), "a");
    }

    #[test]
    fn whitespace_only_text_never_creates_nodes() {
        let t = parse_with(
            "<a>\n   <b/>   \n</a>",
            &ParseOptions {
                keep_text: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t.to_terms(), "a(b)");
    }

    #[test]
    fn mismatched_tags_are_reported() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::MismatchedTag { .. }));
        let msg = err.to_string();
        assert!(msg.contains("</b>") || msg.contains("expected"));
    }

    #[test]
    fn structural_errors() {
        assert!(matches!(parse(""), Err(XmlError::NoRootElement)));
        assert!(matches!(parse("   \n "), Err(XmlError::NoRootElement)));
        assert!(matches!(
            parse("<a/><b/>"),
            Err(XmlError::TrailingContent { .. })
        ));
        assert!(matches!(parse("<a>"), Err(XmlError::UnexpectedEof { .. })));
        assert!(matches!(parse("<a"), Err(XmlError::UnexpectedEof { .. })));
        assert!(matches!(parse("hello"), Err(XmlError::Syntax { .. })));
        assert!(matches!(parse("<1a/>"), Err(XmlError::Syntax { .. })));
        assert!(matches!(
            parse("<a attr=unquoted/>"),
            Err(XmlError::Syntax { .. })
        ));
        assert!(matches!(parse("<a>&bogus;</a>"), Err(XmlError::Syntax { .. })));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = parse("<a>&bogus;</a>").unwrap_err();
        assert!(e.to_string().contains("bogus"));
        let e = parse("<a/><b/>").unwrap_err();
        assert!(e.to_string().contains("after the root"));
    }

    #[test]
    fn locate_reports_one_based_lines_and_columns() {
        let src = "ab\ncde\n\nf";
        assert_eq!(locate(src, 0), Location { line: 1, column: 1, position: 0 });
        assert_eq!(locate(src, 2), Location { line: 1, column: 3, position: 2 });
        assert_eq!(locate(src, 3), Location { line: 2, column: 1, position: 3 });
        assert_eq!(locate(src, 6), Location { line: 2, column: 4, position: 6 });
        assert_eq!(locate(src, 7), Location { line: 3, column: 1, position: 7 });
        assert_eq!(locate(src, 8), Location { line: 4, column: 1, position: 8 });
        // Past-the-end offsets clamp to the final location.
        assert_eq!(locate(src, 999).line, 4);
        assert_eq!(format!("{}", locate(src, 3)), "2:1");
    }

    #[test]
    fn syntax_errors_report_line_and_column_on_multi_line_input() {
        // The bogus entity sits on line 3; the error points just past its
        // closing `;` (column 15 of `  <bad>&bogus;`).
        let src = "<doc>\n  <ok/>\n  <bad>&bogus;</bad>\n</doc>";
        let err = parse(src).unwrap_err();
        match &err {
            XmlError::Syntax { location, .. } => {
                assert_eq!(location.line, 3, "{err}");
                assert_eq!(location.column, 15, "{err}");
            }
            other => panic!("expected a syntax error, got {other:?}"),
        }
        assert!(err.to_string().contains("at 3:15"), "{err}");

        // Mismatched closing tags report the line of the close tag.
        let src = "<doc>\n  <open>\n</doc>";
        let err = parse(src).unwrap_err();
        match &err {
            XmlError::MismatchedTag { location, .. } => assert_eq!(location.line, 3, "{err}"),
            other => panic!("expected a mismatched tag error, got {other:?}"),
        }
        assert!(err.to_string().contains("3:"), "{err}");

        // Trailing content reports where the second root starts.
        let src = "<doc/>\n\n<oops/>";
        let err = parse(src).unwrap_err();
        match &err {
            XmlError::TrailingContent { location } => {
                assert_eq!((location.line, location.column), (3, 1), "{err}")
            }
            other => panic!("expected trailing content, got {other:?}"),
        }
        assert!(err.to_string().contains("3:1"), "{err}");

        // Single-line input degenerates to line 1 / byte column.
        let err = parse("<a attr=unquoted/>").unwrap_err();
        match err {
            XmlError::Syntax { location, .. } => {
                assert_eq!(location.line, 1);
                assert_eq!(location.column, location.position + 1);
            }
            other => panic!("expected a syntax error, got {other:?}"),
        }
    }

    #[test]
    fn multibyte_text_survives_parsing() {
        let t = parse_with(
            "<a>héllo wörld ❤</a>",
            &ParseOptions {
                text_labels: true,
                ..Default::default()
            },
        )
        .unwrap();
        let text = t.children(t.root()).next().unwrap();
        assert_eq!(t.label_str(text), "héllo wörld ❤");
    }

    #[test]
    fn text_labels_keep_decoded_content_as_labels() {
        let src = "<book><title>T &amp; A</title><!-- split -->tail</book>";
        let t = parse_with(
            src,
            &ParseOptions {
                text_labels: true,
                ..Default::default()
            },
        )
        .unwrap();
        let kids: Vec<&str> = t.children(t.root()).map(|c| t.label_str(c)).collect();
        assert_eq!(kids, vec!["title", "tail"]);
        let title = t.children(t.root()).next().unwrap();
        let inner: Vec<&str> = t.children(title).map(|c| t.label_str(c)).collect();
        assert_eq!(inner, vec!["T & A"]);
    }

    #[test]
    fn deeply_nested_document() {
        let mut src = String::new();
        for _ in 0..200 {
            src.push_str("<d>");
        }
        src.push_str("<leaf/>");
        for _ in 0..200 {
            src.push_str("</d>");
        }
        let t = parse(&src).unwrap();
        assert_eq!(t.len(), 201);
        assert_eq!(t.height(), 200);
    }

    #[test]
    fn namespaced_names_are_plain_labels() {
        let t = parse("<x:doc><x:item/></x:doc>").unwrap();
        assert_eq!(t.to_terms(), "x:doc(x:item)");
    }
}
