//! Hand-written recursive-descent parser for a practical XML subset.

use xpath_tree::{Tree, TreeBuilder, TreeError};

/// Errors reported by the XML parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Unexpected end of input.
    UnexpectedEof { context: &'static str },
    /// A syntactic problem at a byte offset.
    Syntax { position: usize, message: String },
    /// Closing tag does not match the open element.
    MismatchedTag {
        position: usize,
        expected: String,
        found: String,
    },
    /// The document contains no root element.
    NoRootElement,
    /// Content found after the root element closed.
    TrailingContent { position: usize },
    /// The underlying tree construction failed.
    Tree(TreeError),
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while parsing {context}")
            }
            XmlError::Syntax { position, message } => {
                write!(f, "XML syntax error at byte {position}: {message}")
            }
            XmlError::MismatchedTag {
                position,
                expected,
                found,
            } => write!(
                f,
                "mismatched closing tag at byte {position}: expected </{expected}>, found </{found}>"
            ),
            XmlError::NoRootElement => write!(f, "document has no root element"),
            XmlError::TrailingContent { position } => {
                write!(f, "content after the root element at byte {position}")
            }
            XmlError::Tree(e) => write!(f, "tree construction failed: {e}"),
        }
    }
}

impl std::error::Error for XmlError {}

impl From<TreeError> for XmlError {
    fn from(e: TreeError) -> XmlError {
        XmlError::Tree(e)
    }
}

/// Options controlling how XML documents are mapped to trees.
#[derive(Debug, Clone, Default)]
pub struct ParseOptions {
    /// Keep non-whitespace character data as `#text`-labelled leaves.
    /// Default: `false` (the paper's data model ignores data values).
    pub keep_text: bool,
    /// Map each attribute `name="…"` to a child element labelled
    /// `@name`.  Default: `false`.
    pub attributes_as_children: bool,
}

/// Label given to text leaves when [`ParseOptions::keep_text`] is enabled.
pub const TEXT_LABEL: &str = "#text";

/// Parse an XML document with default options (elements only).
pub fn parse(input: &str) -> Result<Tree, XmlError> {
    parse_with(input, &ParseOptions::default())
}

/// Parse an XML document with explicit [`ParseOptions`].
pub fn parse_with(input: &str, options: &ParseOptions) -> Result<Tree, XmlError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        options: options.clone(),
        builder: TreeBuilder::new(),
        open_names: Vec::new(),
        seen_root: false,
    };
    p.document()?;
    Ok(p.builder.finish()?)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    options: ParseOptions,
    builder: TreeBuilder,
    open_names: Vec<String>,
    seen_root: bool,
}

impl<'a> Parser<'a> {
    fn syntax(&self, message: impl Into<String>) -> XmlError {
        XmlError::Syntax {
            position: self.pos,
            message: message.into(),
        }
    }

    fn eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, s: &str, context: &'static str) -> Result<(), XmlError> {
        if self.starts_with(s) {
            self.advance(s.len());
            Ok(())
        } else if self.eof() {
            Err(XmlError::UnexpectedEof { context })
        } else {
            Err(self.syntax(format!("expected `{s}` while parsing {context}")))
        }
    }

    fn skip_until(&mut self, terminator: &str, context: &'static str) -> Result<(), XmlError> {
        match find_subslice(&self.input[self.pos..], terminator.as_bytes()) {
            Some(offset) => {
                self.pos += offset + terminator.len();
                Ok(())
            }
            None => Err(XmlError::UnexpectedEof { context }),
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':');
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.syntax("expected a name"));
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.syntax("name is not valid UTF-8"))?;
        if name.as_bytes()[0].is_ascii_digit() {
            return Err(self.syntax("names must not start with a digit"));
        }
        Ok(name.to_string())
    }

    fn document(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_whitespace();
            if self.eof() {
                break;
            }
            if self.starts_with("<?") {
                self.skip_until("?>", "processing instruction")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->", "comment")?;
            } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                self.skip_doctype()?;
            } else if self.starts_with("<") {
                if self.seen_root {
                    return Err(XmlError::TrailingContent { position: self.pos });
                }
                self.element()?;
                self.seen_root = true;
            } else {
                // Character data outside the root element: only whitespace is
                // allowed, and whitespace was already skipped.
                return Err(if self.seen_root {
                    XmlError::TrailingContent { position: self.pos }
                } else {
                    self.syntax("character data before the root element")
                });
            }
        }
        if !self.seen_root {
            return Err(XmlError::NoRootElement);
        }
        Ok(())
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        // Skip to the matching `>` taking a possible internal subset
        // `[...]` into account.
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            match c {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(XmlError::UnexpectedEof { context: "DOCTYPE" })
    }

    fn element(&mut self) -> Result<(), XmlError> {
        self.expect("<", "element start tag")?;
        let name = self.name()?;
        self.builder.open(&name);
        self.open_names.push(name.clone());

        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.advance(1);
                    break;
                }
                Some(b'/') => {
                    self.expect("/>", "self-closing tag")?;
                    self.builder.close();
                    self.open_names.pop();
                    return Ok(());
                }
                Some(_) => {
                    let (attr, _value) = self.attribute()?;
                    if self.options.attributes_as_children {
                        self.builder.leaf(&format!("@{attr}"));
                    }
                }
                None => return Err(XmlError::UnexpectedEof { context: "start tag" }),
            }
        }

        // Content.
        loop {
            if self.eof() {
                return Err(XmlError::UnexpectedEof { context: "element content" });
            }
            if self.starts_with("</") {
                self.advance(2);
                let close = self.name()?;
                self.skip_whitespace();
                self.expect(">", "closing tag")?;
                let open = self.open_names.pop().expect("open element on the stack");
                if open != close {
                    return Err(XmlError::MismatchedTag {
                        position: self.pos,
                        expected: open,
                        found: close,
                    });
                }
                self.builder.close();
                return Ok(());
            } else if self.starts_with("<!--") {
                self.skip_until("-->", "comment")?;
            } else if self.starts_with("<![CDATA[") {
                let start = self.pos + "<![CDATA[".len();
                let end_rel = find_subslice(&self.input[start..], b"]]>")
                    .ok_or(XmlError::UnexpectedEof { context: "CDATA" })?;
                let text = std::str::from_utf8(&self.input[start..start + end_rel])
                    .map_err(|_| self.syntax("CDATA is not valid UTF-8"))?
                    .to_string();
                self.pos = start + end_rel + 3;
                self.text_node(&text);
            } else if self.starts_with("<?") {
                self.skip_until("?>", "processing instruction")?;
            } else if self.starts_with("<") {
                self.element()?;
            } else {
                let text = self.char_data()?;
                self.text_node(&text);
            }
        }
    }

    fn text_node(&mut self, text: &str) {
        if self.options.keep_text && !text.trim().is_empty() {
            self.builder.leaf(TEXT_LABEL);
        }
    }

    fn char_data(&mut self) -> Result<String, XmlError> {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            match c {
                b'<' => break,
                b'&' => out.push(self.entity()?),
                _ => {
                    // Accumulate a UTF-8 code point byte-by-byte.
                    out.push(self.input[self.pos] as char);
                    self.pos += 1;
                }
            }
        }
        Ok(out)
    }

    fn entity(&mut self) -> Result<char, XmlError> {
        self.expect("&", "entity reference")?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b';' {
                break;
            }
            self.pos += 1;
        }
        if self.eof() {
            return Err(XmlError::UnexpectedEof { context: "entity reference" });
        }
        let body = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.syntax("entity is not valid UTF-8"))?
            .to_string();
        self.advance(1); // the ';'
        let ch = match body.as_str() {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "apos" => '\'',
            "quot" => '"',
            _ if body.starts_with("#x") || body.starts_with("#X") => {
                let code = u32::from_str_radix(&body[2..], 16)
                    .map_err(|_| self.syntax(format!("invalid character reference &{body};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.syntax(format!("invalid code point in &{body};")))?
            }
            _ if body.starts_with('#') => {
                let code = body[1..]
                    .parse::<u32>()
                    .map_err(|_| self.syntax(format!("invalid character reference &{body};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.syntax(format!("invalid code point in &{body};")))?
            }
            _ => return Err(self.syntax(format!("unknown entity &{body};"))),
        };
        Ok(ch)
    }

    fn attribute(&mut self) -> Result<(String, String), XmlError> {
        let name = self.name()?;
        self.skip_whitespace();
        self.expect("=", "attribute")?;
        self.skip_whitespace();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.syntax("attribute value must be quoted")),
        };
        self.advance(1);
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                break;
            }
            self.pos += 1;
        }
        if self.eof() {
            return Err(XmlError::UnexpectedEof { context: "attribute value" });
        }
        let value = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.syntax("attribute value is not valid UTF-8"))?
            .to_string();
        self.advance(1);
        Ok((name, value))
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (0..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_only() {
        let t = parse("<bib><book><author/><title/></book></bib>").unwrap();
        assert_eq!(t.to_terms(), "bib(book(author,title))");
    }

    #[test]
    fn self_closing_and_nested() {
        let t = parse("<a><b/><c><d/></c></a>").unwrap();
        assert_eq!(t.to_terms(), "a(b,c(d))");
    }

    #[test]
    fn declaration_comments_doctype_are_skipped() {
        let src = r#"<?xml version="1.0" encoding="UTF-8"?>
            <!DOCTYPE bib [ <!ELEMENT bib (book*)> ]>
            <!-- a bibliography -->
            <bib><!-- inner --><book/></bib>"#;
        let t = parse(src).unwrap();
        assert_eq!(t.to_terms(), "bib(book)");
    }

    #[test]
    fn text_is_dropped_by_default_and_kept_on_request() {
        let src = "<book><title>T &amp; A</title></book>";
        let t = parse(src).unwrap();
        assert_eq!(t.to_terms(), "book(title)");
        let t2 = parse_with(
            src,
            &ParseOptions {
                keep_text: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t2.to_terms(), "book(title(#text))");
    }

    #[test]
    fn attributes_are_validated_and_optionally_mapped() {
        let src = r#"<book isbn="123" lang='en'><title/></book>"#;
        let t = parse(src).unwrap();
        assert_eq!(t.to_terms(), "book(title)");
        let t2 = parse_with(
            src,
            &ParseOptions {
                attributes_as_children: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t2.to_terms(), "book(@isbn,@lang,title)");
    }

    #[test]
    fn cdata_and_char_refs() {
        let src = "<a><![CDATA[ <raw> ]]>&#65;&#x42;</a>";
        let t = parse_with(
            src,
            &ParseOptions {
                keep_text: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t.to_terms(), "a(#text,#text)");
        // Default options drop the text entirely.
        assert_eq!(parse(src).unwrap().to_terms(), "a");
    }

    #[test]
    fn whitespace_only_text_never_creates_nodes() {
        let t = parse_with(
            "<a>\n   <b/>   \n</a>",
            &ParseOptions {
                keep_text: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t.to_terms(), "a(b)");
    }

    #[test]
    fn mismatched_tags_are_reported() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::MismatchedTag { .. }));
        let msg = err.to_string();
        assert!(msg.contains("</b>") || msg.contains("expected"));
    }

    #[test]
    fn structural_errors() {
        assert!(matches!(parse(""), Err(XmlError::NoRootElement)));
        assert!(matches!(parse("   \n "), Err(XmlError::NoRootElement)));
        assert!(matches!(
            parse("<a/><b/>"),
            Err(XmlError::TrailingContent { .. })
        ));
        assert!(matches!(parse("<a>"), Err(XmlError::UnexpectedEof { .. })));
        assert!(matches!(parse("<a"), Err(XmlError::UnexpectedEof { .. })));
        assert!(matches!(parse("hello"), Err(XmlError::Syntax { .. })));
        assert!(matches!(parse("<1a/>"), Err(XmlError::Syntax { .. })));
        assert!(matches!(
            parse("<a attr=unquoted/>"),
            Err(XmlError::Syntax { .. })
        ));
        assert!(matches!(parse("<a>&bogus;</a>"), Err(XmlError::Syntax { .. })));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = parse("<a>&bogus;</a>").unwrap_err();
        assert!(e.to_string().contains("bogus"));
        let e = parse("<a/><b/>").unwrap_err();
        assert!(e.to_string().contains("after the root"));
    }

    #[test]
    fn deeply_nested_document() {
        let mut src = String::new();
        for _ in 0..200 {
            src.push_str("<d>");
        }
        src.push_str("<leaf/>");
        for _ in 0..200 {
            src.push_str("</d>");
        }
        let t = parse(&src).unwrap();
        assert_eq!(t.len(), 201);
        assert_eq!(t.height(), 200);
    }

    #[test]
    fn namespaced_names_are_plain_labels() {
        let t = parse("<x:doc><x:item/></x:doc>").unwrap();
        assert_eq!(t.to_terms(), "x:doc(x:item)");
    }
}
