//! Serialization of trees back to XML.

use xpath_tree::{NodeId, Tree};

/// Serialize a tree as a compact, single-line XML document.
///
/// Leaf elements are emitted as self-closing tags.  Labels are emitted
/// verbatim (tree labels originating from the XML parser are valid names;
/// labels containing characters that are not valid in XML names — e.g. the
/// `#text` pseudo-label or `@attr` pseudo-elements — are prefixed with `x-`
/// and sanitised so the output is always well-formed).
pub fn to_xml(tree: &Tree) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), &mut out, None);
    out
}

/// Serialize a tree as indented XML, one element per line.
pub fn to_xml_pretty(tree: &Tree) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), &mut out, Some(0));
    out
}

fn sanitize_name(label: &str) -> String {
    let mut name: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                c
            } else {
                '-'
            }
        })
        .collect();
    let needs_prefix = name
        .chars()
        .next()
        .map(|c| c.is_ascii_digit() || c == '-' || c == '.' || c == ':')
        .unwrap_or(true);
    if needs_prefix {
        name = format!("x-{name}");
    }
    name
}

fn write_node(tree: &Tree, node: NodeId, out: &mut String, indent: Option<usize>) {
    let name = sanitize_name(tree.label_str(node));
    let pad = |out: &mut String, level: usize| {
        for _ in 0..level {
            out.push_str("  ");
        }
    };
    if let Some(level) = indent {
        pad(out, level);
    }
    if tree.is_leaf(node) {
        out.push('<');
        out.push_str(&name);
        out.push_str("/>");
        if indent.is_some() {
            out.push('\n');
        }
        return;
    }
    out.push('<');
    out.push_str(&name);
    out.push('>');
    if indent.is_some() {
        out.push('\n');
    }
    for c in tree.children(node) {
        write_node(tree, c, out, indent.map(|l| l + 1));
    }
    if let Some(level) = indent {
        pad(out, level);
    }
    out.push_str("</");
    out.push_str(&name);
    out.push('>');
    if indent.is_some() {
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compact_serialization() {
        let t = Tree::from_terms("a(b,c(d))").unwrap();
        assert_eq!(to_xml(&t), "<a><b/><c><d/></c></a>");
    }

    #[test]
    fn pretty_serialization_is_indented() {
        let t = Tree::from_terms("a(b,c(d))").unwrap();
        let xml = to_xml_pretty(&t);
        assert!(xml.contains("\n  <b/>\n"));
        assert!(xml.contains("\n    <d/>\n"));
        // Pretty output parses back to the same tree.
        assert_eq!(parse(&xml).unwrap().to_terms(), "a(b,c(d))");
    }

    #[test]
    fn invalid_labels_are_sanitized() {
        let t = Tree::from_terms("a(b)").unwrap();
        // Build a tree with odd labels through the builder.
        let mut b = xpath_tree::TreeBuilder::new();
        b.open("2root");
        b.leaf("#text");
        b.close();
        let odd = b.finish().unwrap();
        let xml = to_xml(&odd);
        assert!(xml.starts_with("<x-2root>"));
        assert!(xml.contains("<x--text/>"));
        // Sanitized output is parseable.
        parse(&xml).unwrap();
        // Sanity: normal labels are untouched.
        assert_eq!(to_xml(&t), "<a><b/></a>");
    }

    #[test]
    fn parse_serialize_round_trip_on_generated_shapes() {
        for terms in ["a", "a(b)", "root(x(y,z),w(v(u)))"] {
            let t = Tree::from_terms(terms).unwrap();
            let back = parse(&to_xml(&t)).unwrap();
            assert_eq!(back.to_terms(), terms);
        }
    }
}
