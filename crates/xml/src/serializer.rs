//! Serialization of trees back to XML.
//!
//! Three renderers are provided:
//!
//! * [`to_xml`] / [`to_xml_pretty`] — elements only; labels that are not
//!   valid XML names are *sanitised* (lossy but always well-formed);
//! * [`to_xml_with_text`] — leaves whose label is not a valid XML name are
//!   emitted as **escaped character data** instead (`&` → `&amp;`, `<` →
//!   `&lt;`, control and non-ASCII characters as numeric character
//!   references), so that parsing with
//!   [`ParseOptions::text_labels`](crate::parser::ParseOptions) is the
//!   exact inverse: `parse_with(to_xml_with_text(t)) == t` for every tree
//!   whose internal nodes carry valid names (property-tested in
//!   `tests/roundtrip_property.rs`).

use xpath_tree::{NodeId, Tree};

/// Serialize a tree as a compact, single-line XML document.
///
/// Leaf elements are emitted as self-closing tags.  Labels are emitted
/// verbatim (tree labels originating from the XML parser are valid names;
/// labels containing characters that are not valid in XML names — e.g. the
/// `#text` pseudo-label or `@attr` pseudo-elements — are prefixed with `x-`
/// and sanitised so the output is always well-formed).
pub fn to_xml(tree: &Tree) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), &mut out, None);
    out
}

/// Serialize a tree as indented XML, one element per line.
pub fn to_xml_pretty(tree: &Tree) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), &mut out, Some(0));
    out
}

/// Serialize a tree as a single line of XML where non-name leaf labels
/// become escaped text content (see the module docs for the round-trip
/// contract with `ParseOptions::text_labels`).
///
/// The root is always emitted as an *element* — XML has no document-level
/// character data — so a single-node tree whose label is not a valid name
/// falls back to the sanitised element form (the one shape the identity
/// cannot cover; every tree whose root label is a valid name round-trips).
pub fn to_xml_with_text(tree: &Tree) -> String {
    let mut out = String::new();
    let root = tree.root();
    if tree.is_leaf(root) {
        let name = sanitize_name(tree.label_str(root));
        out.push('<');
        out.push_str(&name);
        out.push_str("/>");
        return out;
    }
    write_node_with_text(tree, root, &mut out, false);
    out
}

/// Is `label` serialisable as an XML element name by our parser?
/// Conservative: ASCII alphanumerics plus `_ - . :`, not starting with a
/// digit, `-`, `.` or `:`.
pub fn is_valid_name(label: &str) -> bool {
    let mut chars = label.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    if !(first.is_ascii_alphabetic() || first == '_') {
        return false;
    }
    label
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
}

/// Escape arbitrary text as XML character data: markup characters become
/// entity references, control characters and non-ASCII become numeric
/// character references (the parser decodes both exactly).
fn escape_text(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c if c.is_ascii() && !c.is_ascii_control() => out.push(c),
            c => {
                // Numeric character reference: covers control characters,
                // DEL and every non-ASCII code point in one rule.
                out.push_str(&format!("&#x{:X};", c as u32));
            }
        }
    }
}

fn write_node_with_text(tree: &Tree, node: NodeId, out: &mut String, prev_was_text: bool) {
    let label = tree.label_str(node);
    if tree.is_leaf(node) && !is_valid_name(label) {
        // Adjacent text leaves would merge into one character-data run on
        // re-parse; a comment keeps them apart (the parser skips it but it
        // terminates the run).
        if prev_was_text {
            out.push_str("<!--|-->");
        }
        escape_text(label, out);
        return;
    }
    let name = sanitize_name(label);
    if tree.is_leaf(node) {
        out.push('<');
        out.push_str(&name);
        out.push_str("/>");
        return;
    }
    out.push('<');
    out.push_str(&name);
    out.push('>');
    let mut prev_text = false;
    for c in tree.children(node) {
        let is_text = tree.is_leaf(c) && !is_valid_name(tree.label_str(c));
        write_node_with_text(tree, c, out, prev_text && is_text);
        prev_text = is_text;
    }
    out.push_str("</");
    out.push_str(&name);
    out.push('>');
}

fn sanitize_name(label: &str) -> String {
    let mut name: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                c
            } else {
                '-'
            }
        })
        .collect();
    let needs_prefix = name
        .chars()
        .next()
        .map(|c| c.is_ascii_digit() || c == '-' || c == '.' || c == ':')
        .unwrap_or(true);
    if needs_prefix {
        name = format!("x-{name}");
    }
    name
}

fn write_node(tree: &Tree, node: NodeId, out: &mut String, indent: Option<usize>) {
    let name = sanitize_name(tree.label_str(node));
    let pad = |out: &mut String, level: usize| {
        for _ in 0..level {
            out.push_str("  ");
        }
    };
    if let Some(level) = indent {
        pad(out, level);
    }
    if tree.is_leaf(node) {
        out.push('<');
        out.push_str(&name);
        out.push_str("/>");
        if indent.is_some() {
            out.push('\n');
        }
        return;
    }
    out.push('<');
    out.push_str(&name);
    out.push('>');
    if indent.is_some() {
        out.push('\n');
    }
    for c in tree.children(node) {
        write_node(tree, c, out, indent.map(|l| l + 1));
    }
    if let Some(level) = indent {
        pad(out, level);
    }
    out.push_str("</");
    out.push_str(&name);
    out.push('>');
    if indent.is_some() {
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compact_serialization() {
        let t = Tree::from_terms("a(b,c(d))").unwrap();
        assert_eq!(to_xml(&t), "<a><b/><c><d/></c></a>");
    }

    #[test]
    fn pretty_serialization_is_indented() {
        let t = Tree::from_terms("a(b,c(d))").unwrap();
        let xml = to_xml_pretty(&t);
        assert!(xml.contains("\n  <b/>\n"));
        assert!(xml.contains("\n    <d/>\n"));
        // Pretty output parses back to the same tree.
        assert_eq!(parse(&xml).unwrap().to_terms(), "a(b,c(d))");
    }

    #[test]
    fn invalid_labels_are_sanitized() {
        let t = Tree::from_terms("a(b)").unwrap();
        // Build a tree with odd labels through the builder.
        let mut b = xpath_tree::TreeBuilder::new();
        b.open("2root");
        b.leaf("#text");
        b.close();
        let odd = b.finish().unwrap();
        let xml = to_xml(&odd);
        assert!(xml.starts_with("<x-2root>"));
        assert!(xml.contains("<x--text/>"));
        // Sanitized output is parseable.
        parse(&xml).unwrap();
        // Sanity: normal labels are untouched.
        assert_eq!(to_xml(&t), "<a><b/></a>");
    }

    #[test]
    fn parse_serialize_round_trip_on_generated_shapes() {
        for terms in ["a", "a(b)", "root(x(y,z),w(v(u)))"] {
            let t = Tree::from_terms(terms).unwrap();
            let back = parse(&to_xml(&t)).unwrap();
            assert_eq!(back.to_terms(), terms);
        }
    }

    #[test]
    fn name_validity_is_conservative() {
        for good in ["a", "x:doc", "a-b.c", "_x", "A9"] {
            assert!(is_valid_name(good), "{good}");
        }
        for bad in ["", "9a", "-a", ".a", ":a", "#text", "a b", "a&b", "héllo"] {
            assert!(!is_valid_name(bad), "{bad}");
        }
    }

    #[test]
    fn text_leaves_are_escaped_and_round_trip() {
        use crate::parser::{parse_with, ParseOptions};
        let mut b = xpath_tree::TreeBuilder::new();
        b.open("doc");
        b.leaf("T & A < B > C");
        b.leaf("elem");
        b.leaf("héllo ❤");
        b.close();
        let t = b.finish().unwrap();
        let xml = to_xml_with_text(&t);
        assert!(xml.contains("T &amp; A &lt; B &gt; C"), "{xml}");
        assert!(xml.contains("<elem/>"), "{xml}");
        assert!(xml.contains("&#xE9;"), "non-ASCII must use numeric refs: {xml}");
        assert!(xml.contains("&#x2764;"), "{xml}");
        let opts = ParseOptions {
            text_labels: true,
            ..Default::default()
        };
        let back = parse_with(&xml, &opts).unwrap();
        let labels: Vec<&str> = back.children(back.root()).map(|c| back.label_str(c)).collect();
        assert_eq!(labels, vec!["T & A < B > C", "elem", "héllo ❤"]);
    }

    #[test]
    fn adjacent_text_leaves_stay_separate() {
        use crate::parser::{parse_with, ParseOptions};
        let mut b = xpath_tree::TreeBuilder::new();
        b.open("doc");
        b.leaf("first text");
        b.leaf("second text");
        b.close();
        let t = b.finish().unwrap();
        let xml = to_xml_with_text(&t);
        assert!(xml.contains("<!--|-->"), "a separator must split the run: {xml}");
        let back = parse_with(
            &xml,
            &ParseOptions {
                text_labels: true,
                ..Default::default()
            },
        )
        .unwrap();
        let labels: Vec<&str> = back.children(back.root()).map(|c| back.label_str(c)).collect();
        assert_eq!(labels, vec!["first text", "second text"]);
    }

    #[test]
    fn text_only_root_degrades_to_a_sanitised_element() {
        // XML has no document-level character data, so a single text node
        // cannot round trip; it must still serialize to a well-formed doc.
        let mut b = xpath_tree::TreeBuilder::new();
        b.open("hello world");
        b.close();
        let t = b.finish().unwrap();
        let xml = to_xml_with_text(&t);
        assert_eq!(xml, "<hello-world/>");
        crate::parser::parse(&xml).unwrap();
    }

    #[test]
    fn control_characters_round_trip_via_numeric_refs() {
        use crate::parser::{parse_with, ParseOptions};
        let mut b = xpath_tree::TreeBuilder::new();
        b.open("doc");
        b.leaf("line\nbreak\ttab");
        b.close();
        let t = b.finish().unwrap();
        let xml = to_xml_with_text(&t);
        assert!(xml.contains("&#xA;"), "{xml}");
        assert!(xml.contains("&#x9;"), "{xml}");
        assert!(!xml.contains('\n'), "escaped output must stay one line: {xml}");
        let back = parse_with(
            &xml,
            &ParseOptions {
                text_labels: true,
                ..Default::default()
            },
        )
        .unwrap();
        let text = back.children(back.root()).next().unwrap();
        assert_eq!(back.label_str(text), "line\nbreak\ttab");
    }
}
