//! # `xpath_xml` — a minimal XML parser and serializer
//!
//! The paper abstracts XML documents to unranked, sibling-ordered trees whose
//! nodes are labelled with element names; "other features are ignored, such
//! as attributes, data values, and name spaces".  This crate provides exactly
//! that bridge: it parses a practical subset of XML 1.0 into
//! [`xpath_tree::Tree`] values and serializes trees back to XML.
//!
//! The parser is hand-written (no external dependencies) and supports:
//!
//! * elements with arbitrary nesting, including self-closing tags;
//! * attributes (parsed and validated, then **discarded** by default, or
//!   mapped to child elements with [`ParseOptions::attributes_as_children`]);
//! * character data (discarded by default, or kept as `#text`-labelled leaf
//!   nodes with [`ParseOptions::keep_text`]);
//! * comments, processing instructions, the XML declaration and DOCTYPE
//!   declarations (all skipped);
//! * CDATA sections (treated as character data);
//! * the five predefined entities and decimal/hexadecimal character
//!   references.
//!
//! ## Example
//!
//! ```
//! use xpath_xml::{parse, to_xml};
//!
//! let t = parse("<bib><book><author/><title/></book></bib>").unwrap();
//! assert_eq!(t.to_terms(), "bib(book(author,title))");
//! let xml = to_xml(&t);
//! assert!(xml.starts_with("<bib>"));
//! ```

#![forbid(unsafe_code)]

pub mod parser;
pub mod serializer;

pub use parser::{locate, parse, parse_with, Location, ParseOptions, XmlError};
pub use serializer::{is_valid_name, to_xml, to_xml_pretty, to_xml_with_text};

#[cfg(test)]
mod round_trip_tests {
    use super::*;

    #[test]
    fn parse_then_serialize_then_parse_is_stable() {
        let src = "<a><b><c/><c/></b><d/></a>";
        let t1 = parse(src).unwrap();
        let xml = to_xml(&t1);
        let t2 = parse(&xml).unwrap();
        assert_eq!(t1.to_terms(), t2.to_terms());
    }
}
