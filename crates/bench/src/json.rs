//! Minimal JSON support for the bench harness.
//!
//! The build environment has no crates.io access (so no `serde_json`); the
//! regression harness needs only a small, dependable subset: build a value,
//! render it deterministically, and parse it back to validate that an
//! emitted `BENCH_*.json` file is well-formed and has the expected keys.
//! Numbers are `f64` (every value the harness emits — sizes, counts,
//! microsecond medians — fits losslessly).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (rendering is deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the full input must be one value).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            byte as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']' at byte {pos}, found {other:?}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    other => return Err(format!("expected ',' or '}}' at byte {pos}, found {other:?}", pos = *pos)),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
        }
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad keyword at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let text = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
    let mut chars = text.char_indices();
    while let Some((offset, c)) = chars.next() {
        match c {
            '"' => {
                *pos += offset + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((_, 'u')) => {
                    let hex4 = |chars: &mut std::str::CharIndices| -> Result<u32, String> {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                            code = code * 16 + h.to_digit(16).ok_or("bad \\u escape")?;
                        }
                        Ok(code)
                    };
                    let code = hex4(&mut chars)?;
                    if (0xD800..=0xDBFF).contains(&code) {
                        // High surrogate: must be followed by `\uDC00..DFFF`;
                        // the pair combines into one non-BMP scalar.
                        if !matches!((chars.next(), chars.next()), (Some((_, '\\')), Some((_, 'u'))))
                        {
                            return Err(format!("lone high surrogate \\u{code:04x}"));
                        }
                        let low = hex4(&mut chars)?;
                        if !(0xDC00..=0xDFFF).contains(&low) {
                            return Err(format!(
                                "high surrogate \\u{code:04x} followed by \\u{low:04x}"
                            ));
                        }
                        let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                        out.push(char::from_u32(combined).unwrap_or('\u{fffd}'));
                    } else if (0xDC00..=0xDFFF).contains(&code) {
                        return Err(format!("lone low surrogate \\u{code:04x}"));
                    } else {
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(members: &[(&str, Json)]) -> Json {
        Json::Obj(members.iter().map(|(k, v)| (k.to_string(), v.clone())).collect())
    }

    #[test]
    fn render_parse_round_trip() {
        let value = obj(&[
            ("schema", Json::Str("ppl-xpath-bench/v1".into())),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "results",
                Json::Arr(vec![obj(&[
                    ("median_us", Json::Num(12.5)),
                    ("tree_size", Json::Num(480.0)),
                    ("engine", Json::Str("ppl_cached".into())),
                ])]),
            ),
        ]);
        let text = value.render();
        assert!(text.ends_with('\n'));
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, value);
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some("ppl-xpath-bench/v1"));
        let row = &parsed.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("median_us").unwrap().as_f64(), Some(12.5));
        assert_eq!(row.get("tree_size").unwrap().as_f64(), Some(480.0));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(480.0).render(), "480\n");
        assert_eq!(Json::Num(12.5).render(), "12.5\n");
        assert_eq!(Json::Num(-3.0).render(), "-3\n");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = Json::Str("quote \" slash \\ newline \n tab \t".into());
        assert_eq!(Json::parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nulx", "[1] garbage", "\"open"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn unicode_escapes_decode_including_surrogate_pairs() {
        // Python's json.dump escapes non-BMP characters as surrogate pairs.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
        assert_eq!(Json::parse("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
        for bad in ["\"\\ud83d\"", "\"\\ud83d\\u0041\"", "\"\\ude00\"", "\"\\uZZZZ\""] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let text = " { \"a\" : [ 1 , 2.5 , { \"b\" : null } ] } ";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }
}
