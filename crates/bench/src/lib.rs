//! Shared helpers for the benchmark harness (Criterion benches and the
//! deterministic `experiments` runner).
//!
//! Every experiment of EXPERIMENTS.md (E1–E9) is driven either by a
//! Criterion bench target in `benches/` or by the `experiments` binary in
//! `src/bin/experiments.rs`, and both use the workload constructors below so
//! the numbers are comparable.

#![forbid(unsafe_code)]

pub mod json;
pub mod regress;

pub use json::Json;
pub use regress::{
    run_corpus_bench, run_daemon_bench, run_incr_bench, run_lazy_bench, run_regression,
    run_regression_full, run_router_bench, validate_bench_json, CorpusBenchConfig,
    DaemonBenchConfig, IncrBenchConfig, KernelConfig, LazyBenchConfig, RegressConfig,
    RouterBenchConfig, ServeConfig,
};

use std::time::{Duration, Instant};

/// Measure a closure once and return its wall-clock duration together with
/// its result.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Measure the median of `runs` executions of a closure (result of the last
/// run returned).  Used by the `experiments` runner; the Criterion benches
/// do their own statistics.
pub fn time_median<T>(runs: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(runs >= 1);
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let (d, out) = time_once(&mut f);
        times.push(d);
        last = Some(out);
    }
    times.sort_unstable();
    (times[times.len() / 2], last.expect("runs >= 1"))
}

/// Format a duration in microseconds with a fixed width, for table output.
pub fn fmt_us(d: Duration) -> String {
    format!("{:>10.1}", d.as_secs_f64() * 1e6)
}

/// Ratio between two durations (`later / earlier`), guarded against zero.
pub fn ratio(later: Duration, earlier: Duration) -> f64 {
    let e = earlier.as_secs_f64().max(1e-9);
    later.as_secs_f64() / e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers() {
        let (d, v) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        let (m, v) = time_median(3, || 7);
        assert_eq!(v, 7);
        assert!(m.as_nanos() > 0 || m.as_nanos() == 0);
        assert!(ratio(Duration::from_micros(20), Duration::from_micros(10)) > 1.9);
        assert_eq!(fmt_us(Duration::from_micros(5)).trim(), "5.0");
    }
}
