//! Deterministic experiment runner.
//!
//! With no arguments, prints one table per experiment of EXPERIMENTS.md
//! (E1–E9), each validating the *shape* of a complexity claim of the paper
//! (who wins, how the cost grows, where the crossover is).  Absolute
//! numbers depend on the machine; the shapes should not.
//!
//! Run with: `cargo run -p xpath_bench --bin experiments --release`
//!
//! ## Regression-harness modes
//!
//! * `--bench [--smoke] [--out <path>]` — run the E10 repeated-query sweep,
//!   the E11 kernel ablation (dense vs adaptive vs adaptive+threads
//!   relation kernels over the axis-heavy suite, trees up to 960 nodes)
//!   *and* the E12 planner/concurrency sweep (auto vs forced engines over
//!   the planner-mix suite; one shared `Session` vs isolated per-thread
//!   documents at 1/2/4/8 serving threads; see EXPERIMENTS.md) and write
//!   the result as `BENCH_*.json`-schema JSON to `<path>` (default
//!   `BENCH_4.json`).  `--smoke` shrinks every dimension for CI.
//! * `--bench-corpus [--smoke] [--out <path>]` — run the E13 corpus-serving
//!   sweep (pooled vs budgeted vs cold-rebuild serving) and write the result
//!   to `<path>` (default `BENCH_5.json`).
//! * `--bench-lazy [--smoke] [--out <path>]` — run the E14 lazy
//!   large-document sweep (DBLP-style trees at |t| ∈ {10k, 100k}, lazy
//!   relation algebra vs the eager adaptive kernels) and write the result to
//!   `<path>` (default `BENCH_6.json`).
//! * `--bench-daemon [--smoke] [--out <path>]` — run the E15 daemon-serving
//!   sweep (sustained pipelined QPS of a live `pplxd` at 1/64/1024
//!   concurrent connections, epoll event loop vs thread-per-client;
//!   Linux-only) and write the result to `<path>` (default `BENCH_7.json`).
//! * `--bench-router [--smoke] [--out <path>]` — run the E16 sharded-router
//!   sweep (a router over N backend daemons vs one daemon under the same
//!   pipelined QUERY load, plus a mid-bench shard kill measuring the
//!   post-recovery failure rate) and write the result to `<path>` (default
//!   `BENCH_8.json`).
//! * `--bench-incr [--smoke] [--out <path>]` — run the E17 incremental
//!   maintenance sweep (a warm session absorbing a single-node relabel via
//!   `fork_edited` vs a from-scratch session, re-answering the E14 DBLP
//!   suite; |t| ∈ {10k, 100k}) and write the result to `<path>` (default
//!   `BENCH_9.json`).
//! * `--check <path>` — parse an emitted JSON file and validate the schema
//!   (exit non-zero on any missing key), so CI notices when the harness or
//!   the trajectory file rots.

use ppl_xpath::{Document, Engine, PplQuery};
use std::time::Duration;
use xpath_acq::{answer_acq, hcl_to_acq};
use xpath_ast::binexpr::from_variable_free_path;
use xpath_ast::{parse_path, Var};
use xpath_bench::{fmt_us, ratio, time_median};
use xpath_fo::{fo_to_xpath, Formula};
use xpath_hcl::oracle::intern_atoms;
use xpath_hcl::{answer_hcl_pplbin, ppl_to_hcl, EquationSystem, Hcl};
use xpath_pplbin::{answer_binary, unary_from_root};
use xpath_tree::generate::{bibliography, random_tree, restaurants, TreeGenConfig, TreeShape};
use xpath_workload::{
    bibliography_pairs_query, encode_sat_query, encode_sat_tree, pplbin_suite, random_3sat,
    restaurant_query,
};

const RUNS: usize = 3;

fn header(id: &str, claim: &str) {
    println!();
    println!("=== {id} — {claim}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.is_empty() {
        std::process::exit(run_harness_mode(&args));
    }

    println!("PPL XPath reproduction — experiment runner (median of {RUNS} runs per cell)");

    e1_pplbin_tree_scaling();
    e2_pplbin_query_scaling();
    e3_ppl_nary();
    e4_naive_vs_ppl();
    e5_sat_hardness();
    e6_acq_vs_hcl();
    e7_sharing_normalisation();
    e8_fig7_translation();
    e9_fo_translation_and_corexpath1();

    println!("\nAll experiments completed.");
}

/// Handle `--bench`/`--check` invocations; returns the process exit code.
fn run_harness_mode(args: &[String]) -> i32 {
    const USAGE: &str =
        "usage: experiments [--bench [--smoke] [--out <path>]] \
         [--bench-corpus [--smoke] [--out <path>]] \
         [--bench-lazy [--smoke] [--out <path>]] \
         [--bench-daemon [--smoke] [--out <path>]] \
         [--bench-router [--smoke] [--out <path>]] \
         [--bench-incr [--smoke] [--out <path>]] [--check <path>]";
    let mut bench = false;
    let mut bench_corpus = false;
    let mut bench_lazy = false;
    let mut bench_daemon = false;
    let mut bench_router = false;
    let mut bench_incr = false;
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => bench = true,
            "--bench-corpus" => bench_corpus = true,
            "--bench-lazy" => bench_lazy = true,
            "--bench-daemon" => bench_daemon = true,
            "--bench-router" => bench_router = true,
            "--bench-incr" => bench_incr = true,
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => out = Some(path.clone()),
                    None => {
                        eprintln!("missing value for --out\n{USAGE}");
                        return 2;
                    }
                }
            }
            "--check" => {
                i += 1;
                match args.get(i) {
                    Some(path) => check = Some(path.clone()),
                    None => {
                        eprintln!("missing value for --check\n{USAGE}");
                        return 2;
                    }
                }
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return 2;
            }
        }
        i += 1;
    }
    if !bench
        && !bench_corpus
        && !bench_lazy
        && !bench_daemon
        && !bench_router
        && !bench_incr
        && check.is_none()
    {
        eprintln!("{USAGE}");
        return 2;
    }
    if (bench as usize)
        + (bench_corpus as usize)
        + (bench_lazy as usize)
        + (bench_daemon as usize)
        + (bench_router as usize)
        + (bench_incr as usize)
        > 1
    {
        eprintln!(
            "--bench, --bench-corpus, --bench-lazy, --bench-daemon, --bench-router and \
             --bench-incr write different documents; run them separately"
        );
        return 2;
    }

    if bench_incr {
        let cfg = if smoke {
            xpath_bench::IncrBenchConfig::smoke()
        } else {
            xpath_bench::IncrBenchConfig::full()
        };
        let path = out.clone().unwrap_or_else(|| "BENCH_9.json".to_string());
        eprintln!(
            "running incremental-maintenance sweep (E17, {} mode): dblp trees {:?}, \
             lazy kernels from |t|={}, {} queries after a single-node relabel, {} runs/cell",
            if smoke { "smoke" } else { "full" },
            cfg.tree_sizes,
            cfg.lazy_min_size,
            xpath_workload::dblp_suite().len(),
            cfg.runs,
        );
        let doc = xpath_bench::run_incr_bench(&cfg);
        let text = doc.render();
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        if let Some(summary) = doc.get("summary") {
            let f = |key| summary.get(key).and_then(xpath_bench::Json::as_f64).unwrap_or(0.0);
            eprintln!(
                "wrote {path}: incremental {} us vs full recompile {} us at |t|={} \
                 (speedup x{}); {} of {} cached rows recomputed (fraction {}); \
                 x{} at |t|={}",
                f("incr_pin_us"),
                f("full_pin_us"),
                f("incr_pin_tree_size"),
                f("incr_speedup"),
                f("incr_rows_invalidated"),
                f("incr_rows_total"),
                f("incr_rows_fraction"),
                f("incr_largest_speedup"),
                f("incr_largest_tree_size"),
            );
        }
    }

    if bench_router {
        let cfg = if smoke {
            xpath_bench::RouterBenchConfig::smoke()
        } else {
            xpath_bench::RouterBenchConfig::full()
        };
        let path = out.clone().unwrap_or_else(|| "BENCH_8.json".to_string());
        eprintln!(
            "running sharded-router sweep (E16, {} mode): {} shards (replication {}), \
             {} connections x{} pipelined, ~{} requests/phase, {} docs, {} runs/cell, \
             plus a mid-bench shard kill",
            if smoke { "smoke" } else { "full" },
            cfg.shards,
            cfg.replication,
            cfg.connections,
            cfg.pipeline,
            cfg.total_requests,
            cfg.docs,
            cfg.runs,
        );
        let doc = xpath_bench::run_router_bench(&cfg);
        let text = doc.render();
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        if let Some(summary) = doc.get("summary") {
            let f = |key| summary.get(key).and_then(xpath_bench::Json::as_f64).unwrap_or(0.0);
            eprintln!(
                "wrote {path}: router over {} shards {} qps vs single daemon {} qps \
                 (efficiency x{}); shard-kill failure rate {} after recovery",
                f("router_shards"),
                f("router_qps"),
                f("single_daemon_qps"),
                f("router_efficiency"),
                f("router_kill_failure_rate"),
            );
        }
    }

    if bench_daemon {
        let cfg = if smoke {
            xpath_bench::DaemonBenchConfig::smoke()
        } else {
            xpath_bench::DaemonBenchConfig::full()
        };
        let path = out.clone().unwrap_or_else(|| "BENCH_7.json".to_string());
        eprintln!(
            "running daemon-serving sweep (E15, {} mode): {:?} connections x{} pipelined, \
             ~{} requests/cell, {} workers, {} runs/cell, epoll vs threads",
            if smoke { "smoke" } else { "full" },
            cfg.connections,
            cfg.pipeline,
            cfg.total_requests,
            cfg.workers,
            cfg.runs,
        );
        let doc = xpath_bench::run_daemon_bench(&cfg);
        let text = doc.render();
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        if let Some(summary) = doc.get("summary") {
            let f = |key| summary.get(key).and_then(xpath_bench::Json::as_f64).unwrap_or(0.0);
            eprintln!(
                "wrote {path}: epoll {} qps vs threads {} qps at {} connections \
                 (speedup x{})",
                f("daemon_epoll_pin_qps"),
                f("daemon_threads_pin_qps"),
                f("daemon_pin_conns"),
                f("daemon_speedup"),
            );
        }
    }

    if bench_lazy {
        let cfg = if smoke {
            xpath_bench::LazyBenchConfig::smoke()
        } else {
            xpath_bench::LazyBenchConfig::full()
        };
        let path = out.clone().unwrap_or_else(|| "BENCH_6.json".to_string());
        eprintln!(
            "running lazy large-document sweep (E14, {} mode): dblp trees {:?}, \
             eager baseline up to |t|={}, {} queries, {} runs/cell",
            if smoke { "smoke" } else { "full" },
            cfg.tree_sizes,
            cfg.eager_max_size,
            xpath_workload::dblp_suite().len(),
            cfg.runs,
        );
        let doc = xpath_bench::run_lazy_bench(&cfg);
        let text = doc.render();
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        if let Some(summary) = doc.get("summary") {
            let f = |key| summary.get(key).and_then(xpath_bench::Json::as_f64).unwrap_or(0.0);
            eprintln!(
                "wrote {path}: lazy {} us vs eager {} us at |t|={} (speedup x{}); \
                 lazy reaches |t|={} in {} us at {} bytes/node",
                f("lazy_pin_us"),
                f("eager_pin_us"),
                f("lazy_pin_tree_size"),
                f("lazy_speedup"),
                f("lazy_largest_tree_size"),
                f("lazy_largest_us"),
                f("lazy_bytes_per_node"),
            );
        }
    }

    if bench_corpus {
        let cfg = if smoke {
            xpath_bench::CorpusBenchConfig::smoke()
        } else {
            xpath_bench::CorpusBenchConfig::full()
        };
        let path = out.clone().unwrap_or_else(|| "BENCH_5.json".to_string());
        eprintln!(
            "running corpus-serving sweep (E13, {} mode): {} docs (base |t|={}), \
             {} queries x{} repeats, {} fan-out threads, {} runs/cell",
            if smoke { "smoke" } else { "full" },
            cfg.docs,
            cfg.base_size,
            xpath_bench::regress::suite().len(),
            cfg.repeats,
            cfg.threads,
            cfg.runs,
        );
        let doc = xpath_bench::run_corpus_bench(&cfg);
        let text = doc.render();
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        if let Some(summary) = doc.get("summary") {
            let f = |key| summary.get(key).and_then(xpath_bench::Json::as_f64).unwrap_or(0.0);
            eprintln!(
                "wrote {path}: corpus pool {} us vs cold rebuild {} us over {} docs \
                 (speedup x{}, working set {} bytes; budget sweep half {} us / quarter {} us, \
                 {} evictions at quarter)",
                f("corpus_pool_us"),
                f("corpus_cold_us"),
                f("corpus_docs"),
                f("corpus_speedup"),
                f("corpus_working_set_bytes"),
                f("corpus_budget_half_us"),
                f("corpus_budget_quarter_us"),
                f("corpus_budget_quarter_evictions"),
            );
        }
    }

    if bench {
        let (cfg, kernels, serve) = if smoke {
            (
                xpath_bench::RegressConfig::smoke(),
                xpath_bench::regress::KernelConfig::smoke(),
                xpath_bench::regress::ServeConfig::smoke(),
            )
        } else {
            (
                xpath_bench::RegressConfig::full(),
                xpath_bench::regress::KernelConfig::full(),
                xpath_bench::regress::ServeConfig::full(),
            )
        };
        let path = out.unwrap_or_else(|| "BENCH_4.json".to_string());
        eprintln!(
            "running repeated-query regression sweep ({} mode): trees {:?}, {} queries x{} repeats, {} runs/cell",
            if smoke { "smoke" } else { "full" },
            cfg.tree_sizes,
            xpath_bench::regress::suite().len(),
            cfg.repeats,
            cfg.runs,
        );
        eprintln!(
            "running kernel ablation (E11): trees {:?}, {} axis-heavy queries, {} runs/cell",
            kernels.tree_sizes,
            xpath_bench::regress::axis_suite().len(),
            kernels.runs,
        );
        eprintln!(
            "running planner/concurrency sweep (E12): planner |t|={}, serving |t|={} x{} threads, {} runs/cell",
            serve.planner_tree_size,
            serve.serve_tree_size,
            serve
                .threads
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join("/"),
            serve.runs,
        );
        let doc = xpath_bench::regress::run_regression_full(&cfg, &kernels, &serve);
        let text = doc.render();
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        if let Some(summary) = doc.get("summary") {
            let f = |key| summary.get(key).and_then(xpath_bench::Json::as_f64).unwrap_or(0.0);
            eprintln!(
                "wrote {path}: cold {} us vs cached {} us at |t|={} (speedup x{})",
                f("cold_median_us"),
                f("cached_median_us"),
                f("largest_tree_size"),
                f("cached_speedup"),
            );
            eprintln!(
                "kernels at |t|={}: dense {} us, adaptive {} us (x{}), adaptive+threads {} us (x{})",
                f("kernel_largest_tree_size"),
                f("kernel_dense_median_us"),
                f("kernel_adaptive_median_us"),
                f("adaptive_speedup"),
                f("kernel_adaptive_threaded_median_us"),
                f("adaptive_threaded_speedup"),
            );
            eprintln!(
                "serving at |t|={} x{} threads: shared session {} us vs isolated workers {} us \
                 (x{} from cache sharing; thread scaling x{})",
                f("serve_tree_size"),
                f("serve_max_threads"),
                f("serve_shared_tmax_us"),
                f("serve_isolated_tmax_us"),
                f("shared_vs_isolated_speedup"),
                f("thread_scaling"),
            );
        }
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return 1;
            }
        };
        if let Err(e) = xpath_bench::validate_bench_json(&text) {
            eprintln!("{path} failed schema validation: {e}");
            return 1;
        }
        eprintln!("{path}: valid {} document", xpath_bench::regress::SCHEMA);
    }
    0
}

/// E1 — Theorem 2: PPLbin answering scales polynomially (cubically) in |t|.
fn e1_pplbin_tree_scaling() {
    header("E1", "Thm. 2: PPLbin binary answering, scaling in |t| (expected ~cubic growth)");
    let queries: Vec<_> = [
        "child::*/child::*",
        "descendant::l0[child::l1]",
        "descendant::* except child::*",
        "(child::l0 union child::l1)/descendant::l2",
    ]
    .iter()
    .map(|s| from_variable_free_path(&parse_path(s).unwrap()).unwrap())
    .collect();
    println!("{:>8} | {:>10} | {:>8} | {:>10}", "|t|", "time (us)", "growth", "pairs");
    let mut prev: Option<Duration> = None;
    for &size in &[50usize, 100, 200, 400] {
        let tree = random_tree(&TreeGenConfig {
            size,
            shape: TreeShape::BoundedBranching { max_children: 4 },
            alphabet: 3,
            seed: 11,
        });
        let (t, pairs) = time_median(RUNS, || {
            queries
                .iter()
                .map(|q| answer_binary(&tree, q).count_pairs())
                .sum::<usize>()
        });
        let growth = prev.map(|p| format!("x{:.2}", ratio(t, p))).unwrap_or_else(|| "-".into());
        println!("{:>8} | {} | {:>8} | {:>10}", size, fmt_us(t), growth, pairs);
        prev = Some(t);
    }
    println!("(expected: well below the ~8x-per-doubling of the dense cubic bound — the adaptive relation kernels keep axis-shaped operands interval/CSR, so growth tracks the pair counts; the paper's |t|³ worst case survives only in dense operands, see E11)");
}

/// E2 — Theorem 2: linear scaling in |P| for a fixed tree.
fn e2_pplbin_query_scaling() {
    header("E2", "Thm. 2: PPLbin answering, scaling in |P| (expected ~linear growth)");
    let tree = random_tree(&TreeGenConfig {
        size: 150,
        shape: TreeShape::BoundedBranching { max_children: 4 },
        alphabet: 3,
        seed: 12,
    });
    println!("{:>8} | {:>10} | {:>8}", "|P|", "time (us)", "growth");
    let mut prev: Option<Duration> = None;
    for &levels in &[4usize, 8, 16, 32, 64] {
        let query = pplbin_suite(levels);
        let size = query.size();
        let (t, _) = time_median(RUNS, || answer_binary(&tree, &query).count_pairs());
        let growth = prev.map(|p| format!("x{:.2}", ratio(t, p))).unwrap_or_else(|| "-".into());
        println!("{:>8} | {} | {:>8}", size, fmt_us(t), growth);
        prev = Some(t);
    }
    println!("(expected: time roughly doubles when |P| doubles)");
}

/// E3 — Theorem 1: n-ary answering, output-sensitive polynomial cost.
fn e3_ppl_nary() {
    header("E3", "Thm. 1: PPL n-ary answering — scaling in |t|, in n, and in |A|");

    println!("-- scaling in |t| (bibliography, n = 2) --");
    println!("{:>8} | {:>8} | {:>10} | {:>8}", "|t|", "|A|", "time (us)", "growth");
    let (query, vars) = bibliography_pairs_query();
    let compiled = PplQuery::compile_path(query, vars).unwrap();
    let mut prev: Option<Duration> = None;
    for &books in &[20usize, 40, 80, 160] {
        let doc = Document::from_tree(bibliography(books, 3));
        let (t, answers) = time_median(RUNS, || compiled.answers(&doc).unwrap().len());
        let growth = prev.map(|p| format!("x{:.2}", ratio(t, p))).unwrap_or_else(|| "-".into());
        println!("{:>8} | {:>8} | {} | {:>8}", doc.len(), answers, fmt_us(t), growth);
        prev = Some(t);
    }

    println!("-- scaling in tuple width n (restaurants, 40 records) --");
    println!("{:>8} | {:>8} | {:>10}", "n", "|A|", "time (us)");
    let doc = Document::from_tree(restaurants(40, &xpath_tree::generate::RESTAURANT_ATTRIBUTES, 5));
    for &width in &[1usize, 3, 5, 7, 9, 11] {
        let (query, vars) = restaurant_query(width);
        let compiled = PplQuery::compile_path(query, vars).unwrap();
        let (t, answers) = time_median(RUNS, || compiled.answers(&doc).unwrap().len());
        println!("{:>8} | {:>8} | {}", width, answers, fmt_us(t));
    }
    println!("(expected: polynomial growth in n — nothing like the |t|^n of the naive engine)");

    println!("-- output sensitivity (bibliography, 60 books, growing |A|) --");
    println!("{:>8} | {:>8} | {:>10}", "|t|", "|A|", "time (us)");
    let (query, vars) = bibliography_pairs_query();
    let compiled = PplQuery::compile_path(query, vars).unwrap();
    for &max_authors in &[1usize, 2, 4, 8] {
        let doc = Document::from_tree(bibliography(60, max_authors));
        let (t, answers) = time_median(RUNS, || compiled.answers(&doc).unwrap().len());
        println!("{:>8} | {:>8} | {}", doc.len(), answers, fmt_us(t));
    }
    println!("(expected: time grows with |A| roughly linearly once |A| dominates)");
}

/// E4 — Prop. 1 / Cor. 1: the naive enumeration baseline is exponential in n.
fn e4_naive_vs_ppl() {
    header("E4", "naive assignment enumeration vs PPL engine (crossover in tuple width)");
    let doc = Document::from_tree(restaurants(4, &xpath_tree::generate::RESTAURANT_ATTRIBUTES[..4], 3));
    println!("document: {} nodes", doc.len());
    println!("{:>3} | {:>12} | {:>12} | {:>10}", "n", "ppl (us)", "naive (us)", "naive/ppl");
    for &width in &[1usize, 2, 3] {
        let (query, vars) = restaurant_query(width);
        let compiled = PplQuery::compile_path(query.clone(), vars.clone()).unwrap();
        let (tp, a1) = time_median(RUNS, || compiled.answers(&doc).unwrap().len());
        let (tn, a2) = time_median(1, || {
            Engine::NaiveEnumeration
                .answer(&doc, &query, &vars)
                .unwrap()
                .len()
        });
        assert_eq!(a1, a2);
        println!(
            "{:>3} | {} | {} | {:>10.1}",
            width,
            fmt_us(tp),
            fmt_us(tn),
            ratio(tn, tp)
        );
    }
    println!("(expected: the naive column grows by roughly a factor |t| per added variable; the PPL column stays flat)");
}

/// E5 — Prop. 3: SAT reduction, exponential naive cost, PPL rejection.
fn e5_sat_hardness() {
    header("E5", "Prop. 3: variable sharing makes non-emptiness NP-hard (SAT reduction)");
    println!("{:>5} | {:>8} | {:>12} | {:>6} | {:>9}", "vars", "|t|", "naive (us)", "sat?", "rejected");
    for &vars in &[2usize, 3, 4] {
        let instance = random_3sat(vars, vars + 2, 41 + vars as u64);
        let tree = encode_sat_tree(&instance);
        let (query, _) = encode_sat_query(&instance);
        let doc = Document::from_tree(tree);
        let rejected = PplQuery::compile_path(query.clone(), vec![]).is_err();
        let (t, nonempty) = time_median(1, || {
            !Engine::NaiveEnumeration
                .answer(&doc, &query, &[])
                .unwrap()
                .is_empty()
        });
        assert_eq!(nonempty, instance.brute_force_satisfiable());
        println!(
            "{:>5} | {:>8} | {} | {:>6} | {:>9}",
            vars,
            doc.len(),
            fmt_us(t),
            nonempty,
            rejected
        );
    }
    println!("(expected: every query rejected by the PPL checker; naive time grows exponentially in the number of SAT variables)");
}

/// E6 — Prop. 7/8: Yannakakis on the ACQ image matches the HCL algorithm.
fn e6_acq_vs_hcl() {
    header("E6", "Prop. 7: Yannakakis (ACQ) vs the Fig. 8 HCL algorithm on union-free queries");
    println!("{:>8} | {:>8} | {:>12} | {:>12}", "|t|", "|A|", "hcl (us)", "yannakakis");
    let ppl = parse_path("descendant::book[child::author[. is $a]]/child::title[. is $t]").unwrap();
    let output = [Var::new("a"), Var::new("t")];
    let hcl = ppl_to_hcl(&ppl).unwrap();
    for &books in &[20usize, 40, 80] {
        let doc = Document::from_tree(bibliography(books, 3));
        let (th, a1) = time_median(RUNS, || {
            answer_hcl_pplbin(doc.tree(), &hcl, &output).unwrap().len()
        });
        let (ty, a2) = time_median(RUNS, || {
            let (cq, db) = hcl_to_acq(doc.tree(), &hcl, &output).unwrap();
            answer_acq(&cq, &db).unwrap().len()
        });
        assert_eq!(a1, a2);
        println!("{:>8} | {:>8} | {} | {}", doc.len(), a1, fmt_us(th), fmt_us(ty));
    }
    println!("(expected: same answers; both polynomial, with constant factors favouring either depending on |db| vs the matrix precompilation)");
}

/// E7 — Lemma 3: sharing normalisation is linear, naive distribution is not.
fn e7_sharing_normalisation() {
    header("E7", "Lemma 3: sharing-expression normalisation (linear) vs naive union distribution (exponential)");
    println!("{:>4} | {:>10} | {:>14} | {:>18}", "k", "|C|", "sharing |D|+|∆|", "distributed leaves");
    for &k in &[2usize, 4, 8, 16, 32] {
        let block = |i: usize| Hcl::Atom(format!("a{i}")).or(Hcl::Atom(format!("b{i}")));
        let mut expr = block(0);
        for i in 1..k {
            expr = expr.then(block(i));
        }
        let (interned, _) = intern_atoms(&expr);
        let eq = EquationSystem::from_hcl(&interned);
        // Distributing unions over the k-fold composition yields 2^k leaves.
        let distributed: u128 = 1u128 << k;
        println!(
            "{:>4} | {:>10} | {:>14} | {:>18}",
            k,
            expr.size(),
            eq.len(),
            distributed
        );
    }
    println!("(expected: the sharing column stays within a small constant of |C|, the distributed column doubles with every k)");
}

/// E8 — Prop. 5 / Fig. 7: linear-time translation preserving answers.
fn e8_fig7_translation() {
    header("E8", "Prop. 5: PPL → HCL⁻(PPLbin) translation is linear and preserves answers");
    println!("{:>8} | {:>8} | {:>12} | {:>10}", "|P|", "|HCL|", "time (us)", "answers ok");
    let doc = Document::from_tree(bibliography(10, 3));
    for &filters in &[2usize, 5, 10, 20, 40] {
        let mut src = String::from("descendant::book");
        for i in 0..filters {
            src.push_str(&format!("[child::author[. is $v{i}]]"));
        }
        let ppl = parse_path(&src).unwrap();
        let (t, hcl) = time_median(RUNS, || ppl_to_hcl(&ppl).unwrap());
        // Answer preservation is only checked for small widths (the naive
        // baseline is exponential in the width).
        let answers_ok = if filters <= 2 {
            let vars: Vec<Var> = (0..filters).map(|i| Var::new(&format!("v{i}"))).collect();
            let fast = answer_hcl_pplbin(doc.tree(), &hcl, &vars).unwrap();
            let slow = Engine::NaiveEnumeration.answer(&doc, &ppl, &vars).unwrap();
            fast.len() == slow.len()
        } else {
            true
        };
        println!(
            "{:>8} | {:>8} | {} | {:>10}",
            ppl.size(),
            hcl.size(),
            fmt_us(t),
            answers_ok
        );
    }
    println!("(expected: |HCL| within a small constant of |P|, translation time linear)");
}

/// E9 — Lemma 1 translation linearity + Core XPath 1.0 linear-time contrast.
fn e9_fo_translation_and_corexpath1() {
    header("E9", "Lemma 1: FO → Core XPath 2.0 is linear; Core XPath 1.0 set evaluation vs cubic matrices");
    println!("-- FO translation --");
    println!("{:>8} | {:>8} | {:>12}", "|φ|", "|⟦φ⟧|", "time (us)");
    for &conjuncts in &[8usize, 16, 32, 64] {
        let mut phi = Formula::label("l0", "x0");
        for i in 1..conjuncts {
            phi = phi.and(Formula::ch_star(&format!("x{}", i - 1), &format!("x{i}")));
        }
        let (t, xp) = time_median(RUNS, || fo_to_xpath(&phi));
        println!("{:>8} | {:>8} | {}", phi.size(), xp.size(), fmt_us(t));
    }

    println!("-- Core XPath 1.0 set-based vs PPLbin matrix (unary query from the root) --");
    println!("{:>8} | {:>14} | {:>14} | {:>8}", "|t|", "sets (us)", "matrix (us)", "ratio");
    let query = from_variable_free_path(
        &parse_path("child::book[child::author]/child::title").unwrap(),
    )
    .unwrap();
    for &books in &[50usize, 100, 200] {
        let doc = Document::from_tree(bibliography(books, 3));
        let (ts, a1) = time_median(RUNS, || unary_from_root(doc.tree(), &query).unwrap().len());
        let (tm, a2) = time_median(RUNS, || {
            answer_binary(doc.tree(), &query)
                .successors(doc.root())
                .count()
        });
        assert_eq!(a1, a2);
        println!(
            "{:>8} | {} | {} | {:>8.1}",
            doc.len(),
            fmt_us(ts),
            fmt_us(tm),
            ratio(tm, ts)
        );
    }
    println!("(expected: the set-based evaluator scales linearly and wins by a growing factor; `except` queries are outside its fragment and need the matrices)");
}
