//! The perf-regression sweep behind `experiments --bench` and the
//! `BENCH_*.json` trajectory files.
//!
//! One fixed workload — a suite of PPL queries over random trees of swept
//! sizes, repeated to model multi-query traffic against a shared document —
//! is answered by every engine:
//!
//! * `ppl_cached` — `Document::answer_batch`, compiling PPLbin matrices
//!   through the document's `MatrixStore` (steps and hash-consed subterms
//!   shared across queries and repeats);
//! * `ppl_cold`   — `PplQuery::answers_cold` per query, recompiling every
//!   matrix from scratch (the pre-cache behaviour);
//! * `naive`      — `Engine::NaiveEnumeration`, the exponential Fig. 2
//!   baseline (restricted to small trees, one workload pass);
//! * `acq`        — Yannakakis on the ACQ image (union-free queries only).
//!
//! The output is a single JSON document (see EXPERIMENTS.md for the schema)
//! with one row per (engine, tree size) cell and a `summary` comparing the
//! cached and cold medians at the largest swept size.  `--smoke` shrinks
//! every dimension so CI can validate the emitted file in milliseconds.

use crate::json::Json;
use crate::time_median;
use ppl_xpath::{Document, Engine, Planner, PplQuery, QueryPlan, Session};
use std::time::Duration;
use xpath_acq::{answer_acq, hcl_to_acq};
use xpath_ast::binexpr::from_variable_free_path;
use xpath_ast::{parse_path, BinExpr, Var};
use xpath_pplbin::{KernelMode, MatrixStore};
use xpath_tree::generate::{random_tree, TreeGenConfig, TreeShape};
use xpath_tree::Tree;

/// Schema identifier written into every emitted file.
pub const SCHEMA: &str = "ppl-xpath-bench/v1";

/// Keys every result row must carry (checked by [`validate_bench_json`]).
pub const ROW_KEYS: [&str; 6] = [
    "experiment",
    "engine",
    "tree_size",
    "workload_queries",
    "workload_repeats",
    "median_us",
];

/// Sweep dimensions.
#[derive(Debug, Clone)]
pub struct RegressConfig {
    /// Node counts of the swept trees.
    pub tree_sizes: Vec<usize>,
    /// How often the query suite is repeated per workload.
    pub repeats: usize,
    /// Timed runs per cell (the median is recorded).
    pub runs: usize,
    /// Largest tree the exponential naive baseline is run on.
    pub naive_max_size: usize,
}

impl RegressConfig {
    /// The full sweep used to produce `BENCH_*.json`.
    pub fn full() -> RegressConfig {
        RegressConfig {
            tree_sizes: vec![60, 120, 240, 480],
            repeats: 8,
            runs: 5,
            naive_max_size: 60,
        }
    }

    /// Tiny sizes for CI smoke validation.
    pub fn smoke() -> RegressConfig {
        RegressConfig {
            tree_sizes: vec![12, 24],
            repeats: 2,
            runs: 2,
            naive_max_size: 24,
        }
    }
}

/// Sweep dimensions of the E11 kernel ablation.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Node counts of the swept trees (larger than E10: no exponential
    /// baseline runs here).
    pub tree_sizes: Vec<usize>,
    /// Timed runs per (mode, size) cell; the median is recorded.
    pub runs: usize,
}

impl KernelConfig {
    /// The full ablation used to produce `BENCH_3.json` (≥ 960 nodes at the
    /// top as required by EXPERIMENTS.md E11).
    pub fn full() -> KernelConfig {
        KernelConfig {
            tree_sizes: vec![120, 240, 480, 960],
            runs: 7,
        }
    }

    /// Tiny sizes for CI smoke validation.
    pub fn smoke() -> KernelConfig {
        KernelConfig {
            tree_sizes: vec![16, 32],
            runs: 2,
        }
    }
}

/// The kernel modes swept by E11, with their row names.
pub const KERNEL_MODES: [(KernelMode, &str); 3] = [
    (KernelMode::Dense, "kernel_dense"),
    (KernelMode::Adaptive, "kernel_adaptive"),
    (KernelMode::AdaptiveThreaded, "kernel_adaptive_threaded"),
];

/// Sweep dimensions of the E12 planner/concurrency experiment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Tree size of the planner comparison (auto vs forced engines over the
    /// `planner_mix_suite`; the exponential naive engine is excluded, E4
    /// covers it).
    pub planner_tree_size: usize,
    /// Tree size of the concurrent-serving sweep.
    pub serve_tree_size: usize,
    /// Serving thread counts (ascending; the last is the headline).
    pub threads: Vec<usize>,
    /// Suite repeats per serving workload.
    pub repeats: usize,
    /// Timed runs per cell (median recorded).
    pub runs: usize,
}

impl ServeConfig {
    /// The full E12 sweep used to produce `BENCH_4.json`.
    pub fn full() -> ServeConfig {
        ServeConfig {
            planner_tree_size: 180,
            serve_tree_size: 480,
            threads: vec![1, 2, 4, 8],
            repeats: 8,
            runs: 5,
        }
    }

    /// Tiny sizes for CI smoke validation.
    pub fn smoke() -> ServeConfig {
        ServeConfig {
            planner_tree_size: 16,
            serve_tree_size: 24,
            threads: vec![1, 2],
            repeats: 2,
            runs: 2,
        }
    }
}

/// The planner modes swept by E12, with their row names (`None` = auto).
pub const PLANNER_MODES: [(Option<Engine>, &str); 4] = [
    (None, "planner_auto"),
    (Some(Engine::Ppl), "planner_ppl"),
    (Some(Engine::Acq), "planner_acq"),
    (Some(Engine::Hcl), "planner_hcl"),
];

/// Sweep dimensions of the E13 corpus-serving experiment.
#[derive(Debug, Clone)]
pub struct CorpusBenchConfig {
    /// Documents in the corpus (three size bands, see
    /// `xpath_workload::corpus_documents`).
    pub docs: usize,
    /// Base tree size; bands are `base`, `2·base`, `3·base`.
    pub base_size: usize,
    /// How often the E10 query suite is fanned out over the whole corpus
    /// per workload.
    pub repeats: usize,
    /// Timed runs per cell (median recorded).
    pub runs: usize,
    /// Fan-out worker threads of the corpus under test.
    pub threads: usize,
}

impl CorpusBenchConfig {
    /// The full sweep used to produce `BENCH_5.json`.
    pub fn full() -> CorpusBenchConfig {
        CorpusBenchConfig {
            docs: 6,
            base_size: 100,
            repeats: 6,
            runs: 5,
            threads: 4,
        }
    }

    /// Tiny sizes for CI smoke validation.
    pub fn smoke() -> CorpusBenchConfig {
        CorpusBenchConfig {
            docs: 3,
            base_size: 14,
            repeats: 2,
            runs: 2,
            threads: 2,
        }
    }
}

/// The corpus serving modes swept by E13, with their row names.  Budget
/// fractions are relative to the measured warm working set (`None` =
/// unbounded).
pub const CORPUS_MODES: [(Option<f64>, &str); 3] = [
    (None, "corpus_pool"),
    (Some(0.5), "corpus_budget_half"),
    (Some(0.25), "corpus_budget_quarter"),
];

/// Sweep dimensions of the E14 lazy large-document experiment.
#[derive(Debug, Clone)]
pub struct LazyBenchConfig {
    /// Node counts of the swept DBLP-style documents.  Every size is
    /// answered by the lazy pipeline; this is the band the eager kernels
    /// cannot reach.
    pub tree_sizes: Vec<usize>,
    /// Largest size the eager comparison (`kernel_adaptive_threaded`) is
    /// run at — the speedup pin lives here.
    pub eager_max_size: usize,
    /// Timed runs per (mode, size) cell; the median is recorded.
    pub runs: usize,
}

impl LazyBenchConfig {
    /// The full sweep used to produce `BENCH_6.json` (|t| ∈ {10k, 100k},
    /// two orders of magnitude past the BENCH_3 ablation top of 960).
    pub fn full() -> LazyBenchConfig {
        LazyBenchConfig {
            tree_sizes: vec![10_000, 100_000],
            eager_max_size: 10_000,
            runs: 5,
        }
    }

    /// CI smoke validation: the |t|=10k band only (release builds answer it
    /// in well under a second per run), fewer runs.
    pub fn smoke() -> LazyBenchConfig {
        LazyBenchConfig {
            tree_sizes: vec![10_000],
            eager_max_size: 10_000,
            runs: 2,
        }
    }
}

/// The kernel modes swept by E14, with their row names.  Lazy runs at every
/// size; the eager comparison stops at [`LazyBenchConfig::eager_max_size`].
pub const LAZY_MODES: [(KernelMode, &str); 2] = [
    (KernelMode::Lazy, "kernel_lazy"),
    (KernelMode::AdaptiveThreaded, "kernel_adaptive_threaded"),
];

/// Sweep dimensions of the E15 daemon-serving experiment (Linux only: the
/// epoll arm needs `pplxd --io epoll`).
#[derive(Debug, Clone)]
pub struct DaemonBenchConfig {
    /// Concurrent client connections per cell.
    pub connections: Vec<usize>,
    /// Pipelined requests per window: each client writes this many request
    /// lines in one flush before reading the window's responses.
    pub pipeline: usize,
    /// Target total requests per cell; each connection sends
    /// `max(pipeline, total_requests / connections)` requests.
    pub total_requests: usize,
    /// Timed runs per cell (median recorded).
    pub runs: usize,
    /// Worker threads of the daemon under test (both io modes).
    pub workers: usize,
}

impl DaemonBenchConfig {
    /// The full sweep used to produce `BENCH_7.json`: 1 / 64 / 1024
    /// concurrent pipelined connections per io mode.
    pub fn full() -> DaemonBenchConfig {
        DaemonBenchConfig {
            connections: vec![1, 64, 1024],
            pipeline: 32,
            total_requests: 16384,
            runs: 5,
            workers: 4,
        }
    }

    /// Tiny sizes for CI smoke validation.
    pub fn smoke() -> DaemonBenchConfig {
        DaemonBenchConfig {
            connections: vec![1, 8],
            pipeline: 8,
            total_requests: 512,
            runs: 2,
            workers: 2,
        }
    }
}

/// The io modes swept by E15, with their row names.
pub const DAEMON_MODES: [(&str, &str); 2] = [
    ("epoll", "daemon_epoll"),
    ("threads", "daemon_threads"),
];

/// Sweep dimensions of the E16 sharded-router experiment.
#[derive(Debug, Clone)]
pub struct RouterBenchConfig {
    /// Backend daemons behind the router.
    pub shards: usize,
    /// Copies of each document across the shards.
    pub replication: usize,
    /// Concurrent client connections driving the front door (router or
    /// single daemon — both phases use the same traffic).
    pub connections: usize,
    /// Pipelined requests per window in the throughput phases.
    pub pipeline: usize,
    /// Target total requests per phase.
    pub total_requests: usize,
    /// Timed runs per throughput phase (median recorded).
    pub runs: usize,
    /// Preloaded documents the QUERY traffic rotates over.
    pub docs: usize,
}

impl RouterBenchConfig {
    /// The full sweep used to produce `BENCH_8.json`: a 4-shard router
    /// versus one daemon under 64 pipelined connections.
    pub fn full() -> RouterBenchConfig {
        RouterBenchConfig {
            shards: 4,
            replication: 2,
            connections: 64,
            pipeline: 16,
            total_requests: 16384,
            runs: 3,
            docs: 16,
        }
    }

    /// Tiny sizes for CI smoke validation.
    pub fn smoke() -> RouterBenchConfig {
        RouterBenchConfig {
            shards: 2,
            replication: 2,
            connections: 4,
            pipeline: 4,
            total_requests: 512,
            runs: 2,
            docs: 4,
        }
    }
}

/// The arms of the E16 sweep, as row names: the router fleet, the
/// single-daemon baseline, and the mid-bench shard-kill phase.
pub const ROUTER_MODES: [&str; 3] = ["router", "single_daemon", "router_kill"];

/// Sweep dimensions of the E17 incremental-maintenance experiment.
#[derive(Debug, Clone)]
pub struct IncrBenchConfig {
    /// Node counts of the swept DBLP-style documents.  The first entry is
    /// the pin size the summary speedup is computed at.
    pub tree_sizes: Vec<usize>,
    /// Sizes at or above this compile with the lazy kernels (the eager
    /// adaptive kernels stop being viable for full recompiles there, see
    /// E14); smaller sizes use `KernelMode::AdaptiveThreaded`.
    pub lazy_min_size: usize,
    /// Timed runs per (arm, size) cell; the median is recorded.
    pub runs: usize,
}

impl IncrBenchConfig {
    /// The full sweep used to produce `BENCH_9.json`: |t| ∈ {10k, 100k},
    /// the two bands E14 established for the eager and lazy kernels.
    pub fn full() -> IncrBenchConfig {
        IncrBenchConfig {
            tree_sizes: vec![10_000, 100_000],
            lazy_min_size: 100_000,
            runs: 5,
        }
    }

    /// CI smoke validation: the pin size only, fewer runs (like E14's
    /// smoke, the 10k documents are sized for the release-built harness).
    pub fn smoke() -> IncrBenchConfig {
        IncrBenchConfig {
            tree_sizes: vec![10_000],
            lazy_min_size: 100_000,
            runs: 2,
        }
    }
}

/// The arms of the E17 sweep, as row names: matrices carried through the
/// edit vs a from-scratch session per edit.
pub const INCR_MODES: [&str; 2] = ["edit_incremental", "edit_full"];

/// The filter bodies of the E10 suite: variable-free compositions of
/// `except`-complemented relations.  Each complement is *dense* (≈`|t|²`
/// pairs), so the `/` between them is a genuinely cubic `|t|³/64` Boolean
/// product — the cost profile Theorem 1 attributes to PPLbin compilation.
/// Wrapped in `not(…)` they evaluate to partial identities (≤`|t|` pairs),
/// so answering stays cheap and compilation dominates a cold run.
const DENSE_FILTERS: [&str; 3] = [
    "(descendant::* except child::l0)/(descendant::* except child::l1)\
     /(descendant::* except child::l2)/(ancestor::* except child::l1)",
    "(descendant::* except child::l0)/(descendant::* except child::l1)\
     /(ancestor::* except child::l0)/(descendant::* except child::l2)",
    "(descendant::* except child::l2)/(ancestor::* except child::l1)\
     /(descendant::* except child::l0)/(ancestor::* except child::l2)",
];

/// The fixed query suite: PPL queries over the `l0…l2` generator alphabet.
///
/// The workload models the traffic the cache is built for: each query
/// carries one or two `DENSE_FILTERS` (compile-heavy, answer-light —
/// Fig. 4 collapses maximal variable-free subexpressions into single PPLbin
/// atoms), the filters repeat across queries on purpose so the hash-consing
/// layer has shared subterms to merge, arities are mixed, and the last
/// query exercises an HCL-level union (both branches bind `$x`).
pub fn suite() -> Vec<PplQuery> {
    let [f1, f2, f3] = DENSE_FILTERS;
    let specs: [(String, &[&str]); 6] = [
        (format!("descendant::l0[not({f1})][. is $x]"), &["x"]),
        (
            format!("descendant::l1[not({f1})][not({f2})][. is $x]"),
            &["x"],
        ),
        (format!("descendant::l2[not({f2})][. is $x]"), &["x"]),
        (
            format!("descendant::l0[not({f3})][child::l1[. is $x] and child::l2[. is $y]]"),
            &["x", "y"],
        ),
        (
            format!("descendant::l0[. is $x]/child::l1[not({f2})][. is $y]"),
            &["x", "y"],
        ),
        (
            format!(
                "descendant::l0[not({f1})][. is $x] union descendant::l1[not({f3})][. is $x]"
            ),
            &["x"],
        ),
    ];
    specs
        .iter()
        .map(|(src, vars)| {
            PplQuery::compile(src, vars)
                .unwrap_or_else(|e| panic!("suite query {src:?} failed to compile: {e}"))
        })
        .collect()
}

/// The axis-heavy E11 suite: variable-free PPLbin compositions dominated by
/// raw axis steps, the shapes the adaptive representations are built for —
/// `child`/`parent`/sibling chains (CSR gathers), `descendant` compositions
/// (interval merges), and mixed sparse×interval products.  No `except`:
/// complements are dense under every kernel and would only dilute the
/// ablation signal (E10 keeps covering them).
const AXIS_SUITE: [&str; 10] = [
    "child::*/child::*/child::*",
    "parent::*/parent::*",
    "descendant::*/child::l0",
    "child::l0/descendant::*",
    "descendant::*/descendant::*",
    "descendant::l1/ancestor::*",
    "following_sibling::*/child::l1",
    "descendant::*[child::l0]",
    "(child::l0 union child::l1)/descendant::l2",
    "ancestor::*/following_sibling::*",
];

/// Parse the E11 suite into PPLbin expressions.
pub fn axis_suite() -> Vec<BinExpr> {
    AXIS_SUITE
        .iter()
        .map(|src| {
            from_variable_free_path(&parse_path(src).expect("suite query parses"))
                .expect("suite query is variable-free")
        })
        .collect()
}

/// Run the E11 kernel ablation: the axis-heavy suite compiled cold through
/// a [`MatrixStore`] per timed run, once per kernel mode and tree size.
/// Returns the result rows plus `(largest_size, dense_us, adaptive_us,
/// threaded_us)` for the summary.
fn run_kernel_ablation(cfg: &KernelConfig) -> (Vec<Json>, (usize, f64, f64, f64)) {
    let suite = axis_suite();
    let mut rows: Vec<Json> = Vec::new();
    let mut summary = None;
    for &size in &cfg.tree_sizes {
        let tree = sweep_tree(size);
        let mut mode_us = [0.0f64; KERNEL_MODES.len()];
        let mut reference_pairs: Option<usize> = None;
        for (i, &(mode, name)) in KERNEL_MODES.iter().enumerate() {
            let (t, pairs) = time_median(cfg.runs, || {
                let mut store = MatrixStore::with_mode(tree.len(), mode);
                suite
                    .iter()
                    .map(|b| store.eval_relation(&tree, b).count_pairs())
                    .sum::<usize>()
            });
            match reference_pairs {
                None => reference_pairs = Some(pairs),
                Some(p) => assert_eq!(
                    p, pairs,
                    "kernel mode {name} disagrees with dense at |t|={size}"
                ),
            }
            mode_us[i] = us(t);
            // Kernel dispatch counters, measured outside the timer.
            let mut store = MatrixStore::with_mode(tree.len(), mode);
            for b in &suite {
                store.eval_relation(&tree, b);
            }
            let k = store.kernel_stats();
            rows.push(Json::Obj(vec![
                ("experiment".to_string(), Json::Str("kernel_ablation".into())),
                ("engine".to_string(), Json::Str(name.into())),
                ("tree_size".to_string(), Json::Num(size as f64)),
                ("workload_queries".to_string(), Json::Num(suite.len() as f64)),
                ("workload_repeats".to_string(), Json::Num(1.0)),
                ("median_us".to_string(), Json::Num(us(t))),
                ("answers".to_string(), Json::Num(pairs as f64)),
                (
                    "kernel_steps_structured".to_string(),
                    Json::Num((k.step_identity + k.step_interval + k.step_sparse) as f64),
                ),
                ("kernel_steps_dense".to_string(), Json::Num(k.step_dense as f64)),
                (
                    "kernel_products_structured".to_string(),
                    Json::Num((k.product_trivial + k.product_interval + k.product_sparse) as f64),
                ),
                ("kernel_products_dense".to_string(), Json::Num(k.product_dense as f64)),
                (
                    "kernel_products_threaded".to_string(),
                    Json::Num(k.product_dense_threaded as f64),
                ),
            ]));
        }
        summary = Some((size, mode_us[0], mode_us[1], mode_us[2]));
    }
    (rows, summary.expect("at least one tree size"))
}

/// Prepare the E12 planner suite against a session, with an optional forced
/// engine.
fn planner_suite_plans(session: &Session, engine: Option<Engine>) -> Vec<QueryPlan> {
    let planner = Planner::default();
    xpath_workload::planner_mix_suite()
        .iter()
        .map(|(src, vars)| {
            let path = parse_path(src).expect("suite query parses");
            let output: Vec<Var> = vars.iter().map(|n| Var::new(n)).collect();
            planner
                .plan_with(session, path, output, engine)
                .expect("suite query plans")
        })
        .collect()
}

/// The old serving architecture, modelled faithfully: `workers` threads,
/// each owning a *private* session (thread-local cache, as the `!Sync`
/// `RefCell` store forced), the workload split into contiguous chunks —
/// each worker serves the whole query mix, so each private cache compiles
/// every distinct matrix itself.  Returns the total answer count.
fn serve_isolated(tree: &Tree, plans: &[QueryPlan], workers: usize) -> usize {
    let chunk = plans.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .chunks(chunk.max(1))
            .map(|chunk| {
                scope.spawn(move || {
                    let session = Session::from_tree(tree.clone());
                    chunk
                        .iter()
                        .map(|p| session.execute(p).expect("suite plan answers").len())
                        .sum::<usize>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).sum()
    })
}

/// Run the E12 planner/concurrency sweep.  Returns the result rows plus the
/// summary members to merge into the document summary.
fn run_planner_concurrency(cfg: &ServeConfig) -> (Vec<Json>, Vec<(String, Json)>) {
    let mut rows: Vec<Json> = Vec::new();

    // -- planner comparison: auto vs forced engines, cold per run ----------
    let planner_tree = sweep_tree(cfg.planner_tree_size);
    let plan_session = Session::from_tree(planner_tree.clone());
    let suite_len = xpath_workload::planner_mix_suite().len();
    let mut reference_answers: Option<usize> = None;
    let mut auto_us = 0.0f64;
    let mut auto_choices = String::new();
    for (engine, name) in PLANNER_MODES {
        let plans = planner_suite_plans(&plan_session, engine);
        let (t, answers) = time_median(cfg.runs, || {
            let fresh = Session::from_tree(planner_tree.clone());
            plans
                .iter()
                .map(|p| fresh.execute(p).expect("suite plan answers").len())
                .sum::<usize>()
        });
        match reference_answers {
            None => reference_answers = Some(answers),
            Some(r) => assert_eq!(r, answers, "{name} disagrees on the E12 planner suite"),
        }
        let mut extra = Vec::new();
        if engine.is_none() {
            auto_us = us(t);
            let mut counts: Vec<(String, usize)> = Vec::new();
            for p in &plans {
                let key = p.engine().name().to_string();
                match counts.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((key, 1)),
                }
            }
            auto_choices = counts
                .iter()
                .map(|(k, n)| format!("{k}:{n}"))
                .collect::<Vec<_>>()
                .join(",");
            extra.push(("chosen_engines".to_string(), Json::Str(auto_choices.clone())));
        }
        rows.push({
            let mut members = vec![
                ("experiment".to_string(), Json::Str("planner".into())),
                ("engine".to_string(), Json::Str(name.into())),
                ("tree_size".to_string(), Json::Num(cfg.planner_tree_size as f64)),
                ("workload_queries".to_string(), Json::Num(suite_len as f64)),
                ("workload_repeats".to_string(), Json::Num(1.0)),
                ("median_us".to_string(), Json::Num(us(t))),
                ("answers".to_string(), Json::Num(answers as f64)),
            ];
            members.extend(extra);
            Json::Obj(members)
        });
    }

    // -- concurrent serving: one shared session vs isolated workers --------
    // The workload is the compile-heavy E10 suite repeated `repeats` times,
    // prepared once as forced-ppl plans: the serving comparison isolates the
    // store architecture, not the engine choice.
    let serve_tree = sweep_tree(cfg.serve_tree_size);
    let serve_session = Session::from_tree(serve_tree.clone());
    let planner = Planner::default();
    let workload: Vec<QueryPlan> = (0..cfg.repeats)
        .flat_map(|_| suite())
        .map(|q| {
            planner
                .plan_with(
                    &serve_session,
                    q.source().clone(),
                    q.output().to_vec(),
                    Some(Engine::Ppl),
                )
                .expect("suite query plans")
        })
        .collect();

    let mut serve_reference: Option<usize> = None;
    let mut shared_by_threads: Vec<(usize, f64)> = Vec::new();
    let mut isolated_by_threads: Vec<(usize, f64)> = Vec::new();
    for &threads in &cfg.threads {
        let (shared_t, shared_answers) = time_median(cfg.runs, || {
            let fresh = Session::from_tree(serve_tree.clone());
            fresh
                .answer_batch_parallel(&workload, threads)
                .expect("workload answers")
                .iter()
                .map(|a| a.len())
                .sum::<usize>()
        });
        let (iso_t, iso_answers) =
            time_median(cfg.runs, || serve_isolated(&serve_tree, &workload, threads));
        assert_eq!(shared_answers, iso_answers, "serving architectures disagree");
        match serve_reference {
            None => serve_reference = Some(shared_answers),
            Some(r) => assert_eq!(r, shared_answers, "thread counts disagree"),
        }
        for (name, t, answers) in [
            ("serve_shared", shared_t, shared_answers),
            ("serve_isolated", iso_t, iso_answers),
        ] {
            rows.push(Json::Obj(vec![
                ("experiment".to_string(), Json::Str("concurrent_serving".into())),
                ("engine".to_string(), Json::Str(name.into())),
                ("tree_size".to_string(), Json::Num(cfg.serve_tree_size as f64)),
                ("workload_queries".to_string(), Json::Num(suite().len() as f64)),
                ("workload_repeats".to_string(), Json::Num(cfg.repeats as f64)),
                ("threads".to_string(), Json::Num(threads as f64)),
                ("median_us".to_string(), Json::Num(us(t))),
                ("answers".to_string(), Json::Num(answers as f64)),
            ]));
        }
        shared_by_threads.push((threads, us(shared_t)));
        isolated_by_threads.push((threads, us(iso_t)));
    }

    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let (t1, shared_t1) = shared_by_threads[0];
    assert_eq!(t1, 1, "the first swept thread count must be 1");
    let &(tmax, shared_tmax) = shared_by_threads.last().expect("threads non-empty");
    let &(_, isolated_tmax) = isolated_by_threads.last().expect("threads non-empty");
    let summary = vec![
        ("planner_tree_size".to_string(), Json::Num(cfg.planner_tree_size as f64)),
        ("planner_auto_us".to_string(), Json::Num(auto_us)),
        ("planner_auto_choices".to_string(), Json::Str(auto_choices)),
        ("serve_tree_size".to_string(), Json::Num(cfg.serve_tree_size as f64)),
        ("serve_max_threads".to_string(), Json::Num(tmax as f64)),
        ("serve_shared_t1_us".to_string(), Json::Num(shared_t1)),
        ("serve_shared_tmax_us".to_string(), Json::Num(shared_tmax)),
        ("serve_isolated_tmax_us".to_string(), Json::Num(isolated_tmax)),
        // The headline: under tmax-thread load, one shared Session vs the
        // pre-Session architecture (tmax isolated single-threaded workers,
        // each recompiling its own matrices).
        (
            "shared_vs_isolated_speedup".to_string(),
            Json::Num(round2(isolated_tmax / shared_tmax.max(0.1))),
        ),
        // Wall-clock thread scaling of the shared path itself (≈1.0 on a
        // single hardware thread; >1 with real cores).
        (
            "thread_scaling".to_string(),
            Json::Num(round2(shared_t1 / shared_tmax.max(0.1))),
        ),
    ];
    (rows, summary)
}

fn sweep_tree(size: usize) -> Tree {
    random_tree(&TreeGenConfig {
        size,
        shape: TreeShape::BoundedBranching { max_children: 4 },
        alphabet: 3,
        seed: 0xBE7C_0000 + size as u64,
    })
}

fn us(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6 * 10.0).round() / 10.0
}

fn row(
    engine: &str,
    tree_size: usize,
    queries: usize,
    repeats: usize,
    median: Duration,
    answers: usize,
    extra: Vec<(String, Json)>,
) -> Json {
    let mut members = vec![
        ("experiment".to_string(), Json::Str("repeated_query_workload".into())),
        ("engine".to_string(), Json::Str(engine.into())),
        ("tree_size".to_string(), Json::Num(tree_size as f64)),
        ("workload_queries".to_string(), Json::Num(queries as f64)),
        ("workload_repeats".to_string(), Json::Num(repeats as f64)),
        ("median_us".to_string(), Json::Num(us(median))),
        ("answers".to_string(), Json::Num(answers as f64)),
    ];
    members.extend(extra);
    Json::Obj(members)
}

/// Run the E10 sweep and return the JSON document to be written to
/// `BENCH_*.json`.
pub fn run_regression(cfg: &RegressConfig) -> Json {
    run_regression_impl(cfg, None, None)
}

/// Run the E10 sweep *and* the E11 kernel ablation in one document (the
/// shape committed as `BENCH_3.json`).
pub fn run_regression_with_kernels(cfg: &RegressConfig, kernels: &KernelConfig) -> Json {
    run_regression_impl(cfg, Some(kernels), None)
}

/// Run the E10 sweep, the E11 kernel ablation *and* the E12
/// planner/concurrency sweep in one document (the shape committed as
/// `BENCH_4.json`).
pub fn run_regression_full(
    cfg: &RegressConfig,
    kernels: &KernelConfig,
    serve: &ServeConfig,
) -> Json {
    run_regression_impl(cfg, Some(kernels), Some(serve))
}

fn run_regression_impl(
    cfg: &RegressConfig,
    kernels: Option<&KernelConfig>,
    serve: Option<&ServeConfig>,
) -> Json {
    let suite = suite();
    let union_free: Vec<&PplQuery> = suite
        .iter()
        .filter(|q| q.hcl().is_union_free())
        .collect();
    let mut results: Vec<Json> = Vec::new();
    let mut summary: Option<(usize, f64, f64)> = None;

    for &size in &cfg.tree_sizes {
        let tree = sweep_tree(size);

        // Workload: the suite repeated `repeats` times against one document.
        let workload: Vec<PplQuery> = (0..cfg.repeats)
            .flat_map(|_| suite.iter().cloned())
            .collect();

        // ppl_cached — answer_batch over a fresh document each run, so each
        // timed run pays exactly one compilation of each distinct subterm.
        let (cached_t, cached_answers) = time_median(cfg.runs, || {
            let doc = Document::from_tree(tree.clone());
            let answers = doc.answer_batch(&workload).expect("suite queries answer");
            answers.iter().map(|a| a.len()).sum::<usize>()
        });
        // Cache counters for the same workload, measured outside the timer.
        let stats_doc = Document::from_tree(tree.clone());
        stats_doc.answer_batch(&workload).expect("suite queries answer");
        let stats = stats_doc.cache_stats();
        results.push(row(
            "ppl_cached",
            size,
            suite.len(),
            cfg.repeats,
            cached_t,
            cached_answers,
            vec![
                ("cache_hits".to_string(), Json::Num(stats.hits as f64)),
                ("cache_misses".to_string(), Json::Num(stats.misses as f64)),
            ],
        ));

        // ppl_cold — per-query recompilation, same workload.
        let (cold_t, cold_answers) = time_median(cfg.runs, || {
            let doc = Document::from_tree(tree.clone());
            workload
                .iter()
                .map(|q| q.answers_cold(&doc).expect("suite queries answer").len())
                .sum::<usize>()
        });
        assert_eq!(
            cached_answers, cold_answers,
            "cached and cold engines disagree at |t|={size}"
        );
        results.push(row(
            "ppl_cold",
            size,
            suite.len(),
            cfg.repeats,
            cold_t,
            cold_answers,
            vec![],
        ));
        summary = Some((size, us(cold_t), us(cached_t)));

        // acq — Yannakakis over the ACQ image, union-free queries only,
        // recompiled per call like the cold engine.
        let (acq_t, acq_answers) = time_median(cfg.runs, || {
            (0..cfg.repeats)
                .flat_map(|_| union_free.iter())
                .map(|q| {
                    let (cq, db) =
                        hcl_to_acq(&tree, q.hcl(), q.output()).expect("union-free image");
                    answer_acq(&cq, &db).expect("acyclic query answers").len()
                })
                .sum::<usize>()
        });
        results.push(row(
            "acq",
            size,
            union_free.len(),
            cfg.repeats,
            acq_t,
            acq_answers,
            vec![],
        ));

        // naive — exponential baseline, one workload pass, small trees only.
        if size <= cfg.naive_max_size {
            let doc = Document::from_tree(tree.clone());
            let (naive_t, naive_answers) = time_median(1, || {
                suite
                    .iter()
                    .map(|q| {
                        Engine::NaiveEnumeration
                            .answer(&doc, q.source(), q.output())
                            .expect("naive answers suite queries")
                            .len()
                    })
                    .sum::<usize>()
            });
            assert_eq!(
                naive_answers * cfg.repeats,
                cold_answers,
                "naive engine disagrees at |t|={size}"
            );
            results.push(row("naive", size, suite.len(), 1, naive_t, naive_answers, vec![]));
        }
    }

    let (largest, cold_us, cached_us) = summary.expect("at least one tree size");
    let mut summary_members = vec![
        ("largest_tree_size".to_string(), Json::Num(largest as f64)),
        ("cold_median_us".to_string(), Json::Num(cold_us)),
        ("cached_median_us".to_string(), Json::Num(cached_us)),
        (
            "cached_speedup".to_string(),
            Json::Num(((cold_us / cached_us.max(0.1)) * 100.0).round() / 100.0),
        ),
    ];
    if let Some(kcfg) = kernels {
        let (kernel_rows, (ksize, dense_us, adaptive_us, threaded_us)) =
            run_kernel_ablation(kcfg);
        results.extend(kernel_rows);
        let round2 = |x: f64| (x * 100.0).round() / 100.0;
        summary_members.extend([
            ("kernel_largest_tree_size".to_string(), Json::Num(ksize as f64)),
            ("kernel_dense_median_us".to_string(), Json::Num(dense_us)),
            ("kernel_adaptive_median_us".to_string(), Json::Num(adaptive_us)),
            (
                "kernel_adaptive_threaded_median_us".to_string(),
                Json::Num(threaded_us),
            ),
            (
                "adaptive_speedup".to_string(),
                Json::Num(round2(dense_us / adaptive_us.max(0.1))),
            ),
            (
                "adaptive_threaded_speedup".to_string(),
                Json::Num(round2(dense_us / threaded_us.max(0.1))),
            ),
        ]);
    }
    if let Some(scfg) = serve {
        let (serve_rows, serve_summary) = run_planner_concurrency(scfg);
        results.extend(serve_rows);
        summary_members.extend(serve_summary);
    }
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(SCHEMA.into())),
        ("experiment_doc".to_string(), Json::Str("EXPERIMENTS.md".into())),
        (
            "tree_sizes".to_string(),
            Json::Arr(cfg.tree_sizes.iter().map(|&s| Json::Num(s as f64)).collect()),
        ),
        ("suite_queries".to_string(), Json::Num(suite.len() as f64)),
        ("workload_repeats".to_string(), Json::Num(cfg.repeats as f64)),
        ("runs_per_cell".to_string(), Json::Num(cfg.runs as f64)),
        ("results".to_string(), Json::Arr(results)),
        ("summary".to_string(), Json::Obj(summary_members)),
    ])
}

/// Run the E13 corpus-serving sweep: the E10 compile-heavy suite fanned out
/// over a multi-document corpus, served by (a) a warm unbounded session
/// pool, (b) memory-budgeted pools at half and a quarter of the measured
/// working set (eviction-thrashing), and (c) the per-request cold-rebuild
/// architecture a corpus layer replaces (fresh `Session` per document per
/// request).  Returns a standalone `BENCH_5.json`-shaped document.
pub fn run_corpus_bench(cfg: &CorpusBenchConfig) -> Json {
    use xpath_corpus::{Corpus, CorpusConfig};

    let documents = xpath_workload::corpus_documents(cfg.docs, cfg.base_size, 0xC0B5);
    let total_nodes: usize = documents.iter().map(|(_, t)| t.len()).sum();
    let suite = suite();
    let specs: Vec<(String, Vec<String>)> = suite
        .iter()
        .map(|q| {
            (
                q.source().to_string(),
                q.output().iter().map(|v| v.name().to_string()).collect(),
            )
        })
        .collect();

    let make_corpus = |budget: Option<usize>| {
        let corpus = Corpus::with_config(CorpusConfig {
            memory_budget: budget,
            threads: cfg.threads,
            queue_capacity: cfg.threads.max(1) * 2,
            // Forced ppl on both sides: the comparison isolates the session
            // pool against per-request rebuilds, not the engine choice.
            engine: Some(Engine::Ppl),
            ..CorpusConfig::default()
        });
        for (name, tree) in &documents {
            corpus.insert_tree(name, tree.clone());
        }
        corpus
    };
    let run_workload = |corpus: &Corpus| -> usize {
        let mut answers = 0usize;
        for _ in 0..cfg.repeats {
            for (source, vars) in &specs {
                let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
                for doc in corpus
                    .answer_all(source, &var_refs)
                    .expect("suite queries answer over the corpus")
                {
                    answers += doc.answers.len();
                }
            }
        }
        answers
    };

    // Measure the warm working set once: it anchors the budget fractions.
    let warm = make_corpus(None);
    let reference_answers = run_workload(&warm);
    let working_set = warm.stats().pool_bytes.max(1);

    let corpus_row = |engine: &str, t: Duration, answers: usize, stats: xpath_corpus::CorpusStats| {
        Json::Obj(vec![
            ("experiment".to_string(), Json::Str("corpus_serving".into())),
            ("engine".to_string(), Json::Str(engine.into())),
            ("tree_size".to_string(), Json::Num(total_nodes as f64)),
            ("docs".to_string(), Json::Num(cfg.docs as f64)),
            ("workload_queries".to_string(), Json::Num(specs.len() as f64)),
            ("workload_repeats".to_string(), Json::Num(cfg.repeats as f64)),
            ("threads".to_string(), Json::Num(cfg.threads as f64)),
            ("median_us".to_string(), Json::Num(us(t))),
            ("answers".to_string(), Json::Num(answers as f64)),
            ("pool_bytes".to_string(), Json::Num(stats.pool_bytes as f64)),
            ("cache_evictions".to_string(), Json::Num(stats.cache_evictions as f64)),
            (
                "session_evictions".to_string(),
                Json::Num(stats.session_evictions as f64),
            ),
            ("rebuilds".to_string(), Json::Num(stats.rebuilds as f64)),
            ("plan_hits".to_string(), Json::Num(stats.plan_hits as f64)),
        ])
    };

    let mut rows: Vec<Json> = Vec::new();
    let mut pool_us = 0.0f64;
    let mut budget_summary: Vec<(String, Json)> = Vec::new();
    for (fraction, name) in CORPUS_MODES {
        let budget = fraction.map(|f| ((working_set as f64 * f) as usize).max(1));
        let (t, answers) = time_median(cfg.runs, || {
            let corpus = make_corpus(budget);
            run_workload(&corpus)
        });
        assert_eq!(
            answers, reference_answers,
            "{name} disagrees with the unbounded pool"
        );
        // Pool counters for the same workload, measured outside the timer.
        let stats_corpus = make_corpus(budget);
        run_workload(&stats_corpus);
        let stats = stats_corpus.stats();
        if let Some(budget) = budget {
            assert!(
                stats.cache_evictions + stats.session_evictions > 0,
                "{name}: a budget of {budget} bytes under a {working_set}-byte working set must evict"
            );
        }
        rows.push(corpus_row(name, t, answers, stats));
        if fraction.is_none() {
            pool_us = us(t);
        } else {
            budget_summary.push((format!("{name}_us"), Json::Num(us(t))));
            budget_summary.push((
                format!("{name}_evictions"),
                Json::Num((stats.cache_evictions + stats.session_evictions) as f64),
            ));
        }
    }

    // The pre-corpus architecture: every request builds a fresh session —
    // plan + full matrix compilation per (document, query, repeat).
    let parsed: Vec<(xpath_ast::PathExpr, Vec<Var>)> = suite
        .iter()
        .map(|q| (q.source().clone(), q.output().to_vec()))
        .collect();
    let (cold_t, cold_answers) = time_median(cfg.runs, || {
        let planner = Planner::default();
        let mut answers = 0usize;
        for _ in 0..cfg.repeats {
            for (path, output) in &parsed {
                for (_, tree) in &documents {
                    let session = Session::from_tree(tree.clone());
                    let plan = planner
                        .plan_with(&session, path.clone(), output.clone(), Some(Engine::Ppl))
                        .expect("suite queries plan");
                    answers += session.execute(&plan).expect("suite queries answer").len();
                }
            }
        }
        answers
    });
    assert_eq!(
        cold_answers, reference_answers,
        "cold rebuild disagrees with the corpus pool"
    );
    rows.push(corpus_row(
        "cold_rebuild",
        cold_t,
        cold_answers,
        xpath_corpus::CorpusStats::default(),
    ));

    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let mut summary = vec![
        ("corpus_docs".to_string(), Json::Num(cfg.docs as f64)),
        ("corpus_total_nodes".to_string(), Json::Num(total_nodes as f64)),
        (
            "corpus_working_set_bytes".to_string(),
            Json::Num(working_set as f64),
        ),
        ("corpus_pool_us".to_string(), Json::Num(pool_us)),
        ("corpus_cold_us".to_string(), Json::Num(us(cold_t))),
        // The headline, pinned in CI: pooled sessions vs per-request
        // rebuild on the same workload and engine.
        (
            "corpus_speedup".to_string(),
            Json::Num(round2(us(cold_t) / pool_us.max(0.1))),
        ),
    ];
    summary.extend(budget_summary);

    Json::Obj(vec![
        ("schema".to_string(), Json::Str(SCHEMA.into())),
        ("experiment_doc".to_string(), Json::Str("EXPERIMENTS.md".into())),
        ("corpus_docs".to_string(), Json::Num(cfg.docs as f64)),
        ("suite_queries".to_string(), Json::Num(specs.len() as f64)),
        ("workload_repeats".to_string(), Json::Num(cfg.repeats as f64)),
        ("runs_per_cell".to_string(), Json::Num(cfg.runs as f64)),
        ("results".to_string(), Json::Arr(rows)),
        ("summary".to_string(), Json::Obj(summary)),
    ])
}

/// Run the E14 lazy large-document sweep: the DBLP-style suite over
/// `xpath_tree::generate::dblp` documents at sizes far past the eager
/// kernels' |t|≈960 band.  The lazy pipeline (symbolic relation algebra +
/// per-row densification) answers every size; the eager adaptive-threaded
/// kernels answer up to [`LazyBenchConfig::eager_max_size`] as the speedup
/// baseline.  Returns a standalone `BENCH_6.json`-shaped document whose
/// summary carries the two CI-pinned claims: `lazy_speedup` (eager/lazy at
/// the pin size) and `lazy_bytes_per_node` (store occupancy ceiling).
pub fn run_lazy_bench(cfg: &LazyBenchConfig) -> Json {
    let specs = xpath_workload::dblp_suite();
    let planner = Planner::default();
    let round2 = |x: f64| (x * 100.0).round() / 100.0;

    let mut rows: Vec<Json> = Vec::new();
    // (size, lazy_us, eager_us) at the pin size; (size, bytes/node) maxima.
    let mut pin: Option<(usize, f64, f64)> = None;
    let mut largest_lazy: Option<(usize, f64)> = None;
    let mut worst_bytes_per_node = 0.0f64;

    for &size in &cfg.tree_sizes {
        let tree = xpath_tree::generate::dblp(size, 0xE14);
        assert_eq!(tree.len(), size, "dblp generator missed the target size");

        // Plans are engine + HCL only — independent of the kernel mode the
        // executing session compiles with — so prepare them once per size.
        let plan_session = Session::from_tree(tree.clone());
        let plans: Vec<QueryPlan> = specs
            .iter()
            .map(|(src, vars)| {
                let path = parse_path(src).expect("dblp suite query parses");
                let output: Vec<Var> = vars.iter().map(|n| Var::new(n)).collect();
                planner
                    .plan_with(&plan_session, path, output, Some(Engine::Ppl))
                    .expect("dblp suite query plans")
            })
            .collect();

        let mut reference: Option<usize> = None;
        let mut size_us = [None::<f64>; LAZY_MODES.len()];
        for (i, &(mode, name)) in LAZY_MODES.iter().enumerate() {
            if mode != KernelMode::Lazy && size > cfg.eager_max_size {
                continue; // eager kernels stop at the pin size by design
            }
            let (t, answers) = time_median(cfg.runs, || {
                let session = Session::from_tree(tree.clone());
                session.set_kernel_mode(mode);
                plans
                    .iter()
                    .map(|p| session.execute(p).expect("dblp suite answers").len())
                    .sum::<usize>()
            });
            match reference {
                None => reference = Some(answers),
                Some(r) => assert_eq!(
                    r, answers,
                    "{name} disagrees with the lazy pipeline at |t|={size}"
                ),
            }
            assert!(answers > 0, "dblp suite selected nothing at |t|={size}");
            size_us[i] = Some(us(t));

            // Store occupancy after the full workload, measured outside the
            // timer: this is the honest `approx_bytes` the lazy layer is
            // accountable to (symbolic forms + materialised rows).
            let session = Session::from_tree(tree.clone());
            session.set_kernel_mode(mode);
            for p in &plans {
                session.execute(p).expect("dblp suite answers");
            }
            let bytes = session.store().approx_bytes();
            let bytes_per_node = bytes as f64 / size as f64;
            if mode == KernelMode::Lazy {
                worst_bytes_per_node = worst_bytes_per_node.max(bytes_per_node);
                largest_lazy = Some((size, us(t)));
            }
            rows.push(Json::Obj(vec![
                ("experiment".to_string(), Json::Str("lazy_large_documents".into())),
                ("engine".to_string(), Json::Str(name.into())),
                ("tree_size".to_string(), Json::Num(size as f64)),
                ("workload_queries".to_string(), Json::Num(specs.len() as f64)),
                ("workload_repeats".to_string(), Json::Num(1.0)),
                ("median_us".to_string(), Json::Num(us(t))),
                ("answers".to_string(), Json::Num(answers as f64)),
                ("store_bytes".to_string(), Json::Num(bytes as f64)),
                (
                    "bytes_per_node".to_string(),
                    Json::Num(round2(bytes_per_node)),
                ),
            ]));
        }
        if size <= cfg.eager_max_size {
            if let [Some(lazy_us), Some(eager_us)] = size_us {
                pin = Some((size, lazy_us, eager_us));
            }
        }
    }

    let (pin_size, lazy_pin_us, eager_pin_us) =
        pin.expect("at least one size within the eager comparison band");
    let (largest, lazy_largest_us) = largest_lazy.expect("at least one lazy row");
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(SCHEMA.into())),
        ("experiment_doc".to_string(), Json::Str("EXPERIMENTS.md".into())),
        (
            "tree_sizes".to_string(),
            Json::Arr(cfg.tree_sizes.iter().map(|&s| Json::Num(s as f64)).collect()),
        ),
        ("suite_queries".to_string(), Json::Num(specs.len() as f64)),
        ("workload_repeats".to_string(), Json::Num(1.0)),
        ("runs_per_cell".to_string(), Json::Num(cfg.runs as f64)),
        ("results".to_string(), Json::Arr(rows)),
        (
            "summary".to_string(),
            Json::Obj(vec![
                ("lazy_largest_tree_size".to_string(), Json::Num(largest as f64)),
                ("lazy_largest_us".to_string(), Json::Num(lazy_largest_us)),
                ("lazy_pin_tree_size".to_string(), Json::Num(pin_size as f64)),
                ("lazy_pin_us".to_string(), Json::Num(lazy_pin_us)),
                ("eager_pin_us".to_string(), Json::Num(eager_pin_us)),
                // The two CI-pinned claims of BENCH_6.json.
                (
                    "lazy_speedup".to_string(),
                    Json::Num(round2(eager_pin_us / lazy_pin_us.max(0.1))),
                ),
                (
                    "lazy_bytes_per_node".to_string(),
                    Json::Num(round2(worst_bytes_per_node)),
                ),
            ]),
        ),
    ])
}

/// Run the E17 incremental-maintenance sweep: a warm session absorbs a
/// single-node edit — one record's `title` is relabelled — and re-answers
/// the E14 [`xpath_workload::dblp_suite`].  The `edit_incremental` arm
/// carries the compiled matrices through the edit with
/// [`Session::fork_edited`] (only entries whose label footprint contains
/// the edited labels recompile; the dense `except`/`not` complements of
/// the suite are untouched); the `edit_full` arm builds a fresh session,
/// replaying the full compilation the suite needs.
/// Returns a standalone `BENCH_9.json`-shaped document whose summary
/// carries the CI-pinned claims: `incr_speedup` (full / incremental at the
/// pin size) and `incr_rows_fraction` (rows recomputed over rows cached —
/// the row-range-invalidation locality claim).
pub fn run_incr_bench(cfg: &IncrBenchConfig) -> Json {
    use std::sync::Arc;
    let specs = xpath_workload::dblp_suite();
    let planner = Planner::default();
    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let round4 = |x: f64| (x * 10_000.0).round() / 10_000.0;

    let mut rows: Vec<Json> = Vec::new();
    // Per size: (incr_us, full_us, rows_invalidated, rows_total).
    let mut cells: Vec<(usize, f64, f64, u64, u64)> = Vec::new();

    for &size in &cfg.tree_sizes {
        let mode = if size >= cfg.lazy_min_size {
            KernelMode::Lazy
        } else {
            KernelMode::AdaptiveThreaded
        };
        let tree = xpath_tree::generate::dblp(size, 0xE17);
        assert_eq!(tree.len(), size, "dblp generator missed the target size");

        // The single-subtree edit of the pinned claim — the scenario that
        // motivates the subsystem: one record's `title` is renamed on a
        // warm document.  Ids do not move, so only the entries whose label
        // footprint contains `title` are recompiled; the expensive dense
        // complements of the suite are untouched.  The tree-edit cost
        // itself is identical in both arms and excluded from the timers,
        // which measure matrix maintenance + re-answering only.
        let victim = (0..tree.len() as u32)
            .map(xpath_tree::NodeId)
            .find(|&n| tree.label_str(n) == "title")
            .expect("dblp documents have titles");
        let (edited, delta) = tree.relabel(victim, "note").expect("relabel is valid");
        let edited = Arc::new(edited);

        // Plans for the edited tree, prepared once outside the timers (both
        // arms execute the same plans over the same tree).
        let plans_for = |t: &Arc<Tree>| -> Vec<QueryPlan> {
            let plan_session = Session::from_shared_tree(Arc::clone(t));
            specs
                .iter()
                .map(|(src, vars)| {
                    let path = parse_path(src).expect("dblp suite query parses");
                    let output: Vec<Var> = vars.iter().map(|n| Var::new(n)).collect();
                    planner
                        .plan_with(&plan_session, path, output, Some(Engine::Ppl))
                        .expect("dblp suite query plans")
                })
                .collect()
        };
        let plans = plans_for(&edited);

        // The warm base session the incremental arm forks from.
        let warm = Session::from_tree(tree.clone());
        warm.set_kernel_mode(mode);
        for p in &plans_for(&warm.shared_tree()) {
            warm.execute(p).expect("dblp suite answers on the base document");
        }
        assert!(warm.cache_stats().compiled > 0, "base session must be warm");

        // Edit-maintenance stats, measured once outside the timers.
        let (_, stats) = warm.fork_edited(Arc::clone(&edited), &delta);
        assert!(stats.rows_total > 0, "the warm cache must be carried through the edit");

        let mut answers_reference: Option<usize> = None;
        let mut arm_us = [0.0f64; 2];
        for (arm, name) in INCR_MODES.iter().enumerate() {
            let (t, answers) = time_median(cfg.runs, || {
                let session = if arm == 0 {
                    warm.fork_edited(Arc::clone(&edited), &delta).0
                } else {
                    let cold = Session::from_shared_tree(Arc::clone(&edited));
                    cold.set_kernel_mode(mode);
                    cold
                };
                plans
                    .iter()
                    .map(|p| session.execute(p).expect("dblp suite answers").len())
                    .sum::<usize>()
            });
            match answers_reference {
                None => answers_reference = Some(answers),
                Some(r) => assert_eq!(
                    r, answers,
                    "{name} disagrees with the incremental arm at |t|={size}"
                ),
            }
            assert!(answers > 0, "dblp suite selected nothing at |t|={size}");
            arm_us[arm] = us(t);
            let mut row = vec![
                ("experiment".to_string(), Json::Str("incr_maintenance".into())),
                ("engine".to_string(), Json::Str((*name).into())),
                ("tree_size".to_string(), Json::Num(size as f64)),
                ("workload_queries".to_string(), Json::Num(specs.len() as f64)),
                ("workload_repeats".to_string(), Json::Num(1.0)),
                ("median_us".to_string(), Json::Num(us(t))),
                ("answers".to_string(), Json::Num(answers as f64)),
                ("edits".to_string(), Json::Num(1.0)),
                (
                    "kernel".to_string(),
                    Json::Str(if mode == KernelMode::Lazy { "lazy" } else { "adaptive_threaded" }.into()),
                ),
            ];
            if arm == 0 {
                row.push((
                    "rows_invalidated".to_string(),
                    Json::Num(stats.rows_invalidated as f64),
                ));
                row.push(("rows_total".to_string(), Json::Num(stats.rows_total as f64)));
            }
            rows.push(Json::Obj(row));
        }
        cells.push((size, arm_us[0], arm_us[1], stats.rows_invalidated, stats.rows_total));
    }

    let &(pin_size, incr_pin_us, full_pin_us, invalidated, total) =
        cells.first().expect("at least one swept size");
    let &(largest, incr_largest_us, full_largest_us, ..) =
        cells.last().expect("at least one swept size");
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(SCHEMA.into())),
        ("experiment_doc".to_string(), Json::Str("EXPERIMENTS.md".into())),
        (
            "tree_sizes".to_string(),
            Json::Arr(cfg.tree_sizes.iter().map(|&s| Json::Num(s as f64)).collect()),
        ),
        ("suite_queries".to_string(), Json::Num(specs.len() as f64)),
        ("workload_repeats".to_string(), Json::Num(1.0)),
        ("runs_per_cell".to_string(), Json::Num(cfg.runs as f64)),
        ("results".to_string(), Json::Arr(rows)),
        (
            "summary".to_string(),
            Json::Obj(vec![
                ("incr_pin_tree_size".to_string(), Json::Num(pin_size as f64)),
                ("incr_pin_us".to_string(), Json::Num(incr_pin_us)),
                ("full_pin_us".to_string(), Json::Num(full_pin_us)),
                (
                    "incr_speedup".to_string(),
                    Json::Num(round2(full_pin_us / incr_pin_us.max(0.1))),
                ),
                ("incr_rows_invalidated".to_string(), Json::Num(invalidated as f64)),
                ("incr_rows_total".to_string(), Json::Num(total as f64)),
                (
                    "incr_rows_fraction".to_string(),
                    Json::Num(round4(invalidated as f64 / (total as f64).max(1.0))),
                ),
                ("incr_largest_tree_size".to_string(), Json::Num(largest as f64)),
                ("incr_largest_us".to_string(), Json::Num(incr_largest_us)),
                (
                    "incr_largest_speedup".to_string(),
                    Json::Num(round2(full_largest_us / incr_largest_us.max(0.1))),
                ),
            ]),
        ),
    ])
}

/// Run the E15 daemon-serving sweep: sustained request throughput of a live
/// `pplxd` daemon under 1/64/1024 concurrent pipelined connections, epoll
/// event loop vs thread-per-client, same corpus and worker pool on both
/// sides.  Each client writes [`DaemonBenchConfig::pipeline`]-request
/// windows in one flush (mostly `STATS` with a `QUERY` against a preloaded
/// document mixed in) and reads the window's responses back in order.
/// Returns a standalone `BENCH_7.json`-shaped document whose summary
/// carries the CI-pinned claim: `daemon_speedup` (epoll QPS over
/// thread-per-client QPS at the 64-connection pin).
///
/// Linux only: the epoll arm is `--io epoll`, which exists nowhere else.
pub fn run_daemon_bench(cfg: &DaemonBenchConfig) -> Json {
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::TcpStream;
    use xpath_corpus::server::{bind, serve_with_options, IoMode, ServeOptions};
    use xpath_corpus::Corpus;

    if !cfg!(target_os = "linux") {
        panic!("the E15 daemon sweep compares --io epoll against --io threads and is Linux-only");
    }

    // The preloaded document every QUERY in the mix runs against; small on
    // purpose — E15 measures protocol and multiplexing overhead, not query
    // evaluation (E10–E14 own that).
    const DOC_SHAPE: &str = "r(a(b,c),a(b),c(a(b)))";
    const DOC_NODES: usize = 9;
    let request_line = |i: usize| -> &'static str {
        // 1-in-8 QUERY keeps the worker pool honest without the cell
        // degenerating into a query benchmark.
        if i % 8 == 7 {
            "QUERY bench descendant::b"
        } else {
            "STATS"
        }
    };
    let read_response = |reader: &mut BufReader<TcpStream>| {
        let mut status = String::new();
        assert!(
            reader.read_line(&mut status).expect("daemon response") > 0,
            "daemon closed the connection mid-bench"
        );
        assert!(status.starts_with("OK "), "daemon answered {status:?}");
        let payload: usize = status[3..].trim().parse().expect("payload count");
        let mut line = String::new();
        for _ in 0..payload {
            line.clear();
            assert!(reader.read_line(&mut line).expect("payload line") > 0);
        }
    };

    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let mut rows: Vec<Json> = Vec::new();
    // qps per (mode name, connections) cell, for the summary pins.
    let mut cells: Vec<(&str, usize, f64)> = Vec::new();

    for (mode_name, engine) in DAEMON_MODES {
        let io: IoMode = mode_name.parse().expect("swept io mode exists");
        for &conns in &cfg.connections {
            let per_conn = (cfg.total_requests / conns.max(1)).max(cfg.pipeline);
            let window = cfg.pipeline.min(per_conn);
            let total = per_conn * conns;

            let (listener, addr) = bind("127.0.0.1:0").expect("bench daemon binds");
            let corpus = std::sync::Arc::new(Corpus::new());
            let options = ServeOptions {
                io,
                workers: cfg.workers,
                ..ServeOptions::default()
            };
            let server =
                std::thread::spawn(move || serve_with_options(listener, corpus, &options));

            // Preload the queried document before any timing.
            let control = TcpStream::connect(addr).expect("bench control connection");
            let mut control_reader = BufReader::new(control.try_clone().unwrap());
            let mut control_writer = BufWriter::new(control);
            writeln!(control_writer, "LOADTERMS bench {DOC_SHAPE}").unwrap();
            control_writer.flush().unwrap();
            read_response(&mut control_reader);

            // Sustained throughput: connections are established and client
            // threads parked on a barrier before the clock starts, so the
            // cell measures pipelined request traffic, not thread-spawn and
            // connect setup.  Client threads are capped at 64, each
            // multiplexing a slice of the connections — the generator must
            // not itself become the scheduler load it is measuring on the
            // daemon side.
            let client_threads = conns.min(64);
            let mut durations: Vec<Duration> = Vec::with_capacity(cfg.runs);
            for _ in 0..cfg.runs {
                let barrier = std::sync::Arc::new(std::sync::Barrier::new(client_threads + 1));
                let clients: Vec<_> = (0..client_threads)
                    .map(|k| {
                        let barrier = std::sync::Arc::clone(&barrier);
                        // Thread k owns connections k, k+threads, k+2*threads, …
                        let owned = (conns - k).div_ceil(client_threads);
                        std::thread::spawn(move || {
                            let mut sockets: Vec<_> = (0..owned)
                                .map(|_| {
                                    let stream =
                                        TcpStream::connect(addr).expect("bench client connects");
                                    stream.set_nodelay(true).unwrap();
                                    let reader = BufReader::new(stream.try_clone().unwrap());
                                    (reader, BufWriter::new(stream))
                                })
                                .collect();
                            barrier.wait();
                            let mut sent = 0usize;
                            while sent < per_conn {
                                let burst = window.min(per_conn - sent);
                                for (_, writer) in sockets.iter_mut() {
                                    for i in 0..burst {
                                        writeln!(writer, "{}", request_line(sent + i)).unwrap();
                                    }
                                    writer.flush().unwrap();
                                }
                                for (reader, _) in sockets.iter_mut() {
                                    for _ in 0..burst {
                                        read_response(reader);
                                    }
                                }
                                sent += burst;
                            }
                        })
                    })
                    .collect();
                barrier.wait();
                let start = std::time::Instant::now();
                for client in clients {
                    client.join().expect("bench client must not panic");
                }
                durations.push(start.elapsed());
            }
            durations.sort_unstable();
            let t = durations[durations.len() / 2];
            let qps = total as f64 / t.as_secs_f64().max(1e-9);

            writeln!(control_writer, "SHUTDOWN").unwrap();
            control_writer.flush().unwrap();
            read_response(&mut control_reader);
            server
                .join()
                .expect("daemon thread must not panic")
                .expect("daemon shuts down cleanly");

            rows.push(Json::Obj(vec![
                ("experiment".to_string(), Json::Str("daemon_serving".into())),
                ("engine".to_string(), Json::Str(engine.into())),
                ("tree_size".to_string(), Json::Num(DOC_NODES as f64)),
                ("workload_queries".to_string(), Json::Num(total as f64)),
                ("workload_repeats".to_string(), Json::Num(window as f64)),
                ("median_us".to_string(), Json::Num(us(t))),
                ("connections".to_string(), Json::Num(conns as f64)),
                ("workers".to_string(), Json::Num(cfg.workers as f64)),
                ("qps".to_string(), Json::Num(round2(qps))),
            ]));
            cells.push((engine, conns, qps));
        }
    }

    // The pin lives at the largest swept cell (>= 64 connections in the
    // full sweep): the event loop's claim is scalability with connection
    // count, and the architectural gap is widest where thread-per-client
    // pays for one scheduler entity per connection.
    let pin_conns = cfg
        .connections
        .iter()
        .copied()
        .filter(|&c| c >= 64)
        .max()
        .or_else(|| cfg.connections.iter().copied().max())
        .expect("at least one connection count");
    let qps_at = |engine: &str| {
        cells
            .iter()
            .find(|(e, c, _)| *e == engine && *c == pin_conns)
            .map(|&(_, _, qps)| qps)
            .expect("pin cell was swept")
    };
    let epoll_qps = qps_at("daemon_epoll");
    let threads_qps = qps_at("daemon_threads");

    Json::Obj(vec![
        ("schema".to_string(), Json::Str(SCHEMA.into())),
        ("experiment_doc".to_string(), Json::Str("EXPERIMENTS.md".into())),
        (
            "connections".to_string(),
            Json::Arr(cfg.connections.iter().map(|&c| Json::Num(c as f64)).collect()),
        ),
        ("pipeline".to_string(), Json::Num(cfg.pipeline as f64)),
        ("workers".to_string(), Json::Num(cfg.workers as f64)),
        ("runs_per_cell".to_string(), Json::Num(cfg.runs as f64)),
        ("results".to_string(), Json::Arr(rows)),
        (
            "summary".to_string(),
            Json::Obj(vec![
                ("daemon_pin_conns".to_string(), Json::Num(pin_conns as f64)),
                ("daemon_epoll_pin_qps".to_string(), Json::Num(round2(epoll_qps))),
                (
                    "daemon_threads_pin_qps".to_string(),
                    Json::Num(round2(threads_qps)),
                ),
                // The CI-pinned claim of BENCH_7.json.
                (
                    "daemon_speedup".to_string(),
                    Json::Num(round2(epoll_qps / threads_qps.max(1e-9))),
                ),
            ]),
        ),
    ])
}

/// Run the E16 sharded-router sweep: the same pipelined QUERY traffic is
/// driven against (a) one `pplxd` daemon and (b) a router fronting
/// [`RouterBenchConfig::shards`] backend daemons, giving the
/// `router_efficiency` pin — the extra network hop must not cost more than
/// a bounded fraction of single-daemon QPS.  A third phase re-runs the
/// workload and kills one shard a quarter of the way in (a permanent
/// `FaultAction::KillConn` on every request to it — the in-process
/// equivalent of `kill -9`), asserting the fleet degrades instead of
/// failing: requests issued after the router has had a probe interval to
/// react must almost all succeed (`router_kill_failure_rate` pin).
///
/// Returns a standalone `BENCH_8.json`-shaped document.
pub fn run_router_bench(cfg: &RouterBenchConfig) -> Json {
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier, Mutex};
    use xpath_corpus::router::{FaultAction, Router, RouterConfig};
    use xpath_corpus::server::{bind, serve_with_options, IoMode, ServeOptions};
    use xpath_corpus::Corpus;

    // Every document is the same medium tree: 72 subtrees of 5 nodes.  Big
    // enough that answering and rendering cost real backend work per
    // request (the router's relay overhead amortises), small enough that
    // E16 measures serving architecture, not query evaluation.
    let doc_shape = format!("r({})", vec!["a(b,b,c(b))"; 72].join(","));
    const DOC_NODES: usize = 361;
    let doc_name = |k: usize| format!("bench_d{k}");
    let docs = cfg.docs.max(1);
    let request_line = move |i: usize| format!(
        "QUERY bench_d{} descendant::b[. is $x] -> x",
        i % docs
    );

    let read_response = |reader: &mut BufReader<TcpStream>| -> bool {
        let mut status = String::new();
        assert!(
            reader.read_line(&mut status).expect("front-door response") > 0,
            "front door closed the connection mid-bench"
        );
        let ok = status.starts_with("OK ");
        let payload: usize = if ok {
            status[3..].trim().parse().expect("payload count")
        } else {
            assert!(status.starts_with("ERR "), "malformed response {status:?}");
            0
        };
        let mut line = String::new();
        for _ in 0..payload {
            line.clear();
            assert!(reader.read_line(&mut line).expect("payload line") > 0);
        }
        ok
    };

    let spawn_backend = || {
        let (listener, addr) = bind("127.0.0.1:0").expect("bench backend binds");
        let corpus = Arc::new(Corpus::new());
        let options = ServeOptions {
            io: IoMode::Threads,
            ..ServeOptions::default()
        };
        let handle = std::thread::spawn(move || serve_with_options(listener, corpus, &options));
        (addr, handle)
    };

    // One scripted control request against a front door.
    let control_request = |addr: SocketAddr, line: &str| {
        let stream = TcpStream::connect(addr).expect("bench control connection");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        assert!(read_response(&mut reader), "control request {line:?} failed");
    };

    let preload = |addr: SocketAddr| {
        let stream = TcpStream::connect(addr).expect("bench control connection");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        for k in 0..docs {
            writeln!(writer, "LOADTERMS {} {doc_shape}", doc_name(k)).unwrap();
            writer.flush().unwrap();
            assert!(read_response(&mut reader), "preload of {} failed", doc_name(k));
        }
    };

    // Pipelined sustained-throughput phase against one front door, E15
    // style: connections up and threads parked on a barrier before the
    // clock starts.  Returns the median wall time over `cfg.runs`.
    let per_conn = (cfg.total_requests / cfg.connections.max(1)).max(cfg.pipeline);
    let window = cfg.pipeline.min(per_conn);
    let total = per_conn * cfg.connections;
    let timed_phase = |addr: SocketAddr| -> Duration {
        let client_threads = cfg.connections.min(64);
        let mut durations: Vec<Duration> = Vec::with_capacity(cfg.runs);
        for _ in 0..cfg.runs {
            let barrier = Arc::new(Barrier::new(client_threads + 1));
            let clients: Vec<_> = (0..client_threads)
                .map(|k| {
                    let barrier = Arc::clone(&barrier);
                    let owned = (cfg.connections - k).div_ceil(client_threads);
                    std::thread::spawn(move || {
                        let mut sockets: Vec<_> = (0..owned)
                            .map(|_| {
                                let stream =
                                    TcpStream::connect(addr).expect("bench client connects");
                                stream.set_nodelay(true).unwrap();
                                let reader = BufReader::new(stream.try_clone().unwrap());
                                (reader, BufWriter::new(stream))
                            })
                            .collect();
                        barrier.wait();
                        let mut sent = 0usize;
                        while sent < per_conn {
                            let burst = window.min(per_conn - sent);
                            for (_, writer) in sockets.iter_mut() {
                                for i in 0..burst {
                                    writeln!(writer, "{}", request_line(sent + i)).unwrap();
                                }
                                writer.flush().unwrap();
                            }
                            for (reader, _) in sockets.iter_mut() {
                                for _ in 0..burst {
                                    assert!(
                                        read_response(reader),
                                        "healthy-fleet request must not fail"
                                    );
                                }
                            }
                            sent += burst;
                        }
                    })
                })
                .collect();
            barrier.wait();
            let start = std::time::Instant::now();
            for client in clients {
                client.join().expect("bench client must not panic");
            }
            durations.push(start.elapsed());
        }
        durations.sort_unstable();
        durations[durations.len() / 2]
    };

    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let round4 = |x: f64| (x * 10000.0).round() / 10000.0;

    // ---- Phase 1: single-daemon baseline. -------------------------------
    let (addr, server) = spawn_backend();
    preload(addr);
    let single_t = timed_phase(addr);
    control_request(addr, "SHUTDOWN");
    server.join().unwrap().expect("baseline daemon shuts down");
    let single_qps = total as f64 / single_t.as_secs_f64().max(1e-9);

    // A router fleet: backends, a Router over them, and a serving thread.
    let probe_interval = Duration::from_millis(100);
    let spawn_fleet = || {
        let backends: Vec<_> = (0..cfg.shards.max(1)).map(|_| spawn_backend()).collect();
        let router = Arc::new(Router::new(RouterConfig {
            backends: backends.iter().map(|(a, _)| a.to_string()).collect(),
            replication: cfg.replication,
            shard_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(500),
            fail_threshold: 2,
            probe_interval,
            ..RouterConfig::default()
        }));
        let (listener, addr) = bind("127.0.0.1:0").expect("bench router binds");
        let serving = Arc::clone(&router);
        let handle =
            std::thread::spawn(move || xpath_corpus::router::serve_router(listener, serving));
        (backends, router, addr, handle)
    };
    let teardown_fleet =
        |backends: Vec<(SocketAddr, std::thread::JoinHandle<std::io::Result<()>>)>,
         addr: SocketAddr,
         handle: std::thread::JoinHandle<std::io::Result<()>>| {
            // SHUTDOWN fans out to every shard; the router then stops.
            control_request(addr, "SHUTDOWN");
            handle.join().unwrap().expect("router shuts down");
            for (_, backend) in backends {
                backend.join().unwrap().expect("backend shuts down");
            }
        };

    // ---- Phase 2: the router, healthy. ----------------------------------
    let (backends, _router, router_addr, router_handle) = spawn_fleet();
    preload(router_addr);
    let router_t = timed_phase(router_addr);
    teardown_fleet(backends, router_addr, router_handle);
    let router_qps = total as f64 / router_t.as_secs_f64().max(1e-9);

    // ---- Phase 3: kill one shard mid-bench. -----------------------------
    // Unpipelined so every response attributes to one request, with a
    // timestamp: failures are only *counted* once the router has had a full
    // probe interval to notice the corpse — transient errors during the
    // transition are reported separately, not pinned.
    let (backends, router, router_addr, router_handle) = spawn_fleet();
    preload(router_addr);
    let dead = Arc::new(AtomicBool::new(false));
    {
        let dead = Arc::clone(&dead);
        router.set_fault_hook(Arc::new(move |shard, _command| {
            if shard == 0 && dead.load(Ordering::Relaxed) {
                FaultAction::KillConn
            } else {
                FaultAction::None
            }
        }));
    }
    let completed = Arc::new(AtomicUsize::new(0));
    let killed_at: Arc<Mutex<Option<std::time::Instant>>> = Arc::new(Mutex::new(None));
    let kill_after = total / 4;
    let recovery_gate = probe_interval * 2;
    let client_threads = cfg.connections.min(64);
    let barrier = Arc::new(Barrier::new(client_threads + 1));
    let clients: Vec<_> = (0..client_threads)
        .map(|k| {
            let barrier = Arc::clone(&barrier);
            let dead = Arc::clone(&dead);
            let completed = Arc::clone(&completed);
            let killed_at = Arc::clone(&killed_at);
            let owned = (cfg.connections - k).div_ceil(client_threads);
            std::thread::spawn(move || {
                let mut sockets: Vec<_> = (0..owned)
                    .map(|_| {
                        let stream = TcpStream::connect(router_addr).expect("kill-phase connect");
                        stream.set_nodelay(true).unwrap();
                        let reader = BufReader::new(stream.try_clone().unwrap());
                        (reader, BufWriter::new(stream))
                    })
                    .collect();
                barrier.wait();
                // (failed, after_recovery) counters for this thread.
                let mut failed = 0usize;
                let mut failed_after = 0usize;
                let mut after = 0usize;
                for i in 0..per_conn {
                    for (reader, writer) in sockets.iter_mut() {
                        let started = std::time::Instant::now();
                        writeln!(writer, "{}", request_line(i)).unwrap();
                        writer.flush().unwrap();
                        let ok = read_response(reader);
                        let recovered = killed_at
                            .lock()
                            .unwrap()
                            .map(|at| started >= at + recovery_gate)
                            .unwrap_or(false);
                        if recovered {
                            after += 1;
                        }
                        if !ok {
                            failed += 1;
                            if recovered {
                                failed_after += 1;
                            }
                        }
                        let n = completed.fetch_add(1, Ordering::Relaxed) + 1;
                        if n >= kill_after && !dead.swap(true, Ordering::Relaxed) {
                            *killed_at.lock().unwrap() = Some(std::time::Instant::now());
                        }
                    }
                }
                (failed, failed_after, after)
            })
        })
        .collect();
    barrier.wait();
    let kill_start = std::time::Instant::now();
    let mut kill_failed = 0usize;
    let mut kill_failed_after = 0usize;
    let mut kill_after_recovery = 0usize;
    for client in clients {
        let (failed, failed_after, after) = client.join().expect("kill-phase client");
        kill_failed += failed;
        kill_failed_after += failed_after;
        kill_after_recovery += after;
    }
    let kill_t = kill_start.elapsed();
    assert!(
        kill_after_recovery > 0,
        "the kill phase must issue requests after the recovery gate"
    );
    // Let the teardown SHUTDOWN reach shard 0 again (it is not actually
    // dead — only every router request to it was killed).
    dead.store(false, Ordering::Relaxed);
    teardown_fleet(backends, router_addr, router_handle);
    let kill_qps = total as f64 / kill_t.as_secs_f64().max(1e-9);
    let failure_rate = kill_failed_after as f64 / kill_after_recovery as f64;

    let row = |engine: &str, shards: usize, t: Duration, qps: f64| {
        Json::Obj(vec![
            ("experiment".to_string(), Json::Str("router_serving".into())),
            ("engine".to_string(), Json::Str(engine.into())),
            ("tree_size".to_string(), Json::Num(DOC_NODES as f64)),
            ("workload_queries".to_string(), Json::Num(total as f64)),
            ("workload_repeats".to_string(), Json::Num(window as f64)),
            ("median_us".to_string(), Json::Num(us(t))),
            ("connections".to_string(), Json::Num(cfg.connections as f64)),
            ("shards".to_string(), Json::Num(shards as f64)),
            ("replication".to_string(), Json::Num(cfg.replication as f64)),
            ("docs".to_string(), Json::Num(docs as f64)),
            ("qps".to_string(), Json::Num(round2(qps))),
        ])
    };
    let mut kill_row = row("router_kill", cfg.shards, kill_t, kill_qps);
    if let Json::Obj(fields) = &mut kill_row {
        fields.push(("failed_requests".to_string(), Json::Num(kill_failed as f64)));
        fields.push((
            "requests_after_recovery".to_string(),
            Json::Num(kill_after_recovery as f64),
        ));
        fields.push((
            "failed_after_recovery".to_string(),
            Json::Num(kill_failed_after as f64),
        ));
        fields.push(("failure_rate".to_string(), Json::Num(round4(failure_rate))));
    }

    Json::Obj(vec![
        ("schema".to_string(), Json::Str(SCHEMA.into())),
        ("experiment_doc".to_string(), Json::Str("EXPERIMENTS.md".into())),
        ("shards".to_string(), Json::Num(cfg.shards as f64)),
        ("replication".to_string(), Json::Num(cfg.replication as f64)),
        ("connections".to_string(), Json::Num(cfg.connections as f64)),
        ("pipeline".to_string(), Json::Num(cfg.pipeline as f64)),
        ("runs_per_cell".to_string(), Json::Num(cfg.runs as f64)),
        (
            "results".to_string(),
            Json::Arr(vec![
                row("single_daemon", 1, single_t, single_qps),
                row("router", cfg.shards, router_t, router_qps),
                kill_row,
            ]),
        ),
        (
            "summary".to_string(),
            Json::Obj(vec![
                ("router_shards".to_string(), Json::Num(cfg.shards as f64)),
                ("router_qps".to_string(), Json::Num(round2(router_qps))),
                ("single_daemon_qps".to_string(), Json::Num(round2(single_qps))),
                // CI pin 1: the fleet keeps a bounded fraction of
                // single-daemon throughput despite the extra hop.
                (
                    "router_efficiency".to_string(),
                    Json::Num(round4(router_qps / single_qps.max(1e-9))),
                ),
                // CI pin 2: almost no failures once the router has had a
                // probe interval to absorb the shard kill.
                (
                    "router_kill_failure_rate".to_string(),
                    Json::Num(round4(failure_rate)),
                ),
                (
                    "router_kill_failed_total".to_string(),
                    Json::Num(kill_failed as f64),
                ),
            ]),
        ),
    ])
}

/// Validate an emitted `BENCH_*.json` document: it must parse, carry the
/// schema marker, and every result row must have the expected keys.  Used by
/// `experiments --check` (and so by CI) to keep the harness honest.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let doc = Json::parse(text)?;
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("missing or wrong \"schema\" (expected {SCHEMA:?})"));
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing \"results\" array")?;
    if results.is_empty() {
        return Err("\"results\" is empty".into());
    }
    let mut engines_seen: Vec<String> = Vec::new();
    for (i, row) in results.iter().enumerate() {
        for key in ROW_KEYS {
            row.get(key).ok_or(format!("results[{i}] is missing {key:?}"))?;
        }
        let median = row
            .get("median_us")
            .and_then(Json::as_f64)
            .ok_or(format!("results[{i}].median_us is not a number"))?;
        if !median.is_finite() || median < 0.0 {
            return Err(format!("results[{i}].median_us = {median} is not a valid timing"));
        }
        if let Some(engine) = row.get("engine").and_then(Json::as_str) {
            if !engines_seen.iter().any(|e| e == engine) {
                engines_seen.push(engine.to_string());
            }
        }
    }
    let experiment_of = |row: &Json| {
        row.get("experiment")
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    let has_e10 = results
        .iter()
        .any(|r| experiment_of(r).as_deref() == Some("repeated_query_workload"));
    let corpus_rows: Vec<&Json> = results
        .iter()
        .filter(|r| experiment_of(r).as_deref() == Some("corpus_serving"))
        .collect();
    let lazy_rows: Vec<&Json> = results
        .iter()
        .filter(|r| experiment_of(r).as_deref() == Some("lazy_large_documents"))
        .collect();
    let daemon_rows: Vec<&Json> = results
        .iter()
        .filter(|r| experiment_of(r).as_deref() == Some("daemon_serving"))
        .collect();
    let router_rows: Vec<&Json> = results
        .iter()
        .filter(|r| experiment_of(r).as_deref() == Some("router_serving"))
        .collect();
    let incr_rows: Vec<&Json> = results
        .iter()
        .filter(|r| experiment_of(r).as_deref() == Some("incr_maintenance"))
        .collect();
    if has_e10 as usize
        + (!corpus_rows.is_empty()) as usize
        + (!lazy_rows.is_empty()) as usize
        + (!daemon_rows.is_empty()) as usize
        + (!router_rows.is_empty()) as usize
        + (!incr_rows.is_empty()) as usize
        == 0
    {
        return Err(
            "no repeated_query_workload, corpus_serving, lazy_large_documents, \
             daemon_serving, router_serving or incr_maintenance rows in \"results\""
                .into(),
        );
    }
    let summary = doc.get("summary").ok_or("missing \"summary\"")?;
    if has_e10 {
        for required in ["ppl_cached", "ppl_cold"] {
            if !engines_seen.iter().any(|e| e == required) {
                return Err(format!("no {required:?} rows in \"results\""));
            }
        }
        for key in ["largest_tree_size", "cold_median_us", "cached_median_us", "cached_speedup"] {
            summary
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("summary.{key} missing or not a number"))?;
        }
    }
    // E13 corpus documents must sweep the pooled, budgeted and cold-rebuild
    // serving modes, tag every row with the document count, and summarise
    // the pooled-vs-cold ratio.
    if !corpus_rows.is_empty() {
        for required in ["corpus_pool", "cold_rebuild", "corpus_budget_half", "corpus_budget_quarter"] {
            if !engines_seen.iter().any(|e| e == required) {
                return Err(format!("corpus rows present but no {required:?} rows"));
            }
        }
        for (i, row) in corpus_rows.iter().enumerate() {
            for key in ["docs", "threads", "answers", "pool_bytes"] {
                let value = row
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("corpus row {i} is missing \"{key}\""))?;
                if !value.is_finite() || value < 0.0 {
                    return Err(format!("corpus row {i} has invalid {key} = {value}"));
                }
            }
        }
        for key in [
            "corpus_docs",
            "corpus_working_set_bytes",
            "corpus_pool_us",
            "corpus_cold_us",
            "corpus_speedup",
            "corpus_budget_half_us",
            "corpus_budget_quarter_us",
            "corpus_budget_quarter_evictions",
        ] {
            let value = summary
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("summary.{key} missing or not a number"))?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!("summary.{key} = {value} is not valid"));
            }
        }
    }
    // E14 lazy documents must carry both the lazy rows and the eager
    // baseline, account store occupancy per row, and summarise the two
    // pinned claims (speedup at the pin size, bytes/node ceiling).
    if !lazy_rows.is_empty() {
        for (_, required) in LAZY_MODES {
            if !engines_seen.iter().any(|e| e == required) {
                return Err(format!("lazy rows present but no {required:?} rows"));
            }
        }
        for (i, row) in lazy_rows.iter().enumerate() {
            for key in ["answers", "store_bytes", "bytes_per_node"] {
                let value = row
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("lazy row {i} is missing \"{key}\""))?;
                if !value.is_finite() || value < 0.0 {
                    return Err(format!("lazy row {i} has invalid {key} = {value}"));
                }
            }
        }
        for key in [
            "lazy_largest_tree_size",
            "lazy_pin_tree_size",
            "lazy_pin_us",
            "eager_pin_us",
            "lazy_speedup",
            "lazy_bytes_per_node",
        ] {
            let value = summary
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("summary.{key} missing or not a number"))?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!("summary.{key} = {value} is not valid"));
            }
        }
    }
    // E15 daemon documents must sweep both io modes, tag every row with its
    // connection count and throughput, and summarise the epoll-vs-threads
    // QPS pin.
    if !daemon_rows.is_empty() {
        for (_, required) in DAEMON_MODES {
            if !engines_seen.iter().any(|e| e == required) {
                return Err(format!("daemon rows present but no {required:?} rows"));
            }
        }
        for (i, row) in daemon_rows.iter().enumerate() {
            for key in ["connections", "workers", "qps"] {
                let value = row
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("daemon row {i} is missing \"{key}\""))?;
                if !value.is_finite() || value <= 0.0 {
                    return Err(format!("daemon row {i} has invalid {key} = {value}"));
                }
            }
        }
        for key in [
            "daemon_pin_conns",
            "daemon_epoll_pin_qps",
            "daemon_threads_pin_qps",
            "daemon_speedup",
        ] {
            let value = summary
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("summary.{key} missing or not a number"))?;
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("summary.{key} = {value} is not valid"));
            }
        }
    }
    // E16 router documents must carry the single-daemon baseline, the
    // healthy router row and the shard-kill row, tag every row with its
    // shard count and throughput, and summarise the efficiency and
    // failure-rate pins.
    if !router_rows.is_empty() {
        for required in ROUTER_MODES {
            if !engines_seen.iter().any(|e| e == required) {
                return Err(format!("router rows present but no {required:?} rows"));
            }
        }
        for (i, row) in router_rows.iter().enumerate() {
            for key in ["connections", "shards", "qps"] {
                let value = row
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("router row {i} is missing \"{key}\""))?;
                if !value.is_finite() || value <= 0.0 {
                    return Err(format!("router row {i} has invalid {key} = {value}"));
                }
            }
            if row.get("engine").and_then(Json::as_str) == Some("router_kill") {
                for key in ["failed_requests", "requests_after_recovery", "failure_rate"] {
                    let value = row
                        .get(key)
                        .and_then(Json::as_f64)
                        .ok_or(format!("router kill row is missing \"{key}\""))?;
                    if !value.is_finite() || value < 0.0 {
                        return Err(format!("router kill row has invalid {key} = {value}"));
                    }
                }
            }
        }
        for key in [
            "router_shards",
            "router_qps",
            "single_daemon_qps",
            "router_efficiency",
            "router_kill_failure_rate",
        ] {
            let value = summary
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("summary.{key} missing or not a number"))?;
            // The kill failure rate is legitimately 0.0; everything else
            // must be strictly positive.
            let floor_ok =
                value >= 0.0 && (key == "router_kill_failure_rate" || value > 0.0);
            if !value.is_finite() || !floor_ok {
                return Err(format!("summary.{key} = {value} is not valid"));
            }
        }
    }
    // E17 incremental-maintenance documents must carry both arms, count
    // answers and edits per row, account the invalidated-row locality on the
    // incremental rows, and summarise the speedup and row-fraction pins.
    if !incr_rows.is_empty() {
        for required in INCR_MODES {
            if !engines_seen.iter().any(|e| e == required) {
                return Err(format!("incr rows present but no {required:?} rows"));
            }
        }
        for (i, row) in incr_rows.iter().enumerate() {
            for key in ["answers", "edits"] {
                let value = row
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("incr row {i} is missing \"{key}\""))?;
                if !value.is_finite() || value <= 0.0 {
                    return Err(format!("incr row {i} has invalid {key} = {value}"));
                }
            }
            if row.get("engine").and_then(Json::as_str) == Some("edit_incremental") {
                for key in ["rows_invalidated", "rows_total"] {
                    let value = row
                        .get(key)
                        .and_then(Json::as_f64)
                        .ok_or(format!("incr row {i} is missing \"{key}\""))?;
                    if !value.is_finite() || value < 0.0 {
                        return Err(format!("incr row {i} has invalid {key} = {value}"));
                    }
                }
            }
        }
        for key in [
            "incr_pin_tree_size",
            "incr_pin_us",
            "full_pin_us",
            "incr_speedup",
            "incr_rows_invalidated",
            "incr_rows_total",
            "incr_rows_fraction",
            "incr_largest_speedup",
        ] {
            let value = summary
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("summary.{key} missing or not a number"))?;
            // Row invalidation counts can legitimately be 0 on a relabel-only
            // round; the timings and the speedups must be strictly positive.
            let floor_ok = value >= 0.0
                && (key.starts_with("incr_rows") || value > 0.0);
            if !value.is_finite() || !floor_ok {
                return Err(format!("summary.{key} = {value} is not valid"));
            }
        }
    }
    // Documents carrying E12 planner rows must sweep auto plus every forced
    // engine; serving rows must come in shared/isolated pairs with a
    // threads column, and the summary must carry the serving ratios.
    let has_planner = results.iter().any(|r| {
        r.get("experiment").and_then(Json::as_str) == Some("planner")
    });
    if has_planner {
        for (_, required) in PLANNER_MODES {
            if !engines_seen.iter().any(|e| e == required) {
                return Err(format!("planner rows present but no {required:?} rows"));
            }
        }
    }
    let serving: Vec<&Json> = results
        .iter()
        .filter(|r| r.get("experiment").and_then(Json::as_str) == Some("concurrent_serving"))
        .collect();
    if !serving.is_empty() {
        for required in ["serve_shared", "serve_isolated"] {
            if !engines_seen.iter().any(|e| e == required) {
                return Err(format!("serving rows present but no {required:?} rows"));
            }
        }
        for (i, row) in serving.iter().enumerate() {
            let threads = row
                .get("threads")
                .and_then(Json::as_f64)
                .ok_or(format!("serving row {i} is missing \"threads\""))?;
            if threads < 1.0 {
                return Err(format!("serving row {i} has invalid threads = {threads}"));
            }
        }
        let summary = doc.get("summary").ok_or("missing \"summary\"")?;
        for key in [
            "serve_max_threads",
            "serve_shared_t1_us",
            "serve_shared_tmax_us",
            "serve_isolated_tmax_us",
            "shared_vs_isolated_speedup",
            "thread_scaling",
        ] {
            let value = summary
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("summary.{key} missing or not a number"))?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!("summary.{key} = {value} is not valid"));
            }
        }
    }
    // Documents carrying E11 kernel-ablation rows must sweep every kernel
    // mode and summarise the adaptive-vs-dense ratio.
    let has_ablation = results.iter().any(|r| {
        r.get("experiment").and_then(Json::as_str) == Some("kernel_ablation")
    });
    if has_ablation {
        for (_, required) in KERNEL_MODES {
            if !engines_seen.iter().any(|e| e == required) {
                return Err(format!("kernel ablation rows present but no {required:?} rows"));
            }
        }
        for key in ["kernel_largest_tree_size", "adaptive_speedup", "adaptive_threaded_speedup"] {
            let value = summary
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("summary.{key} missing or not a number"))?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!("summary.{key} = {value} is not a valid ratio"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_compiles_and_mixes_arities() {
        let suite = suite();
        assert_eq!(suite.len(), 6);
        assert!(suite.iter().any(|q| q.output().len() == 2));
        assert!(suite.iter().any(|q| q.output().len() == 1));
        // At least one union-bearing query (excluded from the ACQ engine)
        // and at least four union-free ones.
        let union_free = suite.iter().filter(|q| q.hcl().is_union_free()).count();
        assert!(union_free >= 4);
        assert!(union_free < suite.len());
    }

    #[test]
    fn smoke_regression_emits_a_valid_document() {
        let doc = run_regression(&RegressConfig::smoke());
        let text = doc.render();
        validate_bench_json(&text).unwrap();
        // The smoke sweep must exercise every engine, including naive.
        let parsed = Json::parse(&text).unwrap();
        let engines: Vec<&str> = parsed
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(|r| r.get("engine").and_then(Json::as_str))
            .collect();
        for required in ["ppl_cached", "ppl_cold", "acq", "naive"] {
            assert!(engines.contains(&required), "missing engine {required}");
        }
        // Cached rows expose the cache counters.
        let cached_row = parsed
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .find(|r| r.get("engine").and_then(Json::as_str) == Some("ppl_cached"))
            .unwrap();
        assert!(cached_row.get("cache_hits").and_then(Json::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn axis_suite_compiles_and_exercises_structured_kernels() {
        let suite = axis_suite();
        assert_eq!(suite.len(), AXIS_SUITE.len());
        // Compiling the suite on a smoke-sized tree must dispatch interval
        // and sparse kernels (the whole point of the ablation) and agree
        // with the dense baseline pair-for-pair.
        let tree = sweep_tree(32);
        let mut adaptive = MatrixStore::with_mode(tree.len(), KernelMode::Adaptive);
        let mut dense = MatrixStore::with_mode(tree.len(), KernelMode::Dense);
        for b in &suite {
            assert_eq!(
                adaptive.eval_relation(&tree, b).pairs(),
                dense.eval_relation(&tree, b).pairs(),
            );
        }
        let k = adaptive.kernel_stats();
        assert!(k.step_interval > 0, "{k:?}");
        assert!(k.step_sparse > 0, "{k:?}");
        assert!(k.product_sparse + k.product_interval > 0, "{k:?}");
        let kd = dense.kernel_stats();
        assert_eq!(kd.step_identity + kd.step_interval + kd.step_sparse, 0, "{kd:?}");
    }

    #[test]
    fn smoke_regression_with_kernels_emits_ablation_rows() {
        let doc = run_regression_with_kernels(&RegressConfig::smoke(), &KernelConfig::smoke());
        let text = doc.render();
        validate_bench_json(&text).unwrap();
        let parsed = Json::parse(&text).unwrap();
        let engines: Vec<&str> = parsed
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|r| r.get("experiment").and_then(Json::as_str) == Some("kernel_ablation"))
            .filter_map(|r| r.get("engine").and_then(Json::as_str))
            .collect();
        for (_, name) in KERNEL_MODES {
            assert!(engines.contains(&name), "missing {name} rows");
        }
        let summary = parsed.get("summary").unwrap();
        assert!(summary.get("adaptive_speedup").and_then(Json::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn smoke_full_regression_emits_planner_and_serving_rows() {
        let doc = run_regression_full(
            &RegressConfig::smoke(),
            &KernelConfig::smoke(),
            &ServeConfig::smoke(),
        );
        let text = doc.render();
        validate_bench_json(&text).unwrap();
        let parsed = Json::parse(&text).unwrap();
        let rows = parsed.get("results").unwrap().as_arr().unwrap();
        for (_, name) in PLANNER_MODES {
            assert!(
                rows.iter().any(|r| r.get("engine").and_then(Json::as_str) == Some(name)),
                "missing {name} rows"
            );
        }
        let serving: Vec<_> = rows
            .iter()
            .filter(|r| {
                r.get("experiment").and_then(Json::as_str) == Some("concurrent_serving")
            })
            .collect();
        // shared + isolated at every swept thread count.
        assert_eq!(serving.len(), 2 * ServeConfig::smoke().threads.len());
        // All serving cells agree on the answer total.
        let answers: Vec<f64> = serving
            .iter()
            .filter_map(|r| r.get("answers").and_then(Json::as_f64))
            .collect();
        assert!(answers.windows(2).all(|w| w[0] == w[1]), "{answers:?}");
        let summary = parsed.get("summary").unwrap();
        assert!(summary.get("shared_vs_isolated_speedup").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(summary.get("thread_scaling").and_then(Json::as_f64).unwrap() > 0.0);
        let choices = summary.get("planner_auto_choices").and_then(Json::as_str).unwrap();
        assert!(!choices.is_empty());
    }

    #[test]
    fn validator_rejects_serving_rows_without_summary_keys() {
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [\
             {{\"experiment\": \"repeated_query_workload\", \"engine\": \"ppl_cached\", \
               \"tree_size\": 1, \"workload_queries\": 1, \"workload_repeats\": 1, \
               \"median_us\": 1.0}},\
             {{\"experiment\": \"repeated_query_workload\", \"engine\": \"ppl_cold\", \
               \"tree_size\": 1, \"workload_queries\": 1, \"workload_repeats\": 1, \
               \"median_us\": 1.0}},\
             {{\"experiment\": \"concurrent_serving\", \"engine\": \"serve_shared\", \
               \"tree_size\": 1, \"workload_queries\": 1, \"workload_repeats\": 1, \
               \"threads\": 1, \"median_us\": 1.0}},\
             {{\"experiment\": \"concurrent_serving\", \"engine\": \"serve_isolated\", \
               \"tree_size\": 1, \"workload_queries\": 1, \"workload_repeats\": 1, \
               \"threads\": 1, \"median_us\": 1.0}}],\
             \"summary\": {{\"largest_tree_size\": 1, \"cold_median_us\": 1, \
             \"cached_median_us\": 1, \"cached_speedup\": 1}}}}"
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("serve") || err.contains("shared"), "{err}");
        // A serving row without a threads column is rejected too.
        let no_threads = doc.replace("\"threads\": 1, ", "");
        let err = validate_bench_json(&no_threads).unwrap_err();
        assert!(err.contains("threads"), "{err}");
    }

    #[test]
    fn validator_rejects_kernel_documents_without_summary_ratios() {
        // An ablation row without the kernel summary keys must fail.
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [\
             {{\"experiment\": \"repeated_query_workload\", \"engine\": \"ppl_cached\", \
               \"tree_size\": 1, \"workload_queries\": 1, \"workload_repeats\": 1, \
               \"median_us\": 1.0}},\
             {{\"experiment\": \"repeated_query_workload\", \"engine\": \"ppl_cold\", \
               \"tree_size\": 1, \"workload_queries\": 1, \"workload_repeats\": 1, \
               \"median_us\": 1.0}},\
             {{\"experiment\": \"kernel_ablation\", \"engine\": \"kernel_dense\", \
               \"tree_size\": 1, \"workload_queries\": 1, \"workload_repeats\": 1, \
               \"median_us\": 1.0}}],\
             \"summary\": {{\"largest_tree_size\": 1, \"cold_median_us\": 1, \
             \"cached_median_us\": 1, \"cached_speedup\": 1}}}}"
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("kernel"), "{err}");
    }

    #[test]
    fn smoke_corpus_bench_emits_a_valid_document() {
        let doc = run_corpus_bench(&CorpusBenchConfig::smoke());
        let text = doc.render();
        validate_bench_json(&text).unwrap();
        let parsed = Json::parse(&text).unwrap();
        let rows = parsed.get("results").unwrap().as_arr().unwrap();
        for (_, name) in CORPUS_MODES {
            assert!(
                rows.iter().any(|r| r.get("engine").and_then(Json::as_str) == Some(name)),
                "missing {name} rows"
            );
        }
        // All serving modes agree on the answer total.
        let answers: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.get("answers").and_then(Json::as_f64))
            .collect();
        assert_eq!(answers.len(), CORPUS_MODES.len() + 1, "corpus modes + cold_rebuild");
        assert!(answers.windows(2).all(|w| w[0] == w[1]), "{answers:?}");
        // Budgeted rows must actually evict.
        let quarter = rows
            .iter()
            .find(|r| r.get("engine").and_then(Json::as_str) == Some("corpus_budget_quarter"))
            .unwrap();
        let evictions = quarter.get("cache_evictions").and_then(Json::as_f64).unwrap()
            + quarter.get("session_evictions").and_then(Json::as_f64).unwrap();
        assert!(evictions > 0.0, "a quarter budget must evict");
        let summary = parsed.get("summary").unwrap();
        assert!(summary.get("corpus_speedup").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(summary.get("corpus_working_set_bytes").and_then(Json::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn validator_rejects_corpus_documents_without_summary_keys() {
        let row = |engine: &str| {
            format!(
                "{{\"experiment\": \"corpus_serving\", \"engine\": \"{engine}\", \
                 \"tree_size\": 1, \"workload_queries\": 1, \"workload_repeats\": 1, \
                 \"docs\": 1, \"threads\": 1, \"answers\": 1, \"pool_bytes\": 0, \
                 \"median_us\": 1.0}}"
            )
        };
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{}, {}, {}, {}], \
             \"summary\": {{\"corpus_docs\": 1}}}}",
            row("corpus_pool"),
            row("corpus_budget_half"),
            row("corpus_budget_quarter"),
            row("cold_rebuild"),
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("corpus_"), "{err}");
        // A corpus document missing a serving mode is rejected.
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{}], \
             \"summary\": {{\"corpus_docs\": 1}}}}",
            row("corpus_pool"),
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("cold_rebuild"), "{err}");
        // A document with neither E10 nor corpus rows is rejected outright.
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [\
             {{\"experiment\": \"other\", \"engine\": \"x\", \"tree_size\": 1, \
               \"workload_queries\": 1, \"workload_repeats\": 1, \"median_us\": 1.0}}], \
             \"summary\": {{}}}}"
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("corpus_serving"), "{err}");
    }

    #[test]
    fn lazy_bench_emits_a_valid_document_at_tiny_sizes() {
        // Not `LazyBenchConfig::smoke()` — its 10k documents are sized for
        // the release-built CI harness, not the debug test profile.
        let cfg = LazyBenchConfig {
            tree_sizes: vec![300, 600],
            eager_max_size: 300,
            runs: 1,
        };
        let doc = run_lazy_bench(&cfg);
        let text = doc.render();
        validate_bench_json(&text).unwrap();
        let parsed = Json::parse(&text).unwrap();
        let rows = parsed.get("results").unwrap().as_arr().unwrap();
        // Lazy at both sizes, eager only at the pin size.
        let engine_sizes: Vec<(&str, f64)> = rows
            .iter()
            .map(|r| {
                (
                    r.get("engine").and_then(Json::as_str).unwrap(),
                    r.get("tree_size").and_then(Json::as_f64).unwrap(),
                )
            })
            .collect();
        assert!(engine_sizes.contains(&("kernel_lazy", 300.0)));
        assert!(engine_sizes.contains(&("kernel_lazy", 600.0)));
        assert!(engine_sizes.contains(&("kernel_adaptive_threaded", 300.0)));
        assert!(!engine_sizes.contains(&("kernel_adaptive_threaded", 600.0)));
        // Every row accounts its store occupancy.
        for row in rows {
            assert!(row.get("store_bytes").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(row.get("bytes_per_node").and_then(Json::as_f64).unwrap() > 0.0);
        }
        let summary = parsed.get("summary").unwrap();
        assert_eq!(
            summary.get("lazy_largest_tree_size").and_then(Json::as_f64),
            Some(600.0)
        );
        assert_eq!(summary.get("lazy_pin_tree_size").and_then(Json::as_f64), Some(300.0));
        assert!(summary.get("lazy_speedup").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(summary.get("lazy_bytes_per_node").and_then(Json::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn validator_rejects_lazy_documents_without_summary_keys() {
        let row = |engine: &str| {
            format!(
                "{{\"experiment\": \"lazy_large_documents\", \"engine\": \"{engine}\", \
                 \"tree_size\": 1, \"workload_queries\": 1, \"workload_repeats\": 1, \
                 \"answers\": 1, \"store_bytes\": 1, \"bytes_per_node\": 1, \
                 \"median_us\": 1.0}}"
            )
        };
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{}, {}], \
             \"summary\": {{\"lazy_largest_tree_size\": 1}}}}",
            row("kernel_lazy"),
            row("kernel_adaptive_threaded"),
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("lazy_"), "{err}");
        // A lazy document without the eager baseline is rejected.
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{}], \
             \"summary\": {{\"lazy_largest_tree_size\": 1}}}}",
            row("kernel_lazy"),
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("kernel_adaptive_threaded"), "{err}");
        // A lazy row without store accounting is rejected.
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{}, {}], \
             \"summary\": {{\"lazy_largest_tree_size\": 1, \"lazy_pin_tree_size\": 1, \
             \"lazy_pin_us\": 1, \"eager_pin_us\": 1, \"lazy_speedup\": 1, \
             \"lazy_bytes_per_node\": 1}}}}",
            row("kernel_lazy").replace("\"store_bytes\": 1, ", ""),
            row("kernel_adaptive_threaded"),
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("store_bytes"), "{err}");
    }

    #[test]
    fn incr_bench_emits_a_valid_document_at_tiny_sizes() {
        // Not `IncrBenchConfig::smoke()` — its documents are sized for the
        // release-built CI harness, not the debug test profile.
        let cfg = IncrBenchConfig {
            tree_sizes: vec![300],
            lazy_min_size: 100_000,
            runs: 1,
        };
        let doc = run_incr_bench(&cfg);
        let text = doc.render();
        validate_bench_json(&text).unwrap();
        let parsed = Json::parse(&text).unwrap();
        let rows = parsed.get("results").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), INCR_MODES.len());
        for (row, name) in rows.iter().zip(INCR_MODES) {
            assert_eq!(row.get("engine").and_then(Json::as_str), Some(name));
            assert!(row.get("answers").and_then(Json::as_f64).unwrap() > 0.0);
            assert_eq!(row.get("edits").and_then(Json::as_f64), Some(1.0));
        }
        // Only the incremental arm accounts row invalidation, and it must be
        // a small fraction of the carried cache.
        let incr = &rows[0];
        let invalidated = incr.get("rows_invalidated").and_then(Json::as_f64).unwrap();
        let total = incr.get("rows_total").and_then(Json::as_f64).unwrap();
        assert!(total > 0.0);
        assert!(invalidated < total, "{invalidated} of {total} rows dirty");
        assert!(rows[1].get("rows_total").is_none());
        let summary = parsed.get("summary").unwrap();
        assert_eq!(summary.get("incr_pin_tree_size").and_then(Json::as_f64), Some(300.0));
        assert!(summary.get("incr_speedup").and_then(Json::as_f64).unwrap() > 0.0);
        let fraction = summary.get("incr_rows_fraction").and_then(Json::as_f64).unwrap();
        assert!((0.0..1.0).contains(&fraction), "{fraction}");
    }

    #[test]
    fn validator_rejects_incr_documents_without_summary_keys() {
        let row = |engine: &str, locality: &str| {
            format!(
                "{{\"experiment\": \"incr_maintenance\", \"engine\": \"{engine}\", \
                 \"tree_size\": 1, \"workload_queries\": 1, \"workload_repeats\": 1, \
                 \"answers\": 1, \"edits\": 3, {locality}\"median_us\": 1.0}}"
            )
        };
        let rows = format!(
            "{}, {}",
            row("edit_incremental", "\"rows_invalidated\": 1, \"rows_total\": 10, "),
            row("edit_full", ""),
        );
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{rows}], \
             \"summary\": {{\"incr_pin_tree_size\": 1}}}}"
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("incr_"), "{err}");
        // An incr document without the full-recompile baseline is rejected.
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{}], \
             \"summary\": {{\"incr_pin_tree_size\": 1}}}}",
            row("edit_incremental", "\"rows_invalidated\": 1, \"rows_total\": 10, "),
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("edit_full"), "{err}");
        // An incremental row without locality accounting is rejected.
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{}, {}], \
             \"summary\": {{\"incr_pin_tree_size\": 1, \"incr_pin_us\": 1, \
             \"full_pin_us\": 1, \"incr_speedup\": 1, \"incr_rows_invalidated\": 1, \
             \"incr_rows_total\": 10, \"incr_rows_fraction\": 0.1, \
             \"incr_largest_speedup\": 1}}}}",
            row("edit_incremental", ""),
            row("edit_full", ""),
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("rows_invalidated"), "{err}");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn smoke_daemon_bench_emits_a_valid_document() {
        let doc = run_daemon_bench(&DaemonBenchConfig::smoke());
        let text = doc.render();
        validate_bench_json(&text).unwrap();
        let parsed = Json::parse(&text).unwrap();
        let rows = parsed.get("results").unwrap().as_arr().unwrap();
        // Both io modes at every swept connection count.
        assert_eq!(
            rows.len(),
            DAEMON_MODES.len() * DaemonBenchConfig::smoke().connections.len()
        );
        for (_, name) in DAEMON_MODES {
            assert!(
                rows.iter().any(|r| r.get("engine").and_then(Json::as_str) == Some(name)),
                "missing {name} rows"
            );
        }
        for row in rows {
            assert!(row.get("qps").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(row.get("connections").and_then(Json::as_f64).unwrap() >= 1.0);
        }
        let summary = parsed.get("summary").unwrap();
        assert_eq!(summary.get("daemon_pin_conns").and_then(Json::as_f64), Some(8.0));
        assert!(summary.get("daemon_speedup").and_then(Json::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn validator_rejects_daemon_documents_without_summary_keys() {
        let row = |engine: &str| {
            format!(
                "{{\"experiment\": \"daemon_serving\", \"engine\": \"{engine}\", \
                 \"tree_size\": 1, \"workload_queries\": 1, \"workload_repeats\": 1, \
                 \"connections\": 1, \"workers\": 1, \"qps\": 1, \"median_us\": 1.0}}"
            )
        };
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{}, {}], \
             \"summary\": {{\"daemon_pin_conns\": 1}}}}",
            row("daemon_epoll"),
            row("daemon_threads"),
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("daemon_"), "{err}");
        // A daemon document without the threads baseline is rejected.
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{}], \
             \"summary\": {{\"daemon_pin_conns\": 1}}}}",
            row("daemon_epoll"),
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("daemon_threads"), "{err}");
        // A daemon row without a throughput column is rejected.
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{}, {}], \
             \"summary\": {{\"daemon_pin_conns\": 1, \"daemon_epoll_pin_qps\": 1, \
             \"daemon_threads_pin_qps\": 1, \"daemon_speedup\": 1}}}}",
            row("daemon_epoll").replace("\"qps\": 1, ", ""),
            row("daemon_threads"),
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("qps"), "{err}");
    }

    #[test]
    fn smoke_router_bench_emits_a_valid_document() {
        let doc = run_router_bench(&RouterBenchConfig::smoke());
        let text = doc.render();
        validate_bench_json(&text).unwrap();
        let parsed = Json::parse(&text).unwrap();
        let rows = parsed.get("results").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), ROUTER_MODES.len());
        for name in ROUTER_MODES {
            assert!(
                rows.iter().any(|r| r.get("engine").and_then(Json::as_str) == Some(name)),
                "missing {name} row"
            );
        }
        for row in rows {
            assert!(row.get("qps").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(row.get("shards").and_then(Json::as_f64).unwrap() >= 1.0);
        }
        let kill = rows
            .iter()
            .find(|r| r.get("engine").and_then(Json::as_str) == Some("router_kill"))
            .unwrap();
        assert!(kill.get("requests_after_recovery").and_then(Json::as_f64).unwrap() > 0.0);
        let summary = parsed.get("summary").unwrap();
        assert!(summary.get("router_efficiency").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(summary.get("router_kill_failure_rate").and_then(Json::as_f64).unwrap() >= 0.0);
    }

    #[test]
    fn validator_rejects_router_documents_without_summary_keys() {
        let row = |engine: &str| {
            format!(
                "{{\"experiment\": \"router_serving\", \"engine\": \"{engine}\", \
                 \"tree_size\": 1, \"workload_queries\": 1, \"workload_repeats\": 1, \
                 \"connections\": 1, \"shards\": 1, \"qps\": 1, \"median_us\": 1.0, \
                 \"failed_requests\": 0, \"requests_after_recovery\": 1, \
                 \"failure_rate\": 0}}"
            )
        };
        let rows = format!("{}, {}, {}", row("router"), row("single_daemon"), row("router_kill"));
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{rows}], \
             \"summary\": {{\"router_shards\": 1}}}}"
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("router_"), "{err}");
        // A router document without the kill phase is rejected.
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{}, {}], \
             \"summary\": {{\"router_shards\": 1}}}}",
            row("router"),
            row("single_daemon"),
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("router_kill"), "{err}");
        // A kill row without its failure accounting is rejected.
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{}, {}, {}], \
             \"summary\": {{\"router_shards\": 1, \"router_qps\": 1, \
             \"single_daemon_qps\": 1, \"router_efficiency\": 1, \
             \"router_kill_failure_rate\": 0}}}}",
            row("router"),
            row("single_daemon"),
            row("router_kill").replace("\"failure_rate\": 0", "\"unrelated\": 0"),
        );
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("failure_rate"), "{err}");
        // A full summary with all five keys passes.
        let doc = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{rows}], \
             \"summary\": {{\"router_shards\": 1, \"router_qps\": 1, \
             \"single_daemon_qps\": 1, \"router_efficiency\": 1, \
             \"router_kill_failure_rate\": 0}}}}"
        );
        validate_bench_json(&doc).unwrap();
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_bench_json("not json").is_err());
        assert!(validate_bench_json("{}").is_err());
        assert!(
            validate_bench_json(&format!("{{\"schema\": \"{SCHEMA}\", \"results\": []}}"))
                .is_err()
        );
        let missing_key = format!(
            "{{\"schema\": \"{SCHEMA}\", \"results\": [{{\"engine\": \"ppl_cached\"}}]}}"
        );
        let err = validate_bench_json(&missing_key).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }
}
