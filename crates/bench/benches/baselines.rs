//! E4/E5/E6/E9 — baseline comparisons.
//!
//! * `naive_vs_ppl` (E4): the exponential assignment-enumeration baseline
//!   against the polynomial engine as the tuple width grows (small
//!   documents so the baseline terminates) — the crossover is immediate and
//!   widens by roughly a factor `|t|` per added variable.
//! * `varsharing_sat` (E5): cost of naive non-emptiness checking for the
//!   Prop. 3 SAT encodings as the number of propositional variables grows.
//! * `acq_vs_hcl` (E6): Yannakakis on the ACQ image of a union-free query
//!   against the Fig. 8 HCL algorithm.
//! * `corexpath1_vs_matrix` (E9): the linear-time Core XPath 1.0 set
//!   evaluator against the cubic matrix engine on `except`-free unary
//!   queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppl_xpath::{Document, Engine, PplQuery};
use xpath_acq::{answer_acq, hcl_to_acq};
use xpath_ast::binexpr::from_variable_free_path;
use xpath_ast::{parse_path, Var};
use xpath_hcl::{answer_hcl_pplbin, ppl_to_hcl};
use xpath_pplbin::{answer_binary, unary_from_root};
use xpath_tree::generate::{bibliography, restaurants, RESTAURANT_ATTRIBUTES};
use xpath_tree::NodeSet;
use xpath_workload::{encode_sat_query, encode_sat_tree, random_3sat, restaurant_query};

fn naive_vs_ppl(c: &mut Criterion) {
    let mut group = c.benchmark_group("naive_vs_ppl");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    // Small document so the naive engine terminates at width 2.
    let doc = Document::from_tree(restaurants(4, &RESTAURANT_ATTRIBUTES[..4], 3));
    for &width in &[1usize, 2] {
        let (query, vars) = restaurant_query(width);
        let compiled = PplQuery::compile_path(query.clone(), vars.clone()).unwrap();
        group.bench_with_input(BenchmarkId::new("ppl", width), &width, |b, _| {
            b.iter(|| compiled.answers(&doc).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("naive", width), &width, |b, _| {
            b.iter(|| {
                Engine::NaiveEnumeration
                    .answer(&doc, &query, &vars)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

fn varsharing_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("varsharing_sat");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &vars in &[2usize, 3] {
        let instance = random_3sat(vars, vars + 2, 17);
        let tree = encode_sat_tree(&instance);
        let (query, _) = encode_sat_query(&instance);
        let doc = Document::from_tree(tree);
        group.bench_with_input(BenchmarkId::new("naive_nonempty", vars), &vars, |b, _| {
            b.iter(|| {
                !Engine::NaiveEnumeration
                    .answer(&doc, &query, &[])
                    .unwrap()
                    .is_empty()
            })
        });
    }
    group.finish();
}

fn acq_vs_hcl(c: &mut Criterion) {
    let mut group = c.benchmark_group("acq_vs_hcl");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let doc = Document::from_tree(bibliography(80, 3));
    let ppl = parse_path(
        "descendant::book[child::author[. is $a]]/child::title[. is $t]",
    )
    .unwrap();
    let output = [Var::new("a"), Var::new("t")];
    let hcl = ppl_to_hcl(&ppl).unwrap();
    group.bench_function("hcl_fig8", |b| {
        b.iter(|| answer_hcl_pplbin(doc.tree(), &hcl, &output).unwrap().len())
    });
    group.bench_function("yannakakis", |b| {
        b.iter(|| {
            let (cq, db) = hcl_to_acq(doc.tree(), &hcl, &output).unwrap();
            answer_acq(&cq, &db).unwrap().len()
        })
    });
    group.finish();
}

fn corexpath1_vs_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("corexpath1_vs_matrix");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let doc = Document::from_tree(bibliography(150, 3));
    let query = from_variable_free_path(
        &parse_path("child::book[child::author]/child::title").unwrap(),
    )
    .unwrap();
    group.bench_function("corexpath1_sets", |b| {
        b.iter(|| unary_from_root(doc.tree(), &query).unwrap().len())
    });
    group.bench_function("matrix_cubic", |b| {
        b.iter(|| {
            answer_binary(doc.tree(), &query)
                .successors(doc.root())
                .count()
        })
    });
    group.bench_function("corexpath1_full_set", |b| {
        b.iter(|| {
            xpath_pplbin::succ_set(doc.tree(), &query, &NodeSet::full(doc.len()))
                .unwrap()
                .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    naive_vs_ppl,
    varsharing_sat,
    acq_vs_hcl,
    corexpath1_vs_matrix
);
criterion_main!(benches);
