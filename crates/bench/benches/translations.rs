//! E7/E8/E9a — translation and normalisation costs.
//!
//! * `sharing_normalisation` (E7, Lemma 3): normalising
//!   `(a₁ ∪ b₁)/(a₂ ∪ b₂)/…/(a_k ∪ b_k)` with sharing expressions stays
//!   linear in `k`, while distributing unions to the top would build `2^k`
//!   branches (the distributed size is reported by the experiments runner).
//! * `ppl_to_hcl_translation` (E8, Fig. 7 / Prop. 5): linear-time
//!   translation of PPL queries of growing size.
//! * `fo_to_xpath_translation` (E9a, Lemma 1): linear-time translation of FO
//!   formulas of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xpath_ast::parse_path;
use xpath_fo::{fo_to_xpath, Formula};
use xpath_hcl::oracle::intern_atoms;
use xpath_hcl::{ppl_to_hcl, EquationSystem, Hcl};

/// `(a ∪ b)/(a ∪ b)/… ` with `k` unions, as an HCL expression over string
/// atoms (the atoms' own size is irrelevant to Lemma 3).
fn union_chain(k: usize) -> Hcl<String> {
    let block = |i: usize| {
        Hcl::Atom(format!("a{i}")).or(Hcl::Atom(format!("b{i}")))
    };
    let mut expr = block(0);
    for i in 1..k {
        expr = expr.then(block(i));
    }
    expr
}

fn sharing_normalisation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharing_normalisation");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &k in &[4usize, 8, 16, 32, 64] {
        let expr = union_chain(k);
        let (interned, _) = intern_atoms(&expr);
        group.bench_with_input(BenchmarkId::new("lemma3", k), &interned, |b, e| {
            b.iter(|| EquationSystem::from_hcl(e).len())
        });
    }
    group.finish();
}

fn ppl_to_hcl_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppl_to_hcl_translation");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &filters in &[5usize, 10, 20, 40] {
        let mut src = String::from("descendant::record");
        for i in 0..filters {
            src.push_str(&format!("[child::a{i}[. is $v{i}]]"));
        }
        let ppl = parse_path(&src).unwrap();
        group.bench_with_input(BenchmarkId::new("fig7", filters), &ppl, |b, p| {
            b.iter(|| ppl_to_hcl(p).unwrap().size())
        });
    }
    group.finish();
}

fn fo_to_xpath_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fo_to_xpath_translation");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &conjuncts in &[8usize, 16, 32, 64] {
        let mut phi = Formula::label("l0", "x0");
        for i in 1..conjuncts {
            phi = phi.and(Formula::ch_star(&format!("x{}", i - 1), &format!("x{i}")));
        }
        group.bench_with_input(BenchmarkId::new("lemma1", conjuncts), &phi, |b, f| {
            b.iter(|| fo_to_xpath(f).size())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    sharing_normalisation,
    ppl_to_hcl_translation,
    fo_to_xpath_translation
);
criterion_main!(benches);
