//! E3 — Theorem 1: n-ary PPL query answering is
//! `O(|P|·|t|³ + n·|P|·|t|²·|A|)`.
//!
//! Three sweeps over the restaurant/bibliography workloads:
//!
//! * `ppl_nary_tree_scaling`: fixed width, growing document;
//! * `ppl_nary_width_scaling`: fixed document, tuple width `n` from 1 to 11
//!   (time grows polynomially — roughly linearly in `n·|A|` — never like
//!   `|t|ⁿ`);
//! * `ppl_nary_output_scaling`: fixed query and width, documents with
//!   increasing answer-set sizes (output sensitivity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppl_xpath::{Document, PplQuery};
use xpath_tree::generate::{bibliography, restaurants, RESTAURANT_ATTRIBUTES};
use xpath_workload::{bibliography_pairs_query, restaurant_query};

fn ppl_nary_tree_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppl_nary_tree_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let (query, vars) = bibliography_pairs_query();
    let compiled = PplQuery::compile_path(query, vars).unwrap();
    for &books in &[20usize, 40, 80, 160] {
        let doc = Document::from_tree(bibliography(books, 3));
        group.bench_with_input(BenchmarkId::new("books", books), &doc, |b, d| {
            b.iter(|| compiled.answers(d).unwrap().len())
        });
    }
    group.finish();
}

fn ppl_nary_width_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppl_nary_width_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let doc = Document::from_tree(restaurants(40, &RESTAURANT_ATTRIBUTES, 5));
    for &width in &[1usize, 3, 5, 7, 9, 11] {
        let (query, vars) = restaurant_query(width);
        let compiled = PplQuery::compile_path(query, vars).unwrap();
        group.bench_with_input(BenchmarkId::new("width", width), &compiled, |b, q| {
            b.iter(|| q.answers(&doc).unwrap().len())
        });
    }
    group.finish();
}

fn ppl_nary_output_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppl_nary_output_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    // Same tree size, growing answer sets: more authors per book means more
    // (author, title) pairs while |t| stays comparable.
    let (query, vars) = bibliography_pairs_query();
    let compiled = PplQuery::compile_path(query, vars).unwrap();
    for &max_authors in &[1usize, 2, 4, 8] {
        let doc = Document::from_tree(bibliography(60, max_authors));
        let answers = compiled.answers(&doc).unwrap().len();
        group.bench_with_input(
            BenchmarkId::new("answers", answers),
            &doc,
            |b, d| b.iter(|| compiled.answers(d).unwrap().len()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    ppl_nary_tree_scaling,
    ppl_nary_width_scaling,
    ppl_nary_output_scaling
);
criterion_main!(benches);
