//! E1/E2 — Theorem 2: PPLbin binary query answering is `O(|P|·|t|³)`.
//!
//! * `pplbin_tree_scaling` (E1): fixed query suite, random trees of growing
//!   size — the per-query time should grow roughly cubically in `|t|`
//!   (word-parallelism divides the constant, not the exponent).
//! * `pplbin_query_scaling` (E2): fixed tree, PPLbin expressions of growing
//!   size — time should grow roughly linearly in `|P|`.
//! * `matrix_product_ablation`: the word-parallel Boolean product against
//!   the naive triple loop (the design choice called out in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xpath_ast::binexpr::from_variable_free_path;
use xpath_ast::parse_path;
use xpath_pplbin::{answer_binary, step_matrix, NodeMatrix};
use xpath_tree::generate::{random_tree, TreeGenConfig, TreeShape};
use xpath_ast::NameTest;
use xpath_tree::Axis;
use xpath_workload::pplbin_suite;

fn query_suite() -> Vec<xpath_ast::BinExpr> {
    [
        "child::*/child::*",
        "descendant::l0[child::l1]",
        "descendant::* except child::*",
        "(child::l0 union child::l1)/descendant::l2",
        "child::*[not(child::l0)]",
    ]
    .iter()
    .map(|s| from_variable_free_path(&parse_path(s).unwrap()).unwrap())
    .collect()
}

fn pplbin_tree_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pplbin_tree_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let queries = query_suite();
    for &size in &[50usize, 100, 200, 400] {
        let tree = random_tree(&TreeGenConfig {
            size,
            shape: TreeShape::BoundedBranching { max_children: 4 },
            alphabet: 3,
            seed: 11,
        });
        group.bench_with_input(BenchmarkId::new("query_suite", size), &tree, |b, t| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &queries {
                    total += answer_binary(t, q).count_pairs();
                }
                total
            })
        });
    }
    group.finish();
}

fn pplbin_query_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pplbin_query_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let tree = random_tree(&TreeGenConfig {
        size: 150,
        shape: TreeShape::BoundedBranching { max_children: 4 },
        alphabet: 3,
        seed: 12,
    });
    for &levels in &[4usize, 8, 16, 32] {
        let query = pplbin_suite(levels);
        group.bench_with_input(
            BenchmarkId::new("suite_levels", levels),
            &query,
            |b, q| b.iter(|| answer_binary(&tree, q).count_pairs()),
        );
    }
    group.finish();
}

fn matrix_product_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_product_ablation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let tree = random_tree(&TreeGenConfig {
        size: 200,
        shape: TreeShape::BoundedBranching { max_children: 4 },
        alphabet: 2,
        seed: 13,
    });
    let a: NodeMatrix = step_matrix(&tree, Axis::Descendant, &NameTest::Wildcard);
    let b: NodeMatrix = step_matrix(&tree, Axis::FollowingSibling, &NameTest::Wildcard);
    group.bench_function("word_parallel", |bench| bench.iter(|| a.product(&b).count_pairs()));
    group.bench_function("naive_triple_loop", |bench| {
        bench.iter(|| a.product_naive(&b).count_pairs())
    });
    group.finish();
}

criterion_group!(
    benches,
    pplbin_tree_scaling,
    pplbin_query_scaling,
    matrix_product_ablation
);
criterion_main!(benches);
