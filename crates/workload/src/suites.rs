//! Parameterised query suites and tree sweeps for the benchmark harness.

use xpath_ast::dsl::{and_all, has, is_var, step_child, step_desc};
use xpath_ast::{BinExpr, NameTest, PathExpr, Var};
use xpath_tree::generate::{random_tree, TreeGenConfig, TreeShape};
use xpath_tree::{Axis, Tree};

/// A sweep of random trees of increasing sizes (same shape and seed base),
/// used by the `|t|`-scaling experiments.
pub fn tree_sweep(sizes: &[usize], shape: TreeShape, seed: u64) -> Vec<Tree> {
    sizes
        .iter()
        .map(|&size| {
            random_tree(&TreeGenConfig {
                size,
                shape,
                alphabet: 4,
                seed: seed ^ (size as u64),
            })
        })
        .collect()
}

/// The paper's introduction query generalised to one output variable per
/// attribute: select, per `record` element, the tuple of its attribute
/// children.
///
/// ```text
/// descendant::record[child::a1[. is $v0] and … and child::ak[. is $v{k-1}]]
/// ```
///
/// Used with the bibliography documents (`record = book`,
/// `attributes = [author, title]`) and the restaurant documents
/// (`record = restaurant`, the 11 attribute columns).
pub fn record_attributes_query(record: &str, attributes: &[&str]) -> (PathExpr, Vec<Var>) {
    assert!(!attributes.is_empty());
    let vars: Vec<Var> = (0..attributes.len())
        .map(|i| Var::new(&format!("v{i}")))
        .collect();
    let tests = attributes.iter().zip(&vars).map(|(attr, var)| {
        has(step_child(attr).filter(is_var(var.name())))
    });
    let query = step_desc(record).filter(and_all(tests));
    (query, vars)
}

/// The author–title pair query of the paper's introduction, over the
/// bibliography documents.
pub fn bibliography_pairs_query() -> (PathExpr, Vec<Var>) {
    record_attributes_query("book", &["author", "title"])
}

/// A restaurant query selecting the first `width` attribute columns
/// (`1 ≤ width ≤ 11`), exercising growing tuple widths `n`.
pub fn restaurant_query(width: usize) -> (PathExpr, Vec<Var>) {
    let attrs = &xpath_tree::generate::RESTAURANT_ATTRIBUTES[..width.clamp(1, 11)];
    record_attributes_query("restaurant", attrs)
}

/// A chain query of `k` child steps each binding a fresh variable:
/// `child::*[. is $v0]/child::*[. is $v1]/…` — selects all downward paths of
/// length `k`, with answer-set size governed by the tree shape.
pub fn chain_query(k: usize) -> (PathExpr, Vec<Var>) {
    assert!(k >= 1);
    let vars: Vec<Var> = (0..k).map(|i| Var::new(&format!("v{i}"))).collect();
    let mut query: Option<PathExpr> = None;
    for var in &vars {
        let step = PathExpr::Step(Axis::Child, NameTest::Wildcard).filter(is_var(var.name()));
        query = Some(match query {
            None => step,
            Some(acc) => acc.then(step),
        });
    }
    (query.expect("k >= 1"), vars)
}

/// A suite of PPLbin expressions of increasing size, built by repeatedly
/// composing and uniting axis steps and adding `except`/filter layers.
/// `levels` controls the size; the expression size grows linearly in it.
pub fn pplbin_suite(levels: usize) -> BinExpr {
    let step = |axis: Axis, name: Option<&str>| {
        BinExpr::Step(
            axis,
            match name {
                Some(n) => NameTest::name(n),
                None => NameTest::Wildcard,
            },
        )
    };
    let mut expr = step(Axis::Child, None);
    for i in 0..levels {
        expr = match i % 4 {
            0 => expr.then(step(Axis::Child, None)),
            1 => expr.or(step(Axis::Descendant, Some("l0"))),
            2 => BinExpr::minus(expr, step(Axis::FollowingSibling, None)),
            _ => expr.then(step(Axis::Parent, None).test()),
        };
    }
    expr
}

/// The E12 planner-comparison suite: PPL queries over the `l0…l2` generator
/// alphabet deliberately spanning the planner's decision regimes.
///
/// * step-only, union-free, acyclic queries (the `acq` regime: sparse
///   Yannakakis semijoins);
/// * `except`-bearing dense-filter queries (the `ppl` regime: cached dense
///   matrix products);
/// * a union query (distributed by the `acq` executor, native to `ppl`);
/// * an arity-0 satisfiability query.
///
/// Returned as `(source, output_variables)` pairs so callers can prepare
/// them through any planner configuration.
pub fn planner_mix_suite() -> Vec<(String, Vec<String>)> {
    let dense = "(descendant::* except child::l0)/(descendant::* except child::l1)";
    vec![
        // acq regime — plain steps, tree-shaped joins.
        (
            "descendant::l0[child::l1[. is $x]]/child::l2[. is $y]".to_string(),
            vec!["x".into(), "y".into()],
        ),
        (
            "descendant::l1[. is $x]".to_string(),
            vec!["x".into()],
        ),
        (
            "descendant::l0[child::l1][child::l2[. is $z]]".to_string(),
            vec!["z".into()],
        ),
        // ppl regime — dense complements dominate compilation.
        (
            format!("descendant::l0[not({dense})][. is $x]"),
            vec!["x".into()],
        ),
        (
            format!("descendant::l1[not({dense})][child::l2[. is $y]]"),
            vec!["y".into()],
        ),
        // union — ppl natively, acq via Prop. 9 distribution.
        (
            "descendant::l0[. is $x] union descendant::l2[. is $x]".to_string(),
            vec!["x".into()],
        ),
        // satisfiability (arity 0).
        (
            "descendant::l0[child::l1]".to_string(),
            vec![],
        ),
    ]
}

/// The E14 large-document suite over the DBLP-style documents of
/// [`xpath_tree::generate::dblp`]: queries a bibliography service would
/// actually run, weighted towards the complement-bearing forms
/// (`except` / `not(...)`) whose eager compilation densifies an
/// `|t| × |t|` matrix — the regime the lazy kernels exist for.
///
/// Returned as `(source, output_variables)` pairs, all PPL.
pub fn dblp_suite() -> Vec<(String, Vec<String>)> {
    vec![
        // Plain navigation — the eager-friendly baseline.
        (
            "descendant::article[child::author[. is $a]]/child::title[. is $t]".to_string(),
            vec!["a".into(), "t".into()],
        ),
        // Journal-less records: a complement over a selective step.
        (
            "descendant::inproceedings[not(child::journal)][. is $x]".to_string(),
            vec!["x".into()],
        ),
        // `except` on the descendant axis — eagerly a dense |t|×|t| product.
        (
            "(descendant::* except descendant::article)[child::author[. is $x]]".to_string(),
            vec!["x".into()],
        ),
        // Doubly-negated filter: records that are *not* missing a year.
        (
            "descendant::article[not(not(child::year))]/child::title[. is $t]".to_string(),
            vec!["t".into()],
        ),
        // Venue lookup under a complement — mixes both regimes.
        (
            "(descendant::* except descendant::www)[child::booktitle[. is $v]]".to_string(),
            vec!["v".into()],
        ),
        // Arity-0 satisfiability with a complement.
        (
            "descendant::phdthesis[not(child::journal)]".to_string(),
            vec![],
        ),
    ]
}

/// The E13 multi-document corpus suite: `docs` named random trees in three
/// size bands (`base`, `2·base`, `3·base` nodes, cycling) over the
/// `l0…l2` generator alphabet, so the E10/E12 query suites apply unchanged.
/// Names are zero-padded (`doc00`, `doc01`, …) so corpus name order equals
/// generation order.
pub fn corpus_documents(docs: usize, base_size: usize, seed: u64) -> Vec<(String, Tree)> {
    (0..docs)
        .map(|i| {
            let size = base_size.max(1) * (1 + i % 3);
            let shape = match i % 3 {
                0 => TreeShape::BoundedBranching { max_children: 4 },
                1 => TreeShape::RandomAttachment,
                _ => TreeShape::BoundedBranching { max_children: 2 },
            };
            let tree = random_tree(&TreeGenConfig {
                size,
                shape,
                alphabet: 3,
                seed: seed ^ ((i as u64 + 1) << 7),
            });
            (format!("doc{i:02}"), tree)
        })
        .collect()
}

/// Convenience re-export of the document generators most benches need.
pub mod documents {
    pub use xpath_tree::generate::{
        bibliography, dblp, restaurants, random_tree, TreeGenConfig, TreeShape,
        RESTAURANT_ATTRIBUTES,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_ast::ppl::check_ppl;
    use xpath_tree::generate::{bibliography, restaurants, RESTAURANT_ATTRIBUTES};

    #[test]
    fn tree_sweep_produces_requested_sizes() {
        let trees = tree_sweep(&[10, 50, 100], TreeShape::RandomAttachment, 3);
        assert_eq!(trees.iter().map(Tree::len).collect::<Vec<_>>(), vec![10, 50, 100]);
    }

    #[test]
    fn record_queries_are_ppl_and_have_the_right_arity() {
        let (q, vars) = bibliography_pairs_query();
        assert!(check_ppl(&q).is_ok());
        assert_eq!(vars.len(), 2);
        assert_eq!(
            q.to_string(),
            "descendant::book[child::author[. is $v0] and child::title[. is $v1]]"
        );

        for width in [1, 5, 11] {
            let (q, vars) = restaurant_query(width);
            assert!(check_ppl(&q).is_ok(), "width {width}");
            assert_eq!(vars.len(), width);
        }
    }

    #[test]
    fn restaurant_query_answers_scale_with_selectivity() {
        use xpath_ast::Var;
        use xpath_naive::answer_nary;
        let doc = restaurants(6, &RESTAURANT_ATTRIBUTES[..3], 3);
        let (q, vars) = record_attributes_query("restaurant", &RESTAURANT_ATTRIBUTES[..3]);
        let ans = answer_nary(&doc, &q, &vars).unwrap();
        // Every third restaurant misses its last attribute, so 4 of 6 match.
        assert_eq!(ans.len(), 4);
        let _ = Var::new("unused");
    }

    #[test]
    fn bibliography_query_counts_author_title_pairs() {
        use xpath_naive::answer_nary;
        let doc = bibliography(5, 3);
        let (q, vars) = bibliography_pairs_query();
        let ans = answer_nary(&doc, &q, &vars).unwrap();
        // Books have 1 + (i mod 3) authors and one title each:
        // 1 + 2 + 3 + 1 + 2 = 9 pairs.
        assert_eq!(ans.len(), 9);
    }

    #[test]
    fn chain_queries_are_ppl_and_follow_paths() {
        use xpath_naive::answer_nary;
        let (q, vars) = chain_query(3);
        assert!(check_ppl(&q).is_ok());
        assert_eq!(vars.len(), 3);
        let t = Tree::from_terms("a(b(c(d)),e)").unwrap();
        let ans = answer_nary(&t, &q, &vars).unwrap();
        // Downward paths of length 3 starting anywhere: only b→c→d... and
        // they must be consecutive children: (b,c,d) from a, so 1 tuple.
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn planner_mix_suite_spans_the_decision_regimes() {
        use xpath_ast::parse_path;
        let suite = planner_mix_suite();
        assert!(suite.len() >= 6);
        let mut has_union = false;
        let mut has_dense = false;
        let mut has_zero_ary = false;
        for (src, vars) in &suite {
            let q = parse_path(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert!(check_ppl(&q).is_ok(), "{src} must be PPL");
            has_union |= src.contains("union");
            has_dense |= src.contains("except");
            has_zero_ary |= vars.is_empty();
        }
        assert!(has_union && has_dense && has_zero_ary);
    }

    #[test]
    fn dblp_suite_is_ppl_and_answers_on_dblp_documents() {
        use xpath_ast::{parse_path, Var};
        use xpath_naive::answer_nary;
        use xpath_tree::generate::dblp;
        // Small document: the reference engine is naive (polynomial of high
        // degree on `except` queries), and selectivity is all we check here.
        let doc = dblp(90, 0xD8_1F);
        let suite = dblp_suite();
        assert!(suite.len() >= 5);
        let mut complements = 0;
        let mut nonempty = 0;
        for (src, vars) in &suite {
            let q = parse_path(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert!(check_ppl(&q).is_ok(), "{src} must be PPL");
            if src.contains("except") || src.contains("not(") {
                complements += 1;
            }
            let vars: Vec<Var> = vars.iter().map(|v| Var::new(v)).collect();
            let ans = answer_nary(&doc, &q, &vars).unwrap();
            if !ans.is_empty() {
                nonempty += 1;
            }
        }
        // The suite must stress the lazy regime, not just plain steps…
        assert!(complements >= 4, "only {complements} complement queries");
        // …and actually select something on the documents it is meant for.
        assert!(nonempty >= 4, "only {nonempty} non-empty answers");
    }

    #[test]
    fn corpus_documents_have_banded_sizes_and_stable_names() {
        let docs = corpus_documents(7, 40, 0xC0FF);
        assert_eq!(docs.len(), 7);
        let names: Vec<&str> = docs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names[..3], ["doc00", "doc01", "doc02"]);
        let sizes: Vec<usize> = docs.iter().map(|(_, t)| t.len()).collect();
        assert_eq!(&sizes[..6], &[40, 80, 120, 40, 80, 120]);
        // Labels come from the l0..l2 alphabet so the E10/E12 suites apply.
        for (name, tree) in &docs {
            for node in tree.nodes() {
                assert!(
                    matches!(tree.label_str(node), "l0" | "l1" | "l2"),
                    "{name}: unexpected label {}",
                    tree.label_str(node)
                );
            }
        }
        // Deterministic per seed, distinct across seeds.
        let again = corpus_documents(7, 40, 0xC0FF);
        assert_eq!(docs[3].1.to_terms(), again[3].1.to_terms());
        let other = corpus_documents(7, 40, 0xBEEF);
        assert_ne!(docs[3].1.to_terms(), other[3].1.to_terms());
    }

    #[test]
    fn pplbin_suite_grows_linearly() {
        let sizes: Vec<usize> = (0..8).map(|l| pplbin_suite(l).size()).collect();
        for w in sizes.windows(2) {
            assert!(w[1] > w[0]);
            assert!(w[1] - w[0] <= 4);
        }
    }
}
