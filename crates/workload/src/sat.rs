//! Random 3-SAT instances and the Proposition 3 reduction.
//!
//! Proposition 3 of the paper: query non-emptiness for Core XPath 2.0
//! *without* `for` loops and *without* variables below negation is
//! NP-complete, by reduction from SAT.  "The encoding of Sat relies on using
//! variable sharing between different branches of compositions" — exactly
//! the sharing that PPL's NVS conditions forbid.
//!
//! The concrete encoding used here:
//!
//! * **Tree**: `formula(var_1(true,false), …, var_n(true,false))` — one
//!   subtree per propositional variable with its two possible values.
//! * **Query**: a chain of filters on the root node,
//!
//!   ```text
//!   .[not(parent::*)]
//!     [child::var_i/child::*[. is $x_i]]              (for every variable i)
//!     [child::var_j/child::pol[. is $x_j] or …]       (for every clause)
//!   ```
//!
//!   where `pol ∈ {true, false}` is the polarity of each literal.  The first
//!   group forces every `$x_i` to denote one of the two value nodes of
//!   `var_i` (a truth assignment); each clause filter re-uses the same
//!   variables — the query is non-empty iff the instance is satisfiable.
//!
//! The query satisfies N(for) and NV(not) but violates NVS([]) / NVS(and),
//! so the PPL checker rejects it — the benchmark experiment E5 uses it to
//! show both the rejection and the exponential cost of the naive engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpath_ast::dsl::{at_root, has, is_var, or, seq, step_child};
use xpath_ast::{PathExpr, TestExpr, Var};
use xpath_tree::{Tree, TreeBuilder};

/// A propositional literal: variable index (0-based) and polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Literal {
    /// 0-based variable index.
    pub var: usize,
    /// `true` for a positive literal, `false` for a negated one.
    pub positive: bool,
}

/// A 3-SAT instance (clauses may have 1–3 literals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatInstance {
    /// Number of propositional variables.
    pub num_vars: usize,
    /// The clauses (disjunctions of literals).
    pub clauses: Vec<Vec<Literal>>,
}

impl SatInstance {
    /// Evaluate the instance under an assignment (indexed by variable).
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|lit| assignment[lit.var] == lit.positive)
        })
    }

    /// Brute-force satisfiability test (exponential; for validation only).
    pub fn brute_force_satisfiable(&self) -> bool {
        let n = self.num_vars;
        assert!(n <= 24, "brute force limited to small instances");
        (0u32..(1 << n)).any(|bits| {
            let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            self.evaluate(&assignment)
        })
    }
}

/// Generate a random 3-SAT instance with the given number of variables and
/// clauses (deterministic for a fixed seed).
pub fn random_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> SatInstance {
    assert!(num_vars >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let clauses = (0..num_clauses)
        .map(|_| {
            let mut lits = Vec::with_capacity(3);
            while lits.len() < 3 {
                let var = rng.gen_range(0..num_vars);
                if lits.iter().any(|l: &Literal| l.var == var) {
                    if num_vars < 3 {
                        break; // small instances cannot have 3 distinct vars
                    }
                    continue;
                }
                lits.push(Literal {
                    var,
                    positive: rng.gen_bool(0.5),
                });
            }
            lits
        })
        .collect();
    SatInstance { num_vars, clauses }
}

/// Build the encoding tree `formula(var_1(true,false), …)`.
pub fn encode_sat_tree(instance: &SatInstance) -> Tree {
    let mut b = TreeBuilder::new();
    b.open("formula");
    for i in 0..instance.num_vars {
        b.open(&format!("var{i}"));
        b.leaf("true");
        b.leaf("false");
        b.close();
    }
    b.close();
    b.finish().expect("sat tree is balanced")
}

/// Build the encoding query (Prop. 3).  Returns the query and the node
/// variables `$x_i` used for the truth assignment.
pub fn encode_sat_query(instance: &SatInstance) -> (PathExpr, Vec<Var>) {
    let vars: Vec<Var> = (0..instance.num_vars)
        .map(|i| Var::new(&format!("x{i}")))
        .collect();

    let mut query = at_root();

    // Assignment filters: $x_i must be one of the value nodes of var_i.
    for (i, var) in vars.iter().enumerate() {
        let value_of_var = seq(
            step_child(&format!("var{i}")),
            PathExpr::Filter(
                Box::new(step_child("true").or_path(step_child("false"))),
                Box::new(is_var(var.name())),
            ),
        );
        query = query.filter(has(value_of_var));
    }

    // Clause filters: at least one literal of the clause is witnessed by the
    // shared assignment variable pointing at the right polarity node.
    for clause in &instance.clauses {
        let mut clause_test: Option<TestExpr> = None;
        for lit in clause {
            let polarity = if lit.positive { "true" } else { "false" };
            let literal_path = seq(
                step_child(&format!("var{}", lit.var)),
                PathExpr::Filter(
                    Box::new(step_child(polarity)),
                    Box::new(is_var(vars[lit.var].name())),
                ),
            );
            let literal_test = has(literal_path);
            clause_test = Some(match clause_test {
                None => literal_test,
                Some(acc) => or(acc, literal_test),
            });
        }
        if let Some(test) = clause_test {
            query = query.filter(test);
        }
    }

    (query, vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_ast::ppl::{check_ppl, Restriction};
    use xpath_naive::answer_nary;

    #[test]
    fn evaluate_and_brute_force() {
        // (x0 ∨ ¬x1) ∧ (¬x0 ∨ x1)
        let inst = SatInstance {
            num_vars: 2,
            clauses: vec![
                vec![
                    Literal { var: 0, positive: true },
                    Literal { var: 1, positive: false },
                ],
                vec![
                    Literal { var: 0, positive: false },
                    Literal { var: 1, positive: true },
                ],
            ],
        };
        assert!(inst.evaluate(&[true, true]));
        assert!(!inst.evaluate(&[true, false]));
        assert!(inst.brute_force_satisfiable());

        // x0 ∧ ¬x0 is unsatisfiable.
        let unsat = SatInstance {
            num_vars: 1,
            clauses: vec![
                vec![Literal { var: 0, positive: true }],
                vec![Literal { var: 0, positive: false }],
            ],
        };
        assert!(!unsat.brute_force_satisfiable());
    }

    #[test]
    fn random_instances_are_deterministic_and_well_formed() {
        let a = random_3sat(5, 12, 99);
        let b = random_3sat(5, 12, 99);
        assert_eq!(a, b);
        assert_eq!(a.clauses.len(), 12);
        assert!(a.clauses.iter().all(|c| !c.is_empty() && c.len() <= 3));
        assert!(a
            .clauses
            .iter()
            .all(|c| c.iter().all(|l| l.var < a.num_vars)));
        let c = random_3sat(5, 12, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn encoding_tree_shape() {
        let inst = random_3sat(4, 6, 1);
        let tree = encode_sat_tree(&inst);
        assert_eq!(tree.len(), 1 + 3 * 4);
        assert_eq!(tree.nodes_with_label_str("true").len(), 4);
        assert_eq!(tree.nodes_with_label_str("false").len(), 4);
    }

    #[test]
    fn encoded_queries_violate_nvs_but_not_nfor_or_nvnot() {
        let inst = random_3sat(3, 4, 7);
        let (query, _) = encode_sat_query(&inst);
        let violations = check_ppl(&query).unwrap_err();
        assert!(violations
            .iter()
            .all(|v| !matches!(v.restriction, Restriction::NoFor | Restriction::NoVarsInNot)));
        assert!(violations.iter().any(|v| matches!(
            v.restriction,
            Restriction::NoSharingInFilter | Restriction::NoSharingInAnd
        )));
    }

    #[test]
    fn reduction_is_correct_on_small_instances() {
        // Non-emptiness of the encoded query ⇔ satisfiability, checked with
        // the naive engine (Boolean query: empty output tuple).
        for seed in 0..6 {
            let inst = random_3sat(3, 5, seed);
            let tree = encode_sat_tree(&inst);
            let (query, _vars) = encode_sat_query(&inst);
            let nonempty = !answer_nary(&tree, &query, &[]).unwrap().is_empty();
            assert_eq!(
                nonempty,
                inst.brute_force_satisfiable(),
                "reduction incorrect for seed {seed}: {inst:?}"
            );
        }
        // A designed unsatisfiable instance maps to an empty query.
        let unsat = SatInstance {
            num_vars: 2,
            clauses: vec![
                vec![Literal { var: 0, positive: true }],
                vec![Literal { var: 0, positive: false }],
            ],
        };
        let tree = encode_sat_tree(&unsat);
        let (query, _) = encode_sat_query(&unsat);
        assert!(answer_nary(&tree, &query, &[]).unwrap().is_empty());
    }

    #[test]
    fn satisfying_assignments_correspond_to_answer_tuples() {
        // With the assignment variables as outputs, every answer tuple is a
        // satisfying assignment (value nodes of the right polarity).
        let inst = SatInstance {
            num_vars: 2,
            clauses: vec![vec![
                Literal { var: 0, positive: true },
                Literal { var: 1, positive: true },
            ]],
        };
        let tree = encode_sat_tree(&inst);
        let (query, vars) = encode_sat_query(&inst);
        let answers = answer_nary(&tree, &query, &vars).unwrap();
        // 3 of the 4 assignments satisfy x0 ∨ x1.
        assert_eq!(answers.len(), 3);
        for tuple in &answers {
            let values: Vec<&str> = tuple.iter().map(|&n| tree.label_str(n)).collect();
            let assignment: Vec<bool> = values.iter().map(|&v| v == "true").collect();
            assert!(inst.evaluate(&assignment), "{values:?}");
        }
    }
}
