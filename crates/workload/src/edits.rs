//! Random edit scripts over live documents.
//!
//! The incremental-maintenance machinery (`xpath_pplbin::store::MatrixStore
//! ::apply_edit` and everything above it) is only trustworthy if a *long,
//! adversarial* sequence of edits keeps every engine's answers identical to
//! a from-scratch recompile.  This module generates those sequences: each
//! [`ScriptEdit`] is drawn against the *current* tree (node ids shift under
//! every structural edit, so a script cannot be generated up front against
//! the start tree), with a mix of subtree inserts at random positions,
//! subtree deletes, and relabels both into and out of the live alphabet.
//!
//! The differential harness (`crates/core/tests/edit_fuzz.rs`,
//! `run_edit_fuzz`) replays these scripts and compares all four engines
//! tuple-for-tuple against cold sessions after every step.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpath_tree::generate::{random_tree, TreeGenConfig, TreeShape};
use xpath_tree::{EditDelta, NodeId, Tree, TreeError};

/// One edit of a random script, expressed against the tree it was drawn
/// for (preorder node ids, like the `MUTATE` protocol verbs).
#[derive(Debug, Clone)]
pub enum ScriptEdit {
    /// Splice a subtree under `parent` before its `index`-th child.
    Insert {
        /// Preorder id of the parent node.
        parent: u32,
        /// Child position to insert at.
        index: usize,
        /// The spliced subtree.
        subtree: Tree,
    },
    /// Remove the subtree rooted at `node`.
    Delete {
        /// Preorder id of the subtree root.
        node: u32,
    },
    /// Rename `node` to `label`.
    Relabel {
        /// Preorder id of the node.
        node: u32,
        /// The new label.
        label: String,
    },
}

impl ScriptEdit {
    /// Apply this edit to `tree` (persistent: returns the edited copy and
    /// its delta, the input is untouched).
    pub fn apply(&self, tree: &Tree) -> Result<(Tree, EditDelta), TreeError> {
        match self {
            ScriptEdit::Insert { parent, index, subtree } => {
                tree.insert_subtree(NodeId(*parent), *index, subtree)
            }
            ScriptEdit::Delete { node } => tree.delete_subtree(NodeId(*node)),
            ScriptEdit::Relabel { node, label } => tree.relabel(NodeId(*node), label),
        }
    }
}

/// Draw one valid random edit against `tree`.
///
/// The mix is deliberately adversarial for the incremental caches: inserts
/// land anywhere (including before node 0's first child and past the last
/// child — the append path), deletes pick any non-root subtree (so whole
/// regions of every axis relation disappear), and relabels draw from
/// `l0..l<alphabet>` *plus* a label outside the generator alphabet, so
/// name-test subterms gain and lose their label entirely.
pub fn random_edit(tree: &Tree, alphabet: usize, rng: &mut StdRng) -> ScriptEdit {
    let n = tree.len() as u32;
    let label = |rng: &mut StdRng| -> String {
        // One slot past the alphabet: a label no name test of the suite
        // matches, exercising the relabel-to-unknown path.
        format!("l{}", rng.gen_range(0..alphabet + 1))
    };
    // Deletes are only legal off-root; on a 1-node tree, insert.
    let kind = if n <= 1 { 0 } else { rng.gen_range(0..4u32) };
    match kind {
        // Insert twice as often as the others: scripts must grow on
        // average or long scripts collapse to the root.
        0 | 1 => {
            let parent = rng.gen_range(0..n);
            let children = tree.children(NodeId(parent)).count();
            let subtree = if rng.gen_range(0..4u32) == 0 {
                // Occasionally a bushier subtree, not just a leaf.
                random_tree(&TreeGenConfig {
                    size: rng.gen_range(2..6),
                    shape: TreeShape::RandomAttachment,
                    alphabet,
                    seed: rng.gen_range(0..u64::MAX / 2),
                })
            } else {
                Tree::from_terms(&label(rng)).expect("a single label is valid term syntax")
            };
            ScriptEdit::Insert {
                parent,
                index: rng.gen_range(0..=children),
                subtree,
            }
        }
        2 => ScriptEdit::Delete { node: rng.gen_range(1..n) },
        _ => ScriptEdit::Relabel { node: rng.gen_range(0..n), label: label(rng) },
    }
}

/// Generate a script of `edits` random edits starting from `start`, each
/// drawn against the tree produced by the previous one.  Returns the edits
/// paired with the tree each produces (so a harness can check intermediate
/// states without re-applying).
pub fn random_edit_script(
    start: &Tree,
    edits: usize,
    alphabet: usize,
    seed: u64,
) -> Vec<(ScriptEdit, Tree)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = start.clone();
    let mut script = Vec::with_capacity(edits);
    for _ in 0..edits {
        let edit = random_edit(&tree, alphabet, &mut rng);
        let (next, _) = edit
            .apply(&tree)
            .expect("random_edit only draws valid edits");
        tree = next;
        script.push((edit, tree.clone()));
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A canonical rendering for equality checks (`Tree`'s `Debug` goes
    /// through a `HashMap`, so it is not order-stable).
    fn edit_key(e: &ScriptEdit) -> String {
        match e {
            ScriptEdit::Insert { parent, index, subtree } => {
                format!("I {parent} {index} {}", subtree.to_terms())
            }
            ScriptEdit::Delete { node } => format!("D {node}"),
            ScriptEdit::Relabel { node, label } => format!("R {node} {label}"),
        }
    }

    #[test]
    fn scripts_are_deterministic_and_stay_valid() {
        let start = random_tree(&TreeGenConfig {
            size: 10,
            shape: TreeShape::RandomAttachment,
            alphabet: 3,
            seed: 7,
        });
        let a = random_edit_script(&start, 24, 3, 42);
        let b = random_edit_script(&start, 24, 3, 42);
        assert_eq!(a.len(), 24);
        for ((ea, ta), (eb, tb)) in a.iter().zip(&b) {
            assert_eq!(
                edit_key(ea),
                edit_key(eb),
                "same seed must give the same script"
            );
            assert_eq!(ta.to_terms(), tb.to_terms());
            assert!(!ta.is_empty());
        }
        // Different seeds diverge.
        let c = random_edit_script(&start, 24, 3, 43);
        assert!(a
            .iter()
            .zip(&c)
            .any(|((ea, _), (ec, _))| edit_key(ea) != edit_key(ec)));
    }

    #[test]
    fn scripts_mix_all_three_edit_kinds() {
        let start = random_tree(&TreeGenConfig {
            size: 12,
            shape: TreeShape::BoundedBranching { max_children: 3 },
            alphabet: 3,
            seed: 1,
        });
        let script = random_edit_script(&start, 64, 3, 9);
        let inserts = script
            .iter()
            .filter(|(e, _)| matches!(e, ScriptEdit::Insert { .. }))
            .count();
        let deletes = script
            .iter()
            .filter(|(e, _)| matches!(e, ScriptEdit::Delete { .. }))
            .count();
        let relabels = script
            .iter()
            .filter(|(e, _)| matches!(e, ScriptEdit::Relabel { .. }))
            .count();
        assert!(inserts > 0 && deletes > 0 && relabels > 0, "{script:?}");
        assert_eq!(inserts + deletes + relabels, 64);
    }
}
