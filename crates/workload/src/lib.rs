//! # `xpath_workload` — workloads for the benchmark harness and the tests
//!
//! The paper is a theory paper: its "evaluation" is a set of complexity
//! theorems.  To validate their *shape* empirically we need controllable
//! workloads; this crate provides them:
//!
//! * [`suites`] — parameterised query suites over the bibliography and
//!   restaurant documents of `xpath_tree::generate` (the documents the
//!   paper's introduction motivates), plus PPLbin query generators of
//!   controllable size and sweeps of tree sizes;
//! * [`sat`] — random 3-SAT instances and the Proposition 3 reduction from
//!   SAT to query non-emptiness of Core XPath 2.0 *with* variable sharing
//!   (the hardness side that motivates the NVS restrictions of PPL);
//! * [`edits`] — random edit scripts over live documents, the input to the
//!   differential edit-fuzz that validates incremental matrix maintenance.

#![forbid(unsafe_code)]

pub mod edits;
pub mod sat;
pub mod suites;

pub use edits::{random_edit, random_edit_script, ScriptEdit};
pub use sat::{encode_sat_query, encode_sat_tree, random_3sat, SatInstance};
pub use suites::{
    bibliography_pairs_query, chain_query, corpus_documents, dblp_suite, planner_mix_suite,
    pplbin_suite, restaurant_query, tree_sweep,
};
