//! The `pplxd` line-protocol wire layer, shared by every speaker of the
//! protocol: the daemon's serving loops (`xpath_corpus::server`), the
//! sharding router (`xpath_corpus::router`), and the `pplx --connect`
//! client.
//!
//! The protocol is line-based: one request line in, a status line plus
//! zero or more payload lines out.  `OK <n>` is followed by exactly `n`
//! payload lines; `ERR <message>` stands alone.  This crate owns the three
//! transport-adjacent pieces every endpoint needs and none should
//! reimplement:
//!
//! * **bounded request-line reads** — [`read_request_line`] caps memory at
//!   `max_len` bytes no matter what the peer streams, drains overlong
//!   lines, and keeps the connection in sync ([`LineRead`]);
//! * **response framing** — [`render_response`] encodes a command result
//!   into wire bytes, [`parse_status`] decodes a status line back into
//!   a payload count or error;
//! * **[`ShardClient`]** — a blocking-with-deadlines client connection:
//!   connect and per-response read deadlines, bounded exponential-backoff
//!   reconnect, bounded retry on `ECONNREFUSED` (startup races), and
//!   failure-injection hooks ([`ShardClient::kill_connection`],
//!   [`ShardClient::inject_status_line`]) used by the router's fault plan
//!   and the fuzz harness.
//!
//! Nothing here knows about commands or corpora: parsing `LOAD`/`QUERY`
//! verbs stays in `xpath_corpus::protocol`; this crate moves bytes with
//! bounded memory and bounded time.

#![forbid(unsafe_code)]

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Outcome of one bounded request-line read.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line (without the trailing newline / CRLF).
    Line(String),
    /// The line exceeded the cap; the remainder has been drained, the
    /// connection is still in sync.
    TooLong,
    /// End of stream.
    Eof,
}

/// Discard input up to and including the next newline.  Returns `false` at
/// end of stream.
fn drain_line<R: BufRead>(reader: &mut R) -> io::Result<bool> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(false);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(true);
            }
            None => {
                let len = available.len();
                reader.consume(len);
            }
        }
    }
}

/// Read one request line of at most `max_len` bytes (newline excluded).
///
/// Unlike `BufRead::lines`, memory use is bounded by `max_len` no matter
/// what the peer sends: an overlong line is consumed (not buffered) up to
/// its newline and reported as [`LineRead::TooLong`], leaving the stream
/// positioned at the next request so the connection stays usable.
pub fn read_request_line<R: BufRead>(reader: &mut R, max_len: usize) -> io::Result<LineRead> {
    let mut buf = Vec::new();
    // `take` bounds what read_until may buffer; one extra byte distinguishes
    // "exactly max_len" from "longer than max_len".
    let n = reader
        .by_ref()
        .take(max_len as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    } else if n > max_len {
        // Overlong: skip to the end of the offending line.
        if !drain_line(reader)? {
            return Ok(LineRead::Eof);
        }
        return Ok(LineRead::TooLong);
    }
    // Non-UTF-8 bytes only ever reach the command parser, which will reject
    // the verb; mangling them lossily beats killing the connection.
    Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()))
}

/// Serialise one command result into wire bytes: `OK <n>` plus `n` payload
/// lines, or a single `ERR <message>` line.
pub fn render_response(result: &Result<Vec<String>, String>) -> Vec<u8> {
    let mut out = Vec::new();
    match result {
        Ok(lines) => {
            out.extend_from_slice(format!("OK {}\n", lines.len()).as_bytes());
            for line in lines {
                out.extend_from_slice(line.as_bytes());
                out.push(b'\n');
            }
        }
        Err(message) => {
            out.extend_from_slice(b"ERR ");
            out.extend_from_slice(message.replace('\n', " | ").as_bytes());
            out.push(b'\n');
        }
    }
    out
}

/// Decode one status line: `Ok(Ok(n))` for `OK <n>`, `Ok(Err(msg))` for
/// `ERR <msg>`, and `Err(description)` for anything else (a truncated or
/// garbage response from a sick peer).
pub fn parse_status(line: &str) -> Result<Result<usize, String>, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(message) = line.strip_prefix("ERR ") {
        return Ok(Err(message.to_string()));
    }
    if let Some(n) = line.strip_prefix("OK ") {
        if let Ok(count) = n.trim().parse::<usize>() {
            return Ok(Ok(count));
        }
    }
    let mut shown: String = line.chars().take(80).collect();
    if shown.len() < line.len() {
        shown.push('…');
    }
    Err(format!("malformed response line '{shown}'"))
}

/// A daemon-level response: payload lines (`OK`) or the daemon's error
/// message (`ERR`).  Distinct from [`WireError`], which means the *wire*
/// failed — no well-formed response arrived at all.
pub type Response = Result<Vec<String>, String>;

// -- request-line builders ---------------------------------------------------
//
// The protocol's request grammar lives with the daemon
// (`xpath_corpus::protocol::parse_command`); clients that want to *compose*
// requests rather than pass user text through get builders here so the
// `MUTATE` argument order is written down exactly once on the client side.
// (`xpath_corpus`'s protocol tests round-trip these through the real
// parser.)

/// Build a `MUTATE <doc> INSERT <parent> <index> <terms>` request line:
/// splice `terms` (compact term syntax) under preorder node `parent` before
/// its `index`-th child.
pub fn mutate_insert_line(doc: &str, parent: u32, index: usize, terms: &str) -> String {
    format!("MUTATE {doc} INSERT {parent} {index} {terms}")
}

/// Build a `MUTATE <doc> DELETE <node>` request line: remove the subtree
/// rooted at preorder node `node`.
pub fn mutate_delete_line(doc: &str, node: u32) -> String {
    format!("MUTATE {doc} DELETE {node}")
}

/// Build a `MUTATE <doc> RELABEL <node> <label>` request line: rename
/// preorder node `node` to `label`, keeping the tree shape.
pub fn mutate_relabel_line(doc: &str, node: u32, label: &str) -> String {
    format!("MUTATE {doc} RELABEL {node} {label}")
}

/// Why a [`ShardClient`] request produced no response.
#[derive(Debug)]
pub enum WireError {
    /// Transport failure: connect, send, or receive.
    Io(io::Error),
    /// The peer did not produce a complete response within the read
    /// deadline.
    Timeout,
    /// The peer answered with bytes that do not decode as a response.
    Protocol(String),
    /// Reconnect suppressed: the exponential-backoff window from earlier
    /// connect failures has not elapsed yet (fail-fast, no socket touched).
    Backoff,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Timeout => write!(f, "timed out waiting for response"),
            WireError::Protocol(m) => write!(f, "protocol: {m}"),
            WireError::Backoff => write!(f, "reconnect backoff in effect"),
        }
    }
}

impl std::error::Error for WireError {}

/// Deadlines and reconnect policy of a [`ShardClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for one TCP connect attempt (`None`: block indefinitely).
    pub connect_timeout: Option<Duration>,
    /// Deadline for one complete response (status line + payload), applied
    /// per request (`None`: block indefinitely).
    pub read_timeout: Option<Duration>,
    /// Extra connect attempts on `ECONNREFUSED` before giving up — the
    /// daemon-startup race where the port is bound a beat after the client
    /// runs.  Attempts are spaced by the growing backoff delay.
    pub connect_retries: u32,
    /// First reconnect backoff delay; doubles per consecutive connect
    /// failure.
    pub backoff_initial: Duration,
    /// Backoff ceiling (the "bounded" in bounded exponential backoff).
    pub backoff_max: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(5)),
            connect_retries: 3,
            backoff_initial: Duration::from_millis(20),
            backoff_max: Duration::from_millis(500),
        }
    }
}

/// One client connection to a line-protocol peer (a `pplxd` daemon or
/// router), with deadlines on every blocking step and bounded
/// exponential-backoff reconnect.
///
/// The connection is established lazily on the first [`ShardClient::request`]
/// and re-established transparently after failures — but never before the
/// current backoff window has elapsed, so a dead peer costs callers a
/// fail-fast [`WireError::Backoff`] instead of a connect timeout each time.
/// Any mid-response failure (timeout, garbage, truncation) drops the
/// connection: a late or half-delivered response would desynchronise every
/// request after it, and reconnecting is the only safe resync.
#[derive(Debug)]
pub struct ShardClient {
    addr: String,
    config: ClientConfig,
    conn: Option<BufReader<TcpStream>>,
    /// Requests failed since the last success (transport failures only;
    /// daemon `ERR` responses are healthy).
    consecutive_failures: u32,
    /// Current reconnect backoff delay.
    backoff: Duration,
    /// Earliest next connect attempt; `None` when no backoff is in effect.
    retry_at: Option<Instant>,
    /// Failure injection: the next response's status line is replaced with
    /// this string instead of being read from the socket.
    injected_status: Option<String>,
}

impl ShardClient {
    /// A client for `addr` (resolved lazily at connect time).
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> ShardClient {
        let backoff = config.backoff_initial.max(Duration::from_millis(1));
        ShardClient {
            addr: addr.into(),
            config,
            conn: None,
            consecutive_failures: 0,
            backoff,
            retry_at: None,
            injected_status: None,
        }
    }

    /// The peer address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Is a connection currently established?
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Transport failures since the last successful request.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Failure injection: drop the connection as if the peer died
    /// mid-conversation.  The next request reconnects (subject to backoff).
    pub fn kill_connection(&mut self) {
        self.conn = None;
    }

    /// Failure injection: serve `line` as the next response's status line
    /// instead of reading one from the socket, exercising the decode path
    /// with truncated/garbage input.  Whatever the peer really sent stays
    /// unread, so — exactly like a real desync — the connection is dropped
    /// after the injected response is processed.
    pub fn inject_status_line(&mut self, line: impl Into<String>) {
        self.injected_status = Some(line.into());
    }

    /// Send one request line and read its complete response under the
    /// configured deadlines.  `Ok(Ok(payload))` / `Ok(Err(daemon_message))`
    /// are both *successful* round trips; `Err(_)` means the wire failed
    /// and the connection (if any) has been dropped.
    pub fn request(&mut self, line: &str) -> Result<Response, WireError> {
        let injected = self.injected_status.is_some();
        match self.try_request(line) {
            Ok(response) => {
                self.consecutive_failures = 0;
                // An injected status line left the peer's real response
                // unread: the connection is desynchronised by construction,
                // even when the injected bytes parsed cleanly (an `ERR`
                // poisoning reads as a healthy daemon error).  Drop it now —
                // the stale-byte peek alone would race the in-flight reply.
                if injected {
                    self.conn = None;
                }
                Ok(response)
            }
            Err(e) => {
                // A failed response leaves the stream in an unknown state;
                // resync by reconnecting.  Backoff windows are armed by
                // connect failures, not response failures.
                if !matches!(e, WireError::Backoff) {
                    self.conn = None;
                    self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                }
                Err(e)
            }
        }
    }

    fn try_request(&mut self, line: &str) -> Result<Response, WireError> {
        // A request/response connection must be *quiet* between requests.
        // Readable bytes before we even send — a daemon's unsolicited
        // `ERR idle timeout` goodbye, or EOF from a dead peer — mean any
        // reply we read would answer nothing we asked; reconnect instead
        // of misreading stale bytes as the next response.
        if let Some(conn) = &mut self.conn {
            if connection_is_stale(conn) {
                self.conn = None;
            }
        }
        self.ensure_connected()?;
        let injected = self.injected_status.take();
        let deadline = self.config.read_timeout.map(|t| Instant::now() + t);
        let conn = self.conn.as_mut().expect("ensure_connected succeeded");

        {
            let stream = conn.get_mut();
            stream.write_all(line.as_bytes()).map_err(WireError::Io)?;
            stream.write_all(b"\n").map_err(WireError::Io)?;
        }

        let status = match injected {
            Some(status) => status,
            None => read_line_deadline(conn, deadline)?,
        };
        let count = match parse_status(&status).map_err(WireError::Protocol)? {
            Err(message) => return Ok(Err(message)),
            Ok(count) => count,
        };
        let mut payload = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let line = read_line_deadline(conn, deadline)?;
            payload.push(line);
        }
        Ok(Ok(payload))
    }

    /// Establish the connection if needed.  Respects the backoff window;
    /// retries `ECONNREFUSED` up to `connect_retries` times (startup race).
    fn ensure_connected(&mut self) -> Result<(), WireError> {
        if self.conn.is_some() {
            return Ok(());
        }
        if let Some(at) = self.retry_at {
            if Instant::now() < at {
                return Err(WireError::Backoff);
            }
        }
        let mut refused_budget = self.config.connect_retries;
        let stream = loop {
            match self.connect_once() {
                Ok(stream) => break stream,
                Err(e) => {
                    let refused = e.kind() == io::ErrorKind::ConnectionRefused;
                    if refused && refused_budget > 0 {
                        refused_budget -= 1;
                        std::thread::sleep(self.backoff);
                        self.grow_backoff();
                        continue;
                    }
                    // Arm the backoff window for the *next* call.
                    self.retry_at = Some(Instant::now() + self.backoff);
                    self.grow_backoff();
                    return Err(WireError::Io(e));
                }
            }
        };
        // Responses are small and latency-bound; Nagle + delayed ACK would
        // stall pipelined request/response turns.
        let _ = stream.set_nodelay(true);
        stream
            .set_write_timeout(self.config.read_timeout)
            .map_err(WireError::Io)?;
        self.conn = Some(BufReader::new(stream));
        self.retry_at = None;
        self.backoff = self.config.backoff_initial.max(Duration::from_millis(1));
        Ok(())
    }

    fn connect_once(&self) -> io::Result<TcpStream> {
        match self.config.connect_timeout {
            Some(timeout) => {
                let addr = resolve(&self.addr)?;
                TcpStream::connect_timeout(&addr, timeout)
            }
            None => TcpStream::connect(&self.addr),
        }
    }

    fn grow_backoff(&mut self) {
        let max = self.config.backoff_max.max(Duration::from_millis(1));
        self.backoff = (self.backoff * 2).min(max);
    }
}

/// Is there anything to read on a connection that should be quiet?
/// Leftover buffered bytes, unsolicited input, a pending error, or EOF all
/// mean the stream is desynchronised from the request/response rhythm.
fn connection_is_stale(conn: &mut BufReader<TcpStream>) -> bool {
    if !conn.buffer().is_empty() {
        return true;
    }
    let stream = conn.get_mut();
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let stale = match stream.peek(&mut probe) {
        Ok(_) => true, // unsolicited bytes (n > 0) or EOF (n == 0)
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    stream.set_nonblocking(false).is_err() || stale
}

fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, format!("cannot resolve {addr}")))
}

/// Read one response line with the remaining slice of `deadline` as the
/// socket read timeout.  EOF mid-response and an elapsed deadline are both
/// failures — a half-response is never returned.
fn read_line_deadline(
    conn: &mut BufReader<TcpStream>,
    deadline: Option<Instant>,
) -> Result<String, WireError> {
    let mut line = String::new();
    loop {
        if let Some(deadline) = deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(WireError::Timeout);
            }
            conn.get_mut()
                .set_read_timeout(Some(deadline - now))
                .map_err(WireError::Io)?;
        }
        match conn.read_line(&mut line) {
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-response",
                )))
            }
            Ok(_) => {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                return Ok(line);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(WireError::Timeout)
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::net::TcpListener;
    use std::sync::mpsc;

    #[test]
    fn bounded_line_reads_cap_memory_and_stay_in_sync() {
        let mut r = Cursor::new(b"short\r\nexactly8\nwaaaaaay too long line\nnext\ntail".to_vec());
        let next = |r: &mut Cursor<Vec<u8>>| read_request_line(r, 8).unwrap();
        assert!(matches!(next(&mut r), LineRead::Line(l) if l == "short"));
        assert!(matches!(next(&mut r), LineRead::Line(l) if l == "exactly8"));
        // The overlong line is consumed, not buffered, and the stream is
        // positioned at the next request.
        assert!(matches!(next(&mut r), LineRead::TooLong));
        assert!(matches!(next(&mut r), LineRead::Line(l) if l == "next"));
        // Final line without a newline, within the cap.
        assert!(matches!(next(&mut r), LineRead::Line(l) if l == "tail"));
        assert!(matches!(next(&mut r), LineRead::Eof));
        // An overlong line that hits EOF before its newline is EOF, not a
        // request.
        let mut r = Cursor::new(b"0123456789 endless".to_vec());
        assert!(matches!(read_request_line(&mut r, 8).unwrap(), LineRead::Eof));
    }

    #[test]
    fn response_framing_round_trips() {
        let ok = render_response(&Ok(vec!["a".into(), "b".into()]));
        assert_eq!(ok, b"OK 2\na\nb\n");
        let err = render_response(&Err("boom\nbang".into()));
        assert_eq!(err, b"ERR boom | bang\n");

        assert_eq!(parse_status("OK 2"), Ok(Ok(2)));
        assert_eq!(parse_status("OK 0\r\n"), Ok(Ok(0)));
        assert_eq!(parse_status("ERR boom | bang"), Ok(Err("boom | bang".into())));
        assert!(parse_status("OK nope").is_err());
        assert!(parse_status("HTTP/1.1 200 OK").is_err());
        assert!(parse_status("").is_err());
        // Garbage is truncated in the error text, not echoed wholesale.
        let e = parse_status(&"x".repeat(500)).unwrap_err();
        assert!(e.len() < 200, "{e}");
    }

    /// A scripted peer: accepts one connection per script entry and writes
    /// the scripted bytes in response to each received line.
    fn scripted_server(scripts: Vec<Vec<&'static [u8]>>) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for script in scripts {
                let (mut stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for response in script {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    stream.write_all(response).unwrap();
                }
                // Connection closes when the script (and stream) drop.
            }
        });
        (addr, handle)
    }

    fn fast_config() -> ClientConfig {
        ClientConfig {
            connect_timeout: Some(Duration::from_millis(500)),
            read_timeout: Some(Duration::from_millis(300)),
            connect_retries: 0,
            backoff_initial: Duration::from_millis(5),
            backoff_max: Duration::from_millis(40),
        }
    }

    #[test]
    fn request_round_trips_ok_and_err_responses() {
        let (addr, server) = scripted_server(vec![vec![
            b"OK 2\nvars=a tuples=1\na#2\n" as &[u8],
            b"ERR unknown document 'x'\n",
        ]]);
        let mut client = ShardClient::new(addr.to_string(), fast_config());
        assert_eq!(
            client.request("QUERY d child::a -> a").unwrap(),
            Ok(vec!["vars=a tuples=1".to_string(), "a#2".to_string()])
        );
        // A daemon ERR is a *successful* round trip: the wire is healthy.
        assert_eq!(
            client.request("QUERY x child::a").unwrap(),
            Err("unknown document 'x'".to_string())
        );
        assert_eq!(client.consecutive_failures(), 0);
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn garbage_status_line_is_a_protocol_error_and_reconnects() {
        let (addr, server) = scripted_server(vec![
            vec![b"!!not a response!!\n" as &[u8]],
            vec![b"OK 0\n" as &[u8]],
        ]);
        let mut client = ShardClient::new(addr.to_string(), fast_config());
        let err = client.request("STATS").unwrap_err();
        assert!(matches!(err, WireError::Protocol(_)), "{err}");
        assert!(!client.is_connected(), "desynced connection must drop");
        assert_eq!(client.consecutive_failures(), 1);
        // The next request reconnects and succeeds.
        assert_eq!(client.request("STATS").unwrap(), Ok(vec![]));
        assert_eq!(client.consecutive_failures(), 0);
        server.join().unwrap();
    }

    #[test]
    fn truncated_payload_is_an_error_never_a_partial_response() {
        // Promises 3 payload lines, delivers 1, then closes.
        let (addr, server) =
            scripted_server(vec![vec![b"OK 3\nonly-one\n" as &[u8]]]);
        let mut client = ShardClient::new(addr.to_string(), fast_config());
        let err = client.request("STATS").unwrap_err();
        assert!(
            matches!(&err, WireError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof),
            "{err}"
        );
        server.join().unwrap();
    }

    #[test]
    fn slow_peer_times_out_instead_of_hanging() {
        // Accepts, reads the request, never answers.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            let _ = done_rx.recv(); // hold the socket open, silent
        });
        let mut client = ShardClient::new(addr.to_string(), fast_config());
        let start = Instant::now();
        let err = client.request("STATS").unwrap_err();
        assert!(matches!(err, WireError::Timeout), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline must bound the wait"
        );
        drop(done_tx);
        server.join().unwrap();
    }

    /// A response slower than the deadline is indistinguishable from a dead
    /// peer mid-flight: the client must time out AND resync by dropping the
    /// connection, or the late bytes would answer the *next* request.
    #[test]
    fn late_response_does_not_answer_the_next_request() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: answer after the client's deadline.
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            std::thread::sleep(Duration::from_millis(500));
            let _ = stream.write_all(b"OK 1\nstale\n");
            // Second connection: answer promptly.
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            stream.write_all(b"OK 1\nfresh\n").unwrap();
        });
        let mut client = ShardClient::new(addr.to_string(), fast_config());
        assert!(matches!(client.request("STATS").unwrap_err(), WireError::Timeout));
        // Wait out the stale bytes; a resynced client never sees them.
        std::thread::sleep(Duration::from_millis(600));
        assert_eq!(
            client.request("STATS").unwrap(),
            Ok(vec!["fresh".to_string()])
        );
        server.join().unwrap();
    }

    #[test]
    fn refused_connects_back_off_and_fail_fast() {
        // Nothing listens here: bind-then-drop reserves a dead port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut config = fast_config();
        config.connect_retries = 2;
        let mut client = ShardClient::new(addr.to_string(), config);
        let err = client.request("STATS").unwrap_err();
        assert!(matches!(&err, WireError::Io(_)), "{err}");
        // Immediately after the failure the backoff window is armed: the
        // next request fails fast without touching the socket.
        let start = Instant::now();
        let err = client.request("STATS").unwrap_err();
        assert!(matches!(err, WireError::Backoff), "{err}");
        assert!(start.elapsed() < Duration::from_millis(50));
        // The window is bounded: after it elapses, a real attempt happens
        // again (and fails with Io, not Backoff).
        std::thread::sleep(Duration::from_millis(60));
        let err = client.request("STATS").unwrap_err();
        assert!(matches!(err, WireError::Io(_)), "{err}");
    }

    #[test]
    fn refused_retry_rides_out_a_startup_race() {
        // The "daemon" binds only after a delay; a client with retries must
        // connect anyway.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe); // port free (and refusing) until the server binds it
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            let listener = TcpListener::bind(addr).unwrap();
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            stream.write_all(b"OK 1\nhello\n").unwrap();
        });
        let mut config = fast_config();
        config.connect_retries = 20;
        let mut client = ShardClient::new(addr.to_string(), config);
        assert_eq!(
            client.request("STATS").unwrap(),
            Ok(vec!["hello".to_string()])
        );
        server.join().unwrap();
    }

    /// A daemon that idle-closes a connection says `ERR idle timeout` and
    /// hangs up — *unsolicited* bytes from the client's point of view.  The
    /// next request must not misread that goodbye as its response: the
    /// client detects the stale connection and reconnects.
    #[test]
    fn stale_unsolicited_bytes_reconnect_instead_of_misreading() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: one real answer, then an unsolicited
            // goodbye line and a close.
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            stream.write_all(b"OK 0\n").unwrap();
            stream
                .write_all(b"ERR idle timeout, closing connection\n")
                .unwrap();
            drop(stream);
            // Second connection: a clean answer.
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            stream.write_all(b"OK 1\nfresh\n").unwrap();
        });
        let mut client = ShardClient::new(addr.to_string(), fast_config());
        assert_eq!(client.request("STATS").unwrap(), Ok(vec![]));
        // Give the goodbye time to arrive in the client's socket buffer.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            client.request("STATS").unwrap(),
            Ok(vec!["fresh".to_string()]),
            "the stale goodbye must never be returned as a response"
        );
        server.join().unwrap();
    }

    #[test]
    fn injection_hooks_kill_and_poison() {
        let (addr, server) = scripted_server(vec![
            vec![b"OK 0\n" as &[u8], b"OK 0\n"],
            vec![b"OK 0\n" as &[u8]],
        ]);
        let mut client = ShardClient::new(addr.to_string(), fast_config());
        assert_eq!(client.request("STATS").unwrap(), Ok(vec![]));

        // Poisoned status: the injected garbage exercises the real decode
        // path and desyncs the connection exactly like wire garbage.
        client.inject_status_line("\0\0garbage\0");
        let err = client.request("STATS").unwrap_err();
        assert!(matches!(err, WireError::Protocol(_)), "{err}");
        assert!(!client.is_connected());

        // Kill: the next request transparently reconnects.
        assert_eq!(client.request("STATS").unwrap(), Ok(vec![]));
        client.kill_connection();
        assert!(!client.is_connected());
        server.join().unwrap();
    }
}
