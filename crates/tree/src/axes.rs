//! The XPath axes of Core XPath 2.0 (Fig. 1 of the paper) over [`Tree`]s.
//!
//! The paper's syntax uses the axes `self`, `child`, `parent`, `descendant`,
//! `ancestor`, `following_sibling` and `preceding_sibling`.  We additionally
//! provide the reflexive closures `descendant-or-self`, `ancestor-or-self`,
//! `following-sibling-or-self` and `preceding-sibling-or-self`, which the
//! translations in the paper construct as `(descendant::* union .)` etc.
//!
//! Each axis `A` denotes a binary relation `A(t) ⊆ nodes(t)²` relating a
//! *start* node to a *target* node.  [`Tree::axis_iter`] enumerates targets
//! for a start node, [`Axis::relates`] decides membership of a pair in O(1),
//! and [`Axis::inverse`] gives the converse axis.

use crate::nodeset::NodeSet;
use crate::tree::{NodeId, Tree};
use std::fmt;

/// An XPath navigation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// `self::` — the identity relation.
    SelfAxis,
    /// `child::`
    Child,
    /// `parent::`
    Parent,
    /// `descendant::` (strict)
    Descendant,
    /// `descendant-or-self::` (the `ch*` relation)
    DescendantOrSelf,
    /// `ancestor::` (strict)
    Ancestor,
    /// `ancestor-or-self::`
    AncestorOrSelf,
    /// `following_sibling::` (strict)
    FollowingSibling,
    /// `following-sibling-or-self::` (the `ns*` relation)
    FollowingSiblingOrSelf,
    /// `preceding_sibling::` (strict)
    PrecedingSibling,
    /// `preceding-sibling-or-self::`
    PrecedingSiblingOrSelf,
    /// `next-sibling` — the one-step `ns` relation (not an XPath surface axis,
    /// but part of the FO signature used by the paper).
    NextSibling,
    /// `previous-sibling` — inverse of [`Axis::NextSibling`].
    PrevSibling,
    /// `first-child` — the `firstchild` relation used in the binary encoding.
    FirstChild,
}

/// All axes expressible in the paper's surface syntax (Fig. 1).
pub const SURFACE_AXES: [Axis; 7] = [
    Axis::SelfAxis,
    Axis::Child,
    Axis::Parent,
    Axis::Descendant,
    Axis::Ancestor,
    Axis::FollowingSibling,
    Axis::PrecedingSibling,
];

/// Every axis supported by the engine, including derived ones.
pub const ALL_AXES: [Axis; 14] = [
    Axis::SelfAxis,
    Axis::Child,
    Axis::Parent,
    Axis::Descendant,
    Axis::DescendantOrSelf,
    Axis::Ancestor,
    Axis::AncestorOrSelf,
    Axis::FollowingSibling,
    Axis::FollowingSiblingOrSelf,
    Axis::PrecedingSibling,
    Axis::PrecedingSiblingOrSelf,
    Axis::NextSibling,
    Axis::PrevSibling,
    Axis::FirstChild,
];

impl Axis {
    /// The XPath surface name of the axis.
    pub fn name(self) -> &'static str {
        match self {
            Axis::SelfAxis => "self",
            Axis::Child => "child",
            Axis::Parent => "parent",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::FollowingSibling => "following_sibling",
            Axis::FollowingSiblingOrSelf => "following-sibling-or-self",
            Axis::PrecedingSibling => "preceding_sibling",
            Axis::PrecedingSiblingOrSelf => "preceding-sibling-or-self",
            Axis::NextSibling => "next-sibling",
            Axis::PrevSibling => "previous-sibling",
            Axis::FirstChild => "first-child",
        }
    }

    /// Parse an axis name as it appears in query syntax.  Accepts both
    /// `following_sibling` (paper spelling) and `following-sibling` (XPath
    /// spelling).
    pub fn parse(name: &str) -> Option<Axis> {
        Some(match name {
            "self" => Axis::SelfAxis,
            "child" => Axis::Child,
            "parent" => Axis::Parent,
            "descendant" => Axis::Descendant,
            "descendant-or-self" | "descendant_or_self" => Axis::DescendantOrSelf,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" | "ancestor_or_self" => Axis::AncestorOrSelf,
            "following_sibling" | "following-sibling" => Axis::FollowingSibling,
            "following-sibling-or-self" | "following_sibling_or_self" => {
                Axis::FollowingSiblingOrSelf
            }
            "preceding_sibling" | "preceding-sibling" => Axis::PrecedingSibling,
            "preceding-sibling-or-self" | "preceding_sibling_or_self" => {
                Axis::PrecedingSiblingOrSelf
            }
            "next-sibling" | "next_sibling" => Axis::NextSibling,
            "previous-sibling" | "previous_sibling" => Axis::PrevSibling,
            "first-child" | "first_child" => Axis::FirstChild,
            _ => return None,
        })
    }

    /// The inverse (converse) relation of the axis.
    pub fn inverse(self) -> Axis {
        match self {
            Axis::SelfAxis => Axis::SelfAxis,
            Axis::Child => Axis::Parent,
            Axis::Parent => Axis::Child,
            Axis::Descendant => Axis::Ancestor,
            Axis::DescendantOrSelf => Axis::AncestorOrSelf,
            Axis::Ancestor => Axis::Descendant,
            Axis::AncestorOrSelf => Axis::DescendantOrSelf,
            Axis::FollowingSibling => Axis::PrecedingSibling,
            Axis::FollowingSiblingOrSelf => Axis::PrecedingSiblingOrSelf,
            Axis::PrecedingSibling => Axis::FollowingSibling,
            Axis::PrecedingSiblingOrSelf => Axis::FollowingSiblingOrSelf,
            Axis::NextSibling => Axis::PrevSibling,
            Axis::PrevSibling => Axis::NextSibling,
            Axis::FirstChild => Axis::Parent, // inverse of first-child ⊆ parent; see `relates`
        }
    }

    /// Is the axis reflexive (contains the identity)?
    pub fn is_reflexive(self) -> bool {
        matches!(
            self,
            Axis::SelfAxis
                | Axis::DescendantOrSelf
                | Axis::AncestorOrSelf
                | Axis::FollowingSiblingOrSelf
                | Axis::PrecedingSiblingOrSelf
        )
    }

    /// Does `(start, target)` belong to the axis relation in `tree`?
    ///
    /// O(1) for every axis thanks to pre/post numbers and sibling indices.
    pub fn relates(self, tree: &Tree, start: NodeId, target: NodeId) -> bool {
        match self {
            Axis::SelfAxis => start == target,
            Axis::Child => tree.is_child(target, start),
            Axis::Parent => tree.parent(start) == Some(target),
            Axis::Descendant => tree.is_descendant(target, start),
            Axis::DescendantOrSelf => tree.is_descendant_or_self(target, start),
            Axis::Ancestor => tree.is_ancestor(start, target),
            Axis::AncestorOrSelf => start == target || tree.is_ancestor(start, target),
            Axis::FollowingSibling => tree.is_following_sibling(target, start),
            Axis::FollowingSiblingOrSelf => tree.is_following_sibling_or_self(target, start),
            Axis::PrecedingSibling => tree.is_following_sibling(start, target),
            Axis::PrecedingSiblingOrSelf => tree.is_following_sibling_or_self(start, target),
            Axis::NextSibling => tree.is_next_sibling(start, target),
            Axis::PrevSibling => tree.is_next_sibling(target, start),
            Axis::FirstChild => tree.first_child(start) == Some(target),
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Iterator over the targets of an axis from a fixed start node, in document
/// order for downward/forward axes and reverse document order for upward/
/// backward axes (matching XPath's notion of axis direction).
pub struct AxisIter<'t> {
    tree: &'t Tree,
    axis: Axis,
    state: AxisState,
}

enum AxisState {
    Done,
    Single(NodeId),
    Siblings(NodeId),
    Preceding(NodeId),
    Up(NodeId),
    /// Depth-first walk of a subtree: stack of nodes still to visit.
    Descend(Vec<NodeId>),
}

impl Tree {
    /// Iterate over all `v` such that `(start, v)` is in the `axis` relation.
    pub fn axis_iter(&self, axis: Axis, start: NodeId) -> AxisIter<'_> {
        let state = match axis {
            Axis::SelfAxis => AxisState::Single(start),
            Axis::Child => match self.first_child(start) {
                Some(c) => AxisState::Siblings(c),
                None => AxisState::Done,
            },
            Axis::Parent => match self.parent(start) {
                Some(p) => AxisState::Single(p),
                None => AxisState::Done,
            },
            Axis::FirstChild => match self.first_child(start) {
                Some(c) => AxisState::Single(c),
                None => AxisState::Done,
            },
            Axis::NextSibling => match self.next_sibling(start) {
                Some(s) => AxisState::Single(s),
                None => AxisState::Done,
            },
            Axis::PrevSibling => match self.prev_sibling(start) {
                Some(s) => AxisState::Single(s),
                None => AxisState::Done,
            },
            Axis::Descendant => {
                let mut stack: Vec<NodeId> = self.children(start).collect();
                stack.reverse();
                AxisState::Descend(stack)
            }
            Axis::DescendantOrSelf => AxisState::Descend(vec![start]),
            Axis::Ancestor => match self.parent(start) {
                Some(p) => AxisState::Up(p),
                None => AxisState::Done,
            },
            Axis::AncestorOrSelf => AxisState::Up(start),
            Axis::FollowingSibling => match self.next_sibling(start) {
                Some(s) => AxisState::Siblings(s),
                None => AxisState::Done,
            },
            Axis::FollowingSiblingOrSelf => AxisState::Siblings(start),
            Axis::PrecedingSibling => match self.prev_sibling(start) {
                Some(s) => AxisState::Preceding(s),
                None => AxisState::Done,
            },
            Axis::PrecedingSiblingOrSelf => AxisState::Preceding(start),
        };
        AxisIter {
            tree: self,
            axis,
            state,
        }
    }

    /// Collect the axis targets into a vector (document order for forward
    /// axes, reverse document order for reverse axes).
    pub fn axis_nodes(&self, axis: Axis, start: NodeId) -> Vec<NodeId> {
        self.axis_iter(axis, start).collect()
    }

    /// Compute the *successor set* `S_A(N) = { v' | ∃ v ∈ N. A(v, v') }` of a
    /// node set under an axis.  This is the linear-time primitive of the
    /// Core XPath 1.0 algorithm (Gottlob–Koch–Pichler) recalled in Section 4
    /// of the paper: each call is `O(|t|)`.
    pub fn axis_successors(&self, axis: Axis, set: &NodeSet) -> NodeSet {
        let n = self.len();
        let mut out = NodeSet::empty(n);
        match axis {
            Axis::SelfAxis => out.union_with(set),
            Axis::Child => {
                // v' is a child of some v ∈ N  ⇔  parent(v') ∈ N.
                for v in self.nodes() {
                    if let Some(p) = self.parent(v) {
                        if set.contains(p) {
                            out.insert(v);
                        }
                    }
                }
            }
            Axis::Parent => {
                for v in self.nodes() {
                    if set.contains(v) {
                        if let Some(p) = self.parent(v) {
                            out.insert(p);
                        }
                    }
                }
            }
            Axis::FirstChild => {
                for v in self.nodes() {
                    if set.contains(v) {
                        if let Some(c) = self.first_child(v) {
                            out.insert(c);
                        }
                    }
                }
            }
            Axis::NextSibling => {
                for v in self.nodes() {
                    if set.contains(v) {
                        if let Some(s) = self.next_sibling(v) {
                            out.insert(s);
                        }
                    }
                }
            }
            Axis::PrevSibling => {
                for v in self.nodes() {
                    if set.contains(v) {
                        if let Some(s) = self.prev_sibling(v) {
                            out.insert(s);
                        }
                    }
                }
            }
            Axis::Descendant | Axis::DescendantOrSelf => {
                // Single top-down pass: v' is a descendant of some v ∈ N iff
                // its parent is in N or is itself below N.  Document order
                // guarantees parents are processed first.
                let reflexive = axis.is_reflexive();
                let mut below = vec![false; n];
                for v in self.nodes() {
                    let from_parent = self
                        .parent(v)
                        .map(|p| below[p.index()] || set.contains(p))
                        .unwrap_or(false);
                    below[v.index()] = from_parent;
                    if from_parent || (reflexive && set.contains(v)) {
                        out.insert(v);
                    }
                }
            }
            Axis::Ancestor | Axis::AncestorOrSelf => {
                // Single bottom-up pass in reverse document order.
                let reflexive = axis.is_reflexive();
                let mut above = vec![false; n];
                for v in self.nodes().rev() {
                    let from_children = self
                        .children(v)
                        .any(|c| above[c.index()] || set.contains(c));
                    above[v.index()] = from_children;
                    if from_children || (reflexive && set.contains(v)) {
                        out.insert(v);
                    }
                }
            }
            Axis::FollowingSibling | Axis::FollowingSiblingOrSelf => {
                let reflexive = axis.is_reflexive();
                // Left-to-right pass over each sibling chain.
                let mut seen_before = vec![false; n];
                for v in self.nodes() {
                    let from_prev = self
                        .prev_sibling(v)
                        .map(|s| seen_before[s.index()] || set.contains(s))
                        .unwrap_or(false);
                    seen_before[v.index()] = from_prev;
                    if from_prev || (reflexive && set.contains(v)) {
                        out.insert(v);
                    }
                }
            }
            Axis::PrecedingSibling | Axis::PrecedingSiblingOrSelf => {
                let reflexive = axis.is_reflexive();
                let mut seen_after = vec![false; n];
                for v in self.nodes().rev() {
                    let from_next = self
                        .next_sibling(v)
                        .map(|s| seen_after[s.index()] || set.contains(s))
                        .unwrap_or(false);
                    seen_after[v.index()] = from_next;
                    if from_next || (reflexive && set.contains(v)) {
                        out.insert(v);
                    }
                }
            }
        }
        out
    }
}

impl<'t> Iterator for AxisIter<'t> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        match &mut self.state {
            AxisState::Done => None,
            AxisState::Single(n) => {
                let n = *n;
                self.state = AxisState::Done;
                Some(n)
            }
            AxisState::Siblings(n) => {
                let cur = *n;
                self.state = match self.tree.next_sibling(cur) {
                    Some(s) => AxisState::Siblings(s),
                    None => AxisState::Done,
                };
                Some(cur)
            }
            AxisState::Preceding(n) => {
                let cur = *n;
                self.state = match self.tree.prev_sibling(cur) {
                    Some(s) => AxisState::Preceding(s),
                    None => AxisState::Done,
                };
                Some(cur)
            }
            AxisState::Up(n) => {
                let cur = *n;
                self.state = match self.tree.parent(cur) {
                    Some(p) => AxisState::Up(p),
                    None => AxisState::Done,
                };
                Some(cur)
            }
            AxisState::Descend(stack) => {
                let cur = stack.pop()?;
                let mut kids: Vec<NodeId> = self.tree.children(cur).collect();
                kids.reverse();
                stack.extend(kids);
                Some(cur)
            }
        }
    }
}

impl<'t> AxisIter<'t> {
    /// The axis this iterator enumerates.
    pub fn axis(&self) -> Axis {
        self.axis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tree;

    fn sample() -> Tree {
        // a(b(d,e),c(f(g),h))
        Tree::from_terms("a(b(d,e),c(f(g),h))").unwrap()
    }

    fn by_label(t: &Tree, l: &str) -> NodeId {
        t.nodes_with_label_str(l)[0]
    }

    fn labels(t: &Tree, nodes: &[NodeId]) -> Vec<String> {
        nodes.iter().map(|&n| t.label_str(n).to_string()).collect()
    }

    #[test]
    fn axis_names_round_trip() {
        for axis in ALL_AXES {
            assert_eq!(Axis::parse(axis.name()), Some(axis), "{axis:?}");
        }
        assert_eq!(Axis::parse("bogus"), None);
        assert_eq!(Axis::parse("following-sibling"), Some(Axis::FollowingSibling));
    }

    #[test]
    fn inverse_is_involutive() {
        for axis in ALL_AXES {
            if axis == Axis::FirstChild {
                continue; // inverse(first-child) is approximated by parent
            }
            assert_eq!(axis.inverse().inverse(), axis, "{axis:?}");
        }
    }

    #[test]
    fn child_and_parent() {
        let t = sample();
        let a = t.root();
        assert_eq!(labels(&t, &t.axis_nodes(Axis::Child, a)), vec!["b", "c"]);
        let d = by_label(&t, "d");
        assert_eq!(labels(&t, &t.axis_nodes(Axis::Parent, d)), vec!["b"]);
        assert!(t.axis_nodes(Axis::Parent, a).is_empty());
        assert_eq!(labels(&t, &t.axis_nodes(Axis::FirstChild, a)), vec!["b"]);
    }

    #[test]
    fn descendant_and_ancestor() {
        let t = sample();
        let c = by_label(&t, "c");
        assert_eq!(
            labels(&t, &t.axis_nodes(Axis::Descendant, c)),
            vec!["f", "g", "h"]
        );
        assert_eq!(
            labels(&t, &t.axis_nodes(Axis::DescendantOrSelf, c)),
            vec!["c", "f", "g", "h"]
        );
        let g = by_label(&t, "g");
        assert_eq!(
            labels(&t, &t.axis_nodes(Axis::Ancestor, g)),
            vec!["f", "c", "a"]
        );
        assert_eq!(
            labels(&t, &t.axis_nodes(Axis::AncestorOrSelf, g)),
            vec!["g", "f", "c", "a"]
        );
    }

    #[test]
    fn sibling_axes() {
        let t = sample();
        let d = by_label(&t, "d");
        let e = by_label(&t, "e");
        assert_eq!(labels(&t, &t.axis_nodes(Axis::FollowingSibling, d)), vec!["e"]);
        assert_eq!(
            labels(&t, &t.axis_nodes(Axis::FollowingSiblingOrSelf, d)),
            vec!["d", "e"]
        );
        assert_eq!(labels(&t, &t.axis_nodes(Axis::PrecedingSibling, e)), vec!["d"]);
        assert_eq!(
            labels(&t, &t.axis_nodes(Axis::PrecedingSiblingOrSelf, e)),
            vec!["e", "d"]
        );
        assert_eq!(labels(&t, &t.axis_nodes(Axis::NextSibling, d)), vec!["e"]);
        assert_eq!(labels(&t, &t.axis_nodes(Axis::PrevSibling, e)), vec!["d"]);
        assert!(t.axis_nodes(Axis::FollowingSibling, e).is_empty());
    }

    #[test]
    fn relates_agrees_with_iteration() {
        let t = sample();
        for axis in ALL_AXES {
            for u in t.nodes() {
                let targets: std::collections::HashSet<_> =
                    t.axis_iter(axis, u).collect();
                for v in t.nodes() {
                    assert_eq!(
                        axis.relates(&t, u, v),
                        targets.contains(&v),
                        "axis {axis:?} disagreement at ({u}, {v})"
                    );
                }
            }
        }
    }

    #[test]
    fn successor_sets_agree_with_pairwise_relation() {
        let t = sample();
        for axis in ALL_AXES {
            // Try a few start sets: singletons and the whole domain.
            let mut sets: Vec<NodeSet> = t
                .nodes()
                .map(|n| {
                    let mut s = NodeSet::empty(t.len());
                    s.insert(n);
                    s
                })
                .collect();
            sets.push(NodeSet::full(t.len()));
            for set in sets {
                let succ = t.axis_successors(axis, &set);
                for v in t.nodes() {
                    let expected = set.iter().any(|u| axis.relates(&t, u, v));
                    assert_eq!(
                        succ.contains(v),
                        expected,
                        "axis {axis:?}, set {:?}, target {v}",
                        set.iter().collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    #[test]
    fn self_axis_is_identity() {
        let t = sample();
        for u in t.nodes() {
            assert_eq!(t.axis_nodes(Axis::SelfAxis, u), vec![u]);
        }
    }

    #[test]
    fn display_uses_surface_names() {
        assert_eq!(Axis::FollowingSibling.to_string(), "following_sibling");
        assert_eq!(Axis::SelfAxis.to_string(), "self");
    }
}
