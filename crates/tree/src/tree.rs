//! Arena-based storage for unranked, sibling-ordered, labelled trees.
//!
//! A [`Tree`] owns all of its nodes in flat vectors indexed by [`NodeId`].
//! The representation keeps, per node: parent, first child, next sibling,
//! previous sibling, label id, depth and pre/post-order numbers.  Pre/post
//! numbers let the transitive-closure axes (`descendant`, `ancestor`,
//! `following-sibling*`, …) be decided in O(1) per node pair, which the
//! evaluation algorithms in the sibling crates rely on.

use crate::{TreeError, TreeBuilder};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node inside one [`Tree`].
///
/// Node ids are dense indices `0..tree.len()`, with `0` always being the
/// root.  Ids are only meaningful relative to the tree that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The root node of every tree.
    pub const ROOT: NodeId = NodeId(0);

    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Interned label (element name) inside one [`Tree`].
///
/// Labels model the alphabet Σ of the paper.  Interning keeps per-node
/// storage small and makes label tests O(1) integer comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl Label {
    /// The dense index of this label in the tree's label table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct NodeRec {
    parent: u32,
    first_child: u32,
    last_child: u32,
    next_sibling: u32,
    prev_sibling: u32,
    label: u32,
    depth: u32,
    /// Preorder number (== NodeId for trees built in document order).
    pre: u32,
    /// Postorder number.
    post: u32,
    /// Index of this node among its siblings (0-based).
    child_index: u32,
}

/// An unranked, sibling-ordered, labelled tree.
///
/// Construct trees with [`TreeBuilder`], [`Tree::from_terms`], the XML parser
/// in the `xpath_xml` crate, or the generators in [`crate::generate`].
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<NodeRec>,
    labels: Vec<String>,
    label_ids: HashMap<String, u32>,
    /// Nodes grouped by label, in document order, for fast `lab_a` scans.
    by_label: Vec<Vec<NodeId>>,
}

impl Tree {
    pub(crate) fn from_builder_parts(
        parents: Vec<u32>,
        labels_per_node: Vec<u32>,
        labels: Vec<String>,
        label_ids: HashMap<String, u32>,
    ) -> Result<Tree, TreeError> {
        if parents.is_empty() {
            return Err(TreeError::EmptyTree);
        }
        let n = parents.len();
        let mut nodes: Vec<NodeRec> = (0..n)
            .map(|i| NodeRec {
                parent: parents[i],
                first_child: NIL,
                last_child: NIL,
                next_sibling: NIL,
                prev_sibling: NIL,
                label: labels_per_node[i],
                depth: 0,
                pre: i as u32,
                post: 0,
                child_index: 0,
            })
            .collect();

        // Children were appended in document order (builder guarantees the
        // parent id is smaller than the child id), so a single forward pass
        // wires sibling links and depths.
        for i in 1..n {
            let p = nodes[i].parent as usize;
            debug_assert!(p < i, "builder must emit parents before children");
            nodes[i].depth = nodes[p].depth + 1;
            if nodes[p].first_child == NIL {
                nodes[p].first_child = i as u32;
                nodes[p].last_child = i as u32;
                nodes[i].child_index = 0;
            } else {
                let prev = nodes[p].last_child;
                nodes[prev as usize].next_sibling = i as u32;
                nodes[i].prev_sibling = prev;
                nodes[i].child_index = nodes[prev as usize].child_index + 1;
                nodes[p].last_child = i as u32;
            }
        }

        let mut tree = Tree {
            nodes,
            labels,
            label_ids,
            by_label: Vec::new(),
        };
        tree.compute_postorder();
        tree.index_labels();
        Ok(tree)
    }

    fn compute_postorder(&mut self) {
        // Iterative postorder numbering.
        let n = self.nodes.len();
        let mut post = vec![0u32; n];
        let mut counter = 0u32;
        // Stack of (node, next-child-to-visit).
        let mut stack: Vec<(u32, u32)> = vec![(0, self.nodes[0].first_child)];
        while let Some((node, child)) = stack.pop() {
            if child == NIL {
                post[node as usize] = counter;
                counter += 1;
            } else {
                let next = self.nodes[child as usize].next_sibling;
                stack.push((node, next));
                stack.push((child, self.nodes[child as usize].first_child));
            }
        }
        for (i, p) in post.into_iter().enumerate() {
            self.nodes[i].post = p;
        }
    }

    fn index_labels(&mut self) {
        let mut by_label = vec![Vec::new(); self.labels.len()];
        for (i, rec) in self.nodes.iter().enumerate() {
            by_label[rec.label as usize].push(NodeId(i as u32));
        }
        self.by_label = by_label;
    }

    /// Parse the compact term syntax `a(b,c(d,e))` into a tree.
    ///
    /// See [`crate::terms`] for the grammar.
    pub fn from_terms(input: &str) -> Result<Tree, TreeError> {
        crate::terms::parse_terms(input)
    }

    /// Render the tree back into the compact term syntax.
    pub fn to_terms(&self) -> String {
        crate::terms::to_terms(self)
    }

    /// A single-node tree with the given root label.
    pub fn singleton(label: &str) -> Tree {
        let mut b = TreeBuilder::new();
        let r = b.open(label);
        b.close();
        let t = b.finish().expect("singleton is balanced");
        debug_assert_eq!(r, NodeId::ROOT);
        t
    }

    /// Number of nodes, written `|t|` in the paper.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A tree always has at least the root, so this is always `false`;
    /// provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node (always `NodeId(0)`).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Iterate over all nodes in document (pre-)order.
    pub fn nodes(
        &self,
    ) -> impl ExactSizeIterator<Item = NodeId> + DoubleEndedIterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Does `id` belong to this tree?
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        (id.0 as usize) < self.nodes.len()
    }

    #[inline]
    fn rec(&self, id: NodeId) -> &NodeRec {
        &self.nodes[id.index()]
    }

    /// The label of a node.
    #[inline]
    pub fn label(&self, id: NodeId) -> Label {
        Label(self.rec(id).label)
    }

    /// The label of a node, as a string.
    #[inline]
    pub fn label_str(&self, id: NodeId) -> &str {
        &self.labels[self.rec(id).label as usize]
    }

    /// Look up a label id by name, if any node of the tree uses it.
    pub fn label_id(&self, name: &str) -> Option<Label> {
        self.label_ids.get(name).copied().map(Label)
    }

    /// Name of an interned label.
    pub fn label_name(&self, label: Label) -> &str {
        &self.labels[label.index()]
    }

    /// Number of distinct labels in the tree (|Σ| as observed in `t`).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// All nodes carrying `label`, in document order (the `lab_a` predicate).
    pub fn nodes_with_label(&self, label: Label) -> &[NodeId] {
        &self.by_label[label.index()]
    }

    /// All nodes whose label string equals `name`, in document order.
    pub fn nodes_with_label_str(&self, name: &str) -> &[NodeId] {
        match self.label_id(name) {
            Some(l) => self.nodes_with_label(l),
            None => &[],
        }
    }

    /// Parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let p = self.rec(id).parent;
        if p == NIL {
            None
        } else {
            Some(NodeId(p))
        }
    }

    /// First child, if any.
    #[inline]
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        let c = self.rec(id).first_child;
        if c == NIL {
            None
        } else {
            Some(NodeId(c))
        }
    }

    /// Last child, if any.
    #[inline]
    pub fn last_child(&self, id: NodeId) -> Option<NodeId> {
        let c = self.rec(id).last_child;
        if c == NIL {
            None
        } else {
            Some(NodeId(c))
        }
    }

    /// Next sibling, if any (the `nextsibling` / `ns` relation of the paper).
    #[inline]
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        let s = self.rec(id).next_sibling;
        if s == NIL {
            None
        } else {
            Some(NodeId(s))
        }
    }

    /// Previous sibling, if any.
    #[inline]
    pub fn prev_sibling(&self, id: NodeId) -> Option<NodeId> {
        let s = self.rec(id).prev_sibling;
        if s == NIL {
            None
        } else {
            Some(NodeId(s))
        }
    }

    /// 0-based index of `id` among its siblings.
    #[inline]
    pub fn child_index(&self, id: NodeId) -> usize {
        self.rec(id).child_index as usize
    }

    /// Depth of the node; the root has depth 0.
    #[inline]
    pub fn depth(&self, id: NodeId) -> usize {
        self.rec(id).depth as usize
    }

    /// Preorder (document-order) number of the node.
    #[inline]
    pub fn preorder(&self, id: NodeId) -> u32 {
        self.rec(id).pre
    }

    /// Postorder number of the node.
    #[inline]
    pub fn postorder(&self, id: NodeId) -> u32 {
        self.rec(id).post
    }

    /// Children of a node, in sibling order.
    pub fn children(&self, id: NodeId) -> ChildIter<'_> {
        ChildIter {
            tree: self,
            next: self.rec(id).first_child,
        }
    }

    /// Number of children of a node.
    pub fn child_count(&self, id: NodeId) -> usize {
        self.children(id).count()
    }

    /// Is `id` a leaf (no children)?
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.rec(id).first_child == NIL
    }

    /// `ch(parent, child)` — the child relation of the paper.
    #[inline]
    pub fn is_child(&self, child: NodeId, parent: NodeId) -> bool {
        self.rec(child).parent == parent.0
    }

    /// Strict ancestor test: is `anc` a proper ancestor of `id`?
    ///
    /// Uses pre/post-order numbers: `anc` is an ancestor of `id` iff
    /// `pre(anc) < pre(id)` and `post(anc) > post(id)`.
    #[inline]
    pub fn is_ancestor(&self, id: NodeId, anc: NodeId) -> bool {
        let a = self.rec(anc);
        let d = self.rec(id);
        a.pre < d.pre && a.post > d.post
    }

    /// Strict descendant test: is `desc` a proper descendant of `id`?
    #[inline]
    pub fn is_descendant(&self, desc: NodeId, id: NodeId) -> bool {
        self.is_ancestor(desc, id)
    }

    /// Reflexive-transitive `ch*` relation: `v2` is `v1` or a descendant of
    /// `v1`.  This is the `ch*(v1, v2)` predicate of the FO signature.
    #[inline]
    pub fn is_descendant_or_self(&self, v2: NodeId, v1: NodeId) -> bool {
        v1 == v2 || self.is_ancestor(v2, v1)
    }

    /// `ns(v1, v2)`: `v2` is the immediate next sibling of `v1`.
    #[inline]
    pub fn is_next_sibling(&self, v1: NodeId, v2: NodeId) -> bool {
        self.rec(v1).next_sibling == v2.0
    }

    /// Reflexive-transitive `ns*` relation: `v2` equals `v1` or is a later
    /// sibling of `v1` under the same parent.
    #[inline]
    pub fn is_following_sibling_or_self(&self, v2: NodeId, v1: NodeId) -> bool {
        if v1 == v2 {
            return true;
        }
        self.rec(v1).parent == self.rec(v2).parent
            && self.rec(v1).parent != NIL
            && self.rec(v1).child_index < self.rec(v2).child_index
    }

    /// Strict following-sibling relation.
    #[inline]
    pub fn is_following_sibling(&self, v2: NodeId, v1: NodeId) -> bool {
        v1 != v2 && self.is_following_sibling_or_self(v2, v1)
    }

    /// Document order comparison (preorder).
    #[inline]
    pub fn doc_order(&self, a: NodeId, b: NodeId) -> std::cmp::Ordering {
        self.rec(a).pre.cmp(&self.rec(b).pre)
    }

    /// Least common ancestor of two nodes.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        while self.depth(a) > self.depth(b) {
            a = self.parent(a).expect("non-root node has a parent");
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent(b).expect("non-root node has a parent");
        }
        while a != b {
            a = self.parent(a).expect("non-root node has a parent");
            b = self.parent(b).expect("non-root node has a parent");
        }
        a
    }

    /// Least common ancestor of a non-empty slice of nodes.
    pub fn lca_many(&self, nodes: &[NodeId]) -> Option<NodeId> {
        let mut it = nodes.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, &n| self.lca(acc, n)))
    }

    /// The subtree rooted at `id`, as a fresh tree (`t|_u` in the paper).
    pub fn subtree(&self, id: NodeId) -> Tree {
        let mut b = TreeBuilder::new();
        self.copy_into(&mut b, id);
        b.finish().expect("subtree copy is balanced")
    }

    fn copy_into(&self, b: &mut TreeBuilder, id: NodeId) {
        b.open(self.label_str(id));
        for c in self.children(id) {
            self.copy_into(b, c);
        }
        b.close();
    }

    /// Descendants of `id` including `id`, in document order.
    pub fn descendants_or_self(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            // Push children in reverse so they pop in document order.
            let mut cs: Vec<NodeId> = self.children(n).collect();
            cs.reverse();
            stack.extend(cs);
        }
        out.sort_by_key(|n| self.preorder(*n));
        out
    }

    /// Maximum depth of any node (height of the tree).
    pub fn height(&self) -> usize {
        self.nodes.iter().map(|r| r.depth as usize).max().unwrap_or(0)
    }

    /// Check internal structural invariants; used by tests and debug builds.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty tree".into());
        }
        if self.nodes[0].parent != NIL {
            return Err("root must have no parent".into());
        }
        for (i, rec) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            if i > 0 {
                let p = rec.parent;
                if p == NIL || p as usize >= self.nodes.len() {
                    return Err(format!("node {i} has invalid parent"));
                }
                if !self.children(NodeId(p)).any(|c| c == id) {
                    return Err(format!("node {i} not listed among parent's children"));
                }
                if self.nodes[p as usize].depth + 1 != rec.depth {
                    return Err(format!("node {i} depth inconsistent"));
                }
            }
            if let Some(ns) = self.next_sibling(id) {
                if self.prev_sibling(ns) != Some(id) {
                    return Err(format!("sibling links broken at {i}"));
                }
                if self.rec(ns).parent != rec.parent {
                    return Err(format!("next sibling of {i} has a different parent"));
                }
            }
            // pre/post consistency with the parent.
            if i > 0 {
                let p = NodeId(rec.parent);
                if !(self.preorder(p) < rec.pre && self.postorder(p) > rec.post) {
                    return Err(format!("pre/post numbers inconsistent at {i}"));
                }
            }
        }
        // Postorder must be a permutation of 0..n.
        let mut seen = vec![false; self.nodes.len()];
        for rec in &self.nodes {
            let p = rec.post as usize;
            if p >= seen.len() || seen[p] {
                return Err("postorder is not a permutation".into());
            }
            seen[p] = true;
        }
        Ok(())
    }
}

/// Iterator over the children of a node, in sibling order.
pub struct ChildIter<'t> {
    tree: &'t Tree,
    next: u32,
}

impl<'t> Iterator for ChildIter<'t> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next == NIL {
            None
        } else {
            let id = NodeId(self.next);
            self.next = self.tree.rec(id).next_sibling;
            Some(id)
        }
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_terms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        Tree::from_terms("a(b(d,e),c(f(g),h))").unwrap()
    }

    #[test]
    fn basic_shape() {
        let t = sample();
        assert_eq!(t.len(), 8);
        assert_eq!(t.label_str(t.root()), "a");
        let kids: Vec<_> = t.children(t.root()).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(t.label_str(kids[0]), "b");
        assert_eq!(t.label_str(kids[1]), "c");
        assert_eq!(t.child_count(kids[0]), 2);
        assert!(t.is_leaf(t.nodes_with_label_str("g")[0]));
        assert_eq!(t.height(), 3);
        t.check_invariants().unwrap();
    }

    #[test]
    fn parent_child_links() {
        let t = sample();
        for n in t.nodes() {
            for c in t.children(n) {
                assert_eq!(t.parent(c), Some(n));
                assert!(t.is_child(c, n));
            }
        }
        assert_eq!(t.parent(t.root()), None);
    }

    #[test]
    fn sibling_links() {
        let t = sample();
        let b = t.nodes_with_label_str("b")[0];
        let c = t.nodes_with_label_str("c")[0];
        assert_eq!(t.next_sibling(b), Some(c));
        assert_eq!(t.prev_sibling(c), Some(b));
        assert!(t.is_next_sibling(b, c));
        assert!(!t.is_next_sibling(c, b));
        assert!(t.is_following_sibling(c, b));
        assert!(t.is_following_sibling_or_self(b, b));
        assert!(!t.is_following_sibling(b, c));
    }

    #[test]
    fn ancestor_descendant_via_prepost() {
        let t = sample();
        let root = t.root();
        let g = t.nodes_with_label_str("g")[0];
        let c = t.nodes_with_label_str("c")[0];
        let b = t.nodes_with_label_str("b")[0];
        assert!(t.is_ancestor(g, root));
        assert!(t.is_ancestor(g, c));
        assert!(!t.is_ancestor(g, b));
        assert!(t.is_descendant(g, c));
        assert!(t.is_descendant_or_self(g, g));
        assert!(!t.is_descendant(root, root));
    }

    #[test]
    fn lca_and_subtree() {
        let t = sample();
        let d = t.nodes_with_label_str("d")[0];
        let e = t.nodes_with_label_str("e")[0];
        let g = t.nodes_with_label_str("g")[0];
        let b = t.nodes_with_label_str("b")[0];
        assert_eq!(t.lca(d, e), b);
        assert_eq!(t.lca(d, g), t.root());
        assert_eq!(t.lca(d, d), d);
        assert_eq!(t.lca_many(&[d, e, g]), Some(t.root()));
        assert_eq!(t.lca_many(&[]), None);

        let sub = t.subtree(t.nodes_with_label_str("c")[0]);
        assert_eq!(sub.to_terms(), "c(f(g),h)");
        sub.check_invariants().unwrap();
    }

    #[test]
    fn descendants_or_self_in_doc_order() {
        let t = sample();
        let c = t.nodes_with_label_str("c")[0];
        let labels: Vec<_> = t
            .descendants_or_self(c)
            .into_iter()
            .map(|n| t.label_str(n).to_string())
            .collect();
        assert_eq!(labels, vec!["c", "f", "g", "h"]);
        let all = t.descendants_or_self(t.root());
        assert_eq!(all.len(), t.len());
    }

    #[test]
    fn label_index() {
        let t = Tree::from_terms("a(b,b,b(b))").unwrap();
        assert_eq!(t.nodes_with_label_str("b").len(), 4);
        assert_eq!(t.nodes_with_label_str("zzz").len(), 0);
        assert_eq!(t.label_count(), 2);
        let l = t.label_id("b").unwrap();
        assert_eq!(t.label_name(l), "b");
    }

    #[test]
    fn singleton_tree() {
        let t = Tree::singleton("only");
        assert_eq!(t.len(), 1);
        assert_eq!(t.label_str(t.root()), "only");
        assert!(t.is_leaf(t.root()));
        t.check_invariants().unwrap();
    }

    #[test]
    fn document_order_matches_preorder() {
        let t = sample();
        let nodes: Vec<_> = t.nodes().collect();
        for w in nodes.windows(2) {
            assert_eq!(t.doc_order(w[0], w[1]), std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn display_round_trips() {
        let s = "a(b(d,e),c(f(g),h))";
        let t = Tree::from_terms(s).unwrap();
        assert_eq!(format!("{t}"), s);
    }
}
