//! The firstchild/nextsibling binary encoding of unranked trees.
//!
//! Section 8 of the paper lifts its FO-completeness proof from binary trees
//! to unranked trees "via the binary encoding firstchild-nextsibling".  This
//! module implements that encoding and its inverse:
//!
//! * `bin(t)` has the same node set as `t`;
//! * the **first child** of a node in `bin(t)` is its first child in `t`;
//! * the **second child** of a node in `bin(t)` is its next sibling in `t`.
//!
//! The encoding is a bijection between unranked trees and binary trees whose
//! root has no second child.  [`BinaryTree`] keeps the original [`NodeId`]s so
//! that queries can be transported between the two views without renaming.

use crate::tree::{NodeId, Tree};

/// A binary-tree view of an unranked [`Tree`] under the firstchild/
/// nextsibling encoding.
#[derive(Debug, Clone)]
pub struct BinaryTree {
    /// `ch1[v]` — the first child of `v` in the binary encoding
    /// (= first child of `v` in the unranked tree).
    ch1: Vec<Option<NodeId>>,
    /// `ch2[v]` — the second child of `v` in the binary encoding
    /// (= next sibling of `v` in the unranked tree).
    ch2: Vec<Option<NodeId>>,
    /// Parent in the *binary* tree (differs from the unranked parent for
    /// every node that is not a first child).
    bparent: Vec<Option<NodeId>>,
    labels: Vec<String>,
    root: NodeId,
}

impl BinaryTree {
    /// Encode an unranked tree.
    pub fn encode(tree: &Tree) -> BinaryTree {
        let n = tree.len();
        let mut ch1 = vec![None; n];
        let mut ch2 = vec![None; n];
        let mut bparent = vec![None; n];
        let mut labels = Vec::with_capacity(n);
        for v in tree.nodes() {
            labels.push(tree.label_str(v).to_string());
            ch1[v.index()] = tree.first_child(v);
            ch2[v.index()] = tree.next_sibling(v);
        }
        for v in tree.nodes() {
            if let Some(c) = ch1[v.index()] {
                bparent[c.index()] = Some(v);
            }
            if let Some(s) = ch2[v.index()] {
                bparent[s.index()] = Some(v);
            }
        }
        BinaryTree {
            ch1,
            ch2,
            bparent,
            labels,
            root: tree.root(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the tree has no nodes (never the case for encodings).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Label of a node.
    pub fn label_str(&self, v: NodeId) -> &str {
        &self.labels[v.index()]
    }

    /// `ch1(v)` — first child in the binary encoding.
    pub fn first_child(&self, v: NodeId) -> Option<NodeId> {
        self.ch1[v.index()]
    }

    /// `ch2(v)` — second child in the binary encoding.
    pub fn second_child(&self, v: NodeId) -> Option<NodeId> {
        self.ch2[v.index()]
    }

    /// Parent in the binary encoding.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.bparent[v.index()]
    }

    /// Iterate over all nodes (same ids as the source unranked tree).
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// `ch*` in the binary tree: is `desc` reachable from `anc` by zero or
    /// more `ch1`/`ch2` steps?  Computed by an upward walk, O(depth).
    pub fn is_descendant_or_self(&self, desc: NodeId, anc: NodeId) -> bool {
        let mut cur = Some(desc);
        while let Some(v) = cur {
            if v == anc {
                return true;
            }
            cur = self.parent(v);
        }
        false
    }

    /// Decode back into an unranked tree.
    ///
    /// Node ids are preserved only up to document order: the decoded tree
    /// re-numbers nodes in document order, which coincides with the original
    /// numbering for trees produced by [`crate::TreeBuilder`].
    pub fn decode(&self) -> Tree {
        let mut b = crate::TreeBuilder::new();
        self.decode_node(self.root, &mut b);
        b.finish().expect("binary decoding is balanced")
    }

    fn decode_node(&self, v: NodeId, b: &mut crate::TreeBuilder) {
        b.open(self.label_str(v));
        let mut child = self.first_child(v);
        while let Some(c) = child {
            self.decode_node(c, b);
            child = self.second_child(c);
        }
        b.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_simple() {
        let t = Tree::from_terms("a(b,c,d(e))").unwrap();
        let bt = BinaryTree::encode(&t);
        let root = t.root();
        let b = t.nodes_with_label_str("b")[0];
        let c = t.nodes_with_label_str("c")[0];
        let d = t.nodes_with_label_str("d")[0];
        let e = t.nodes_with_label_str("e")[0];

        assert_eq!(bt.first_child(root), Some(b));
        assert_eq!(bt.second_child(root), None);
        assert_eq!(bt.first_child(b), None);
        assert_eq!(bt.second_child(b), Some(c));
        assert_eq!(bt.second_child(c), Some(d));
        assert_eq!(bt.first_child(d), Some(e));
        assert_eq!(bt.second_child(d), None);
        assert_eq!(bt.parent(c), Some(b));
        assert_eq!(bt.parent(b), Some(root));
        assert_eq!(bt.parent(root), None);
    }

    #[test]
    fn root_of_encoding_has_no_second_child() {
        for s in ["a", "a(b)", "a(b,c)", "a(b(c,d),e(f,g(h)))"] {
            let t = Tree::from_terms(s).unwrap();
            let bt = BinaryTree::encode(&t);
            assert_eq!(bt.second_child(bt.root()), None, "{s}");
        }
    }

    #[test]
    fn decode_round_trips() {
        for s in [
            "a",
            "a(b)",
            "a(b,c,d)",
            "a(b(c,d),e(f,g(h)),i)",
            "bib(book(author,title),book(author,title,title))",
        ] {
            let t = Tree::from_terms(s).unwrap();
            let bt = BinaryTree::encode(&t);
            let back = bt.decode();
            assert_eq!(back.to_terms(), s);
        }
    }

    #[test]
    fn binary_descendant_mixes_children_and_siblings() {
        let t = Tree::from_terms("a(b,c,d)").unwrap();
        let bt = BinaryTree::encode(&t);
        let b = t.nodes_with_label_str("b")[0];
        let d = t.nodes_with_label_str("d")[0];
        // In the binary encoding, later siblings are descendants of earlier
        // siblings (via ch2 chains).
        assert!(bt.is_descendant_or_self(d, b));
        assert!(!bt.is_descendant_or_self(b, d));
        assert!(bt.is_descendant_or_self(d, t.root()));
    }

    #[test]
    fn labels_and_node_ids_are_preserved() {
        let t = Tree::from_terms("x(y(z),w)").unwrap();
        let bt = BinaryTree::encode(&t);
        assert_eq!(bt.len(), t.len());
        for v in t.nodes() {
            assert_eq!(bt.label_str(v), t.label_str(v));
        }
    }
}
