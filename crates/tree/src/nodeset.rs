//! Dense bitsets over the nodes of one tree.
//!
//! [`NodeSet`] is the set representation used by the Core XPath 1.0
//! linear-time evaluator and as the row type of the Boolean node×node
//! matrices of the PPLbin engine (Section 4 of the paper).  All Boolean
//! operations are word-parallel over `u64` blocks.

use crate::tree::NodeId;
use std::fmt;

/// A set of nodes of a fixed tree, represented as a dense bitset.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NodeSet {
    /// Number of valid bits (== number of nodes of the tree).
    domain: usize,
    words: Vec<u64>,
}

impl NodeSet {
    /// The empty set over a domain of `domain` nodes.
    pub fn empty(domain: usize) -> NodeSet {
        NodeSet {
            domain,
            words: vec![0; domain.div_ceil(64)],
        }
    }

    /// The full set `nodes(t)` over a domain of `domain` nodes.
    pub fn full(domain: usize) -> NodeSet {
        let mut s = NodeSet::empty(domain);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        s.clear_tail();
        s
    }

    /// A singleton set.
    pub fn singleton(domain: usize, node: NodeId) -> NodeSet {
        let mut s = NodeSet::empty(domain);
        s.insert(node);
        s
    }

    /// Build a set from an iterator of nodes.
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(domain: usize, nodes: I) -> NodeSet {
        let mut s = NodeSet::empty(domain);
        for n in nodes {
            s.insert(n);
        }
        s
    }

    fn clear_tail(&mut self) {
        let extra = self.words.len() * 64 - self.domain;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Size of the underlying domain (number of tree nodes), not the set
    /// cardinality.
    #[inline]
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        debug_assert!(i < self.domain);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Insert a node; returns true if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, node: NodeId) -> bool {
        let i = node.index();
        debug_assert!(i < self.domain, "node {i} outside domain {}", self.domain);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Remove a node; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, node: NodeId) -> bool {
        let i = node.index();
        debug_assert!(i < self.domain);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.domain, other.domain);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.domain, other.domain);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place set difference (`self \ other`).
    pub fn difference_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.domain, other.domain);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place complement relative to the full domain (`nodes(t) \ self`).
    pub fn complement(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// Union returning a fresh set.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Intersection returning a fresh set.
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Difference returning a fresh set.
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// Complemented copy.
    pub fn complemented(&self) -> NodeSet {
        let mut out = self.clone();
        out.complement();
        out
    }

    /// Is `self ∩ other` non-empty?  (Word-parallel, no allocation.)
    pub fn intersects(&self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.domain, other.domain);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.domain, other.domain);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Remove every element.
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
    }

    /// Iterate over the members in increasing node-id (document) order.
    pub fn iter(&self) -> NodeSetIter<'_> {
        NodeSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<NodeId> {
        self.iter().next()
    }

    /// Raw words, exposed for the matrix implementation in `xpath_pplbin`.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw words; callers must not set bits beyond the domain.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

/// Iterator over the members of a [`NodeSet`].
pub struct NodeSetIter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl<'a> Iterator for NodeSetIter<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(NodeId((self.word_idx * 64 + bit) as u32));
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = NodeSetIter<'a>;

    fn into_iter(self) -> NodeSetIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeSet::empty(100);
        assert!(s.is_empty());
        assert!(s.insert(NodeId(3)));
        assert!(!s.insert(NodeId(3)));
        assert!(s.insert(NodeId(99)));
        assert!(s.contains(NodeId(3)));
        assert!(s.contains(NodeId(99)));
        assert!(!s.contains(NodeId(4)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(NodeId(3)));
        assert!(!s.remove(NodeId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_and_complement_respect_domain() {
        for domain in [1, 5, 63, 64, 65, 128, 130] {
            let full = NodeSet::full(domain);
            assert_eq!(full.len(), domain, "domain {domain}");
            let mut empty = full.clone();
            empty.complement();
            assert!(empty.is_empty(), "domain {domain}");
            let mut again = empty;
            again.complement();
            assert_eq!(again, full);
        }
    }

    #[test]
    fn boolean_algebra() {
        let a = NodeSet::from_iter(70, ids(&[1, 2, 3, 64, 65]));
        let b = NodeSet::from_iter(70, ids(&[2, 3, 4, 65, 69]));
        assert_eq!(
            a.union(&b).iter().collect::<Vec<_>>(),
            ids(&[1, 2, 3, 4, 64, 65, 69])
        );
        assert_eq!(
            a.intersection(&b).iter().collect::<Vec<_>>(),
            ids(&[2, 3, 65])
        );
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), ids(&[1, 64]));
        assert!(a.intersects(&b));
        assert!(!a.difference(&b).intersects(&b));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.intersection(&b).is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn iteration_is_sorted() {
        let s = NodeSet::from_iter(200, ids(&[150, 3, 77, 64, 0, 199]));
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, ids(&[0, 3, 64, 77, 150, 199]));
        assert_eq!(s.first(), Some(NodeId(0)));
        assert_eq!(NodeSet::empty(10).first(), None);
    }

    #[test]
    fn singleton_and_clear() {
        let mut s = NodeSet::singleton(10, NodeId(7));
        assert_eq!(s.len(), 1);
        assert!(s.contains(NodeId(7)));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn debug_formatting_lists_members() {
        let s = NodeSet::from_iter(10, ids(&[1, 4]));
        let dbg = format!("{s:?}");
        assert!(dbg.contains("NodeId(1)") && dbg.contains("NodeId(4)"));
    }
}
