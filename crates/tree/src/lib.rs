//! # `xpath_tree` — the unranked-tree data model
//!
//! This crate implements the data model used throughout the reproduction of
//! *"Polynomial Time Fragments of XPath with Variables"* (Filiot, Niehren,
//! Talbot, Tison — PODS 2007): **unranked, sibling-ordered, labelled trees**
//! over some label alphabet Σ.
//!
//! A tree `t ∈ T_Σ` is a pair `a(t1 … tn)` of a label `a ∈ Σ` and a possibly
//! empty sequence of child trees.  Every tree defines a logical structure
//! whose domain is `nodes(t)`; the signature contains every XPath axis and
//! the transitive closures of `child` and `nextsibling`, plus the monadic
//! label predicates `lab_a`.
//!
//! ## Contents
//!
//! * [`Tree`] — arena-based tree storage with O(1) parent / first-child /
//!   next-sibling / previous-sibling links and pre/post-order numbers that
//!   answer the transitive-closure axes in O(1) per node pair.
//! * [`TreeBuilder`] — incremental construction of trees.
//! * [`Axis`] — the XPath axes of the paper (Fig. 1) and iterators over them.
//! * [`NodeSet`] — a dense bitset over `nodes(t)`, the work-horse set type of
//!   the evaluation algorithms.
//! * [`binary`] — the firstchild/nextsibling binary encoding used by
//!   Section 8 of the paper.
//! * [`generate`] — random tree generators used by the benchmark harness.
//! * [`terms`] — a compact `a(b,c(d))` term syntax for tests and examples.
//!
//! ## Quick example
//!
//! ```
//! use xpath_tree::{Tree, Axis};
//!
//! // bib(book(author,title), book(author,title,title))
//! let t = Tree::from_terms("bib(book(author,title),book(author,title,title))").unwrap();
//! let root = t.root();
//! assert_eq!(t.label_str(root), "bib");
//! let books: Vec<_> = t.axis_iter(Axis::Child, root).collect();
//! assert_eq!(books.len(), 2);
//! assert!(t.is_ancestor(books[0], root));
//! ```

#![forbid(unsafe_code)]

pub mod axes;
pub mod binary;
pub mod builder;
pub mod edit;
pub mod generate;
pub mod nodeset;
pub mod terms;
pub mod tree;

pub use axes::{Axis, AxisIter};
pub use binary::BinaryTree;
pub use builder::TreeBuilder;
pub use edit::{EditDelta, EditKind};
pub use nodeset::NodeSet;
pub use tree::{Label, NodeId, Tree};

/// Errors produced while constructing or parsing trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The term syntax `a(b,c(d))` could not be parsed.
    TermSyntax { position: usize, message: String },
    /// An operation received a node id that does not belong to the tree.
    InvalidNode(u32),
    /// A builder was finished while children were still open.
    UnbalancedBuilder,
    /// The tree would be empty (the data model requires at least a root).
    EmptyTree,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::TermSyntax { position, message } => {
                write!(f, "term syntax error at byte {position}: {message}")
            }
            TreeError::InvalidNode(id) => write!(f, "invalid node id {id}"),
            TreeError::UnbalancedBuilder => write!(f, "builder finished with unclosed elements"),
            TreeError::EmptyTree => write!(f, "a tree must contain at least the root node"),
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = TreeError::TermSyntax {
            position: 3,
            message: "expected label".into(),
        };
        assert!(e.to_string().contains("byte 3"));
        assert!(TreeError::InvalidNode(7).to_string().contains('7'));
        assert!(!TreeError::UnbalancedBuilder.to_string().is_empty());
        assert!(!TreeError::EmptyTree.to_string().is_empty());
    }
}
