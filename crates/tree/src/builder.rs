//! Incremental construction of [`Tree`]s.
//!
//! [`TreeBuilder`] follows the usual open/close (SAX-like) protocol: call
//! [`TreeBuilder::open`] when an element starts, [`TreeBuilder::close`] when
//! it ends, and [`TreeBuilder::finish`] once the document is complete.  The
//! builder guarantees that parents receive smaller [`NodeId`]s than their
//! children, which [`Tree`] relies on for its single-pass link construction.

use crate::tree::{NodeId, Tree};
use crate::TreeError;
use std::collections::HashMap;

/// Incremental builder for [`Tree`].
#[derive(Debug, Default)]
pub struct TreeBuilder {
    parents: Vec<u32>,
    labels_per_node: Vec<u32>,
    labels: Vec<String>,
    label_ids: HashMap<String, u32>,
    stack: Vec<u32>,
}

impl TreeBuilder {
    /// Create an empty builder.
    pub fn new() -> TreeBuilder {
        TreeBuilder::default()
    }

    fn intern(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.label_ids.get(label) {
            return id;
        }
        let id = self.labels.len() as u32;
        self.labels.push(label.to_string());
        self.label_ids.insert(label.to_string(), id);
        id
    }

    /// Start a new element with the given label; returns its node id.
    ///
    /// The first `open` creates the root.  Opening a second root (i.e. a
    /// sibling of the root) is rejected at [`TreeBuilder::finish`] time via
    /// [`TreeError::UnbalancedBuilder`] since the extra node would be
    /// unreachable.
    pub fn open(&mut self, label: &str) -> NodeId {
        let label_id = self.intern(label);
        let id = self.parents.len() as u32;
        let parent = self.stack.last().copied().unwrap_or(u32::MAX);
        self.parents.push(parent);
        self.labels_per_node.push(label_id);
        self.stack.push(id);
        NodeId(id)
    }

    /// Close the most recently opened element.
    ///
    /// Returns the id of the closed element, or `None` if no element is open.
    pub fn close(&mut self) -> Option<NodeId> {
        self.stack.pop().map(NodeId)
    }

    /// Convenience: add a leaf child (open + close).
    pub fn leaf(&mut self, label: &str) -> NodeId {
        let id = self.open(label);
        self.close();
        id
    }

    /// Number of nodes created so far.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True if no node has been created yet.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Number of elements currently open.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// Finish the build.
    ///
    /// Fails with [`TreeError::UnbalancedBuilder`] if elements are still open
    /// or if more than one root was created, and with [`TreeError::EmptyTree`]
    /// if no node was created at all.
    pub fn finish(self) -> Result<Tree, TreeError> {
        if !self.stack.is_empty() {
            return Err(TreeError::UnbalancedBuilder);
        }
        if self.parents.is_empty() {
            return Err(TreeError::EmptyTree);
        }
        // Exactly one node may have no parent, and it must be node 0.
        let roots = self.parents.iter().filter(|&&p| p == u32::MAX).count();
        if roots != 1 || self.parents[0] != u32::MAX {
            return Err(TreeError::UnbalancedBuilder);
        }
        Tree::from_builder_parts(self.parents, self.labels_per_node, self.labels, self.label_ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple() {
        let mut b = TreeBuilder::new();
        let root = b.open("a");
        let x = b.leaf("b");
        let y = b.open("c");
        b.leaf("d");
        b.close();
        b.close();
        let t = b.finish().unwrap();
        assert_eq!(t.to_terms(), "a(b,c(d))");
        assert_eq!(root, NodeId::ROOT);
        assert_eq!(t.parent(x), Some(root));
        assert_eq!(t.parent(y), Some(root));
        t.check_invariants().unwrap();
    }

    #[test]
    fn unbalanced_open_is_rejected() {
        let mut b = TreeBuilder::new();
        b.open("a");
        b.open("b");
        b.close();
        assert_eq!(b.open_depth(), 1);
        assert!(matches!(b.finish(), Err(TreeError::UnbalancedBuilder)));
    }

    #[test]
    fn empty_is_rejected() {
        let b = TreeBuilder::new();
        assert!(b.is_empty());
        assert!(matches!(b.finish(), Err(TreeError::EmptyTree)));
    }

    #[test]
    fn second_root_is_rejected() {
        let mut b = TreeBuilder::new();
        b.open("a");
        b.close();
        b.open("b");
        b.close();
        assert!(matches!(b.finish(), Err(TreeError::UnbalancedBuilder)));
    }

    #[test]
    fn labels_are_interned() {
        let mut b = TreeBuilder::new();
        b.open("x");
        for _ in 0..10 {
            b.leaf("y");
        }
        b.close();
        let t = b.finish().unwrap();
        assert_eq!(t.label_count(), 2);
        assert_eq!(t.nodes_with_label_str("y").len(), 10);
    }

    #[test]
    fn close_on_empty_returns_none() {
        let mut b = TreeBuilder::new();
        assert_eq!(b.close(), None);
        assert_eq!(b.len(), 0);
    }
}
