//! Compact term syntax `a(b,c(d,e))` for trees.
//!
//! This is the notation the paper uses for unranked trees (`t = a(t1 … tn)`).
//! It is convenient for tests, documentation examples and golden files.
//!
//! Grammar:
//!
//! ```text
//! tree  ::= label ( '(' tree (',' tree)* ')' )?
//! label ::= [A-Za-z0-9_.:-]+
//! ```
//!
//! Whitespace is allowed around labels and punctuation.

use crate::builder::TreeBuilder;
use crate::tree::{NodeId, Tree};
use crate::TreeError;

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: &str) -> TreeError {
        TreeError::TermSyntax {
            position: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn label(&mut self) -> Result<String, TreeError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() {
            let c = self.input[self.pos];
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'.' | b':' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a label"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("label bytes are ASCII")
            .to_string())
    }

    fn tree(&mut self, b: &mut TreeBuilder) -> Result<(), TreeError> {
        let label = self.label()?;
        b.open(&label);
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            loop {
                self.tree(b)?;
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b')') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or ')'")),
                }
            }
        }
        b.close();
        Ok(())
    }
}

/// Parse the compact term syntax into a [`Tree`].
pub fn parse_terms(input: &str) -> Result<Tree, TreeError> {
    let mut p = Parser::new(input);
    let mut b = TreeBuilder::new();
    p.tree(&mut b)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input after the root term"));
    }
    b.finish()
}

/// Render a tree into the compact term syntax.
pub fn to_terms(tree: &Tree) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), &mut out);
    out
}

fn write_node(tree: &Tree, node: NodeId, out: &mut String) {
    out.push_str(tree.label_str(node));
    let mut children = tree.children(node).peekable();
    if children.peek().is_some() {
        out.push('(');
        let mut first = true;
        for c in children {
            if !first {
                out.push(',');
            }
            first = false;
            write_node(tree, c, out);
        }
        out.push(')');
    }
}

/// Render a tree as an indented outline, one node per line — handy for
/// debugging larger documents.
pub fn to_outline(tree: &Tree) -> String {
    let mut out = String::new();
    for n in tree.descendants_or_self(tree.root()) {
        for _ in 0..tree.depth(n) {
            out.push_str("  ");
        }
        out.push_str(tree.label_str(n));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_round_trip() {
        for s in [
            "a",
            "a(b)",
            "a(b,c)",
            "a(b(c,d),e(f))",
            "bib(book(author,title),book(author,title))",
            "x(y(z(w(v))))",
        ] {
            let t = parse_terms(s).unwrap();
            assert_eq!(to_terms(&t), s);
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let t = parse_terms("  a ( b , c ( d ) ) ").unwrap();
        assert_eq!(to_terms(&t), "a(b,c(d))");
    }

    #[test]
    fn labels_with_punctuation() {
        let t = parse_terms("ns:doc(item-1,item_2,item.3)").unwrap();
        assert_eq!(t.nodes_with_label_str("item-1").len(), 1);
        assert_eq!(t.nodes_with_label_str("ns:doc").len(), 1);
    }

    #[test]
    fn syntax_errors_carry_positions() {
        for bad in ["", "(a)", "a(", "a(b", "a(b,)", "a)b", "a(b))", "a b"] {
            let err = parse_terms(bad).unwrap_err();
            match err {
                TreeError::TermSyntax { .. } => {}
                other => panic!("expected syntax error for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn outline_has_one_line_per_node() {
        let t = parse_terms("a(b(c),d)").unwrap();
        let outline = to_outline(&t);
        assert_eq!(outline.lines().count(), t.len());
        assert!(outline.starts_with("a\n"));
        assert!(outline.contains("    c"));
    }
}
