//! Random and synthetic tree generators.
//!
//! The paper's complexity bounds are stated over arbitrary trees `t`; to
//! validate their *shape* empirically (EXPERIMENTS.md) we need families of
//! trees whose size, branching and depth can be controlled precisely.  These
//! generators are used by the benchmark harness and by property tests.
//!
//! All generators are deterministic given a seed, so benchmark runs are
//! reproducible.

use crate::builder::TreeBuilder;
use crate::tree::Tree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of the random trees produced by [`random_tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeShape {
    /// Uniformly random attachment: every new node picks a uniformly random
    /// existing node as its parent.  Produces shallow, bushy trees
    /// (expected depth O(log n)).
    RandomAttachment,
    /// Each node has a bounded random number of children; the tree is grown
    /// breadth-first until the size budget is exhausted.  `max_children`
    /// controls the branching factor.
    BoundedBranching { max_children: usize },
    /// A single path (each node has exactly one child) — the deep/narrow
    /// extreme, worst case for ancestor/descendant scans.
    Path,
    /// A root with `n - 1` leaf children — the wide/flat extreme, worst case
    /// for sibling axes.
    Star,
    /// Perfect `arity`-ary tree truncated to the requested size.
    Complete { arity: usize },
}

/// Configuration for [`random_tree`].
#[derive(Debug, Clone)]
pub struct TreeGenConfig {
    /// Number of nodes to generate (≥ 1).
    pub size: usize,
    /// Shape family.
    pub shape: TreeShape,
    /// Number of distinct labels; labels are named `l0`, `l1`, ….
    pub alphabet: usize,
    /// RNG seed (generation is deterministic given the seed).
    pub seed: u64,
}

impl Default for TreeGenConfig {
    fn default() -> Self {
        TreeGenConfig {
            size: 100,
            shape: TreeShape::RandomAttachment,
            alphabet: 4,
            seed: 0x00F1_1107,
        }
    }
}

/// Generate a random tree according to `config`.
pub fn random_tree(config: &TreeGenConfig) -> Tree {
    assert!(config.size >= 1, "a tree needs at least one node");
    assert!(config.alphabet >= 1, "need at least one label");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let labels: Vec<String> = (0..config.alphabet).map(|i| format!("l{i}")).collect();
    let pick_label = |rng: &mut StdRng| -> usize { rng.gen_range(0..labels.len()) };

    // First decide the parent of every node (parents must precede children),
    // then emit the tree with a builder in one DFS pass.
    let n = config.size;
    let mut parent: Vec<usize> = vec![0; n];
    match config.shape {
        TreeShape::RandomAttachment => {
            for (i, p) in parent.iter_mut().enumerate().skip(1) {
                *p = rng.gen_range(0..i);
            }
        }
        TreeShape::BoundedBranching { max_children } => {
            let max_children = max_children.max(1);
            // Breadth-first fill: maintain a frontier of nodes that can still
            // receive children.
            let mut frontier: Vec<usize> = vec![0];
            let mut next = 1;
            while next < n {
                let mut new_frontier = Vec::new();
                for &p in &frontier {
                    if next >= n {
                        break;
                    }
                    let k = rng.gen_range(1..=max_children).min(n - next);
                    for _ in 0..k {
                        parent[next] = p;
                        new_frontier.push(next);
                        next += 1;
                        if next >= n {
                            break;
                        }
                    }
                }
                if new_frontier.is_empty() {
                    // Degenerate (k could not be assigned): attach remaining
                    // nodes to the root to guarantee progress.
                    while next < n {
                        parent[next] = 0;
                        next += 1;
                    }
                    break;
                }
                frontier = new_frontier;
            }
        }
        TreeShape::Path => {
            for (i, p) in parent.iter_mut().enumerate().skip(1) {
                *p = i - 1;
            }
        }
        TreeShape::Star => {
            for p in parent.iter_mut().skip(1) {
                *p = 0;
            }
        }
        TreeShape::Complete { arity } => {
            let arity = arity.max(1);
            for (i, p) in parent.iter_mut().enumerate().skip(1) {
                *p = (i - 1) / arity;
            }
        }
    }

    // Children of each node, in increasing id order (document order).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 1..n {
        children[parent[i]].push(i);
    }

    let mut b = TreeBuilder::new();
    // Iterative DFS to avoid stack overflow on Path shapes.
    enum Step {
        Open(usize),
        Close,
    }
    let mut stack = vec![Step::Open(0)];
    while let Some(step) = stack.pop() {
        match step {
            Step::Open(v) => {
                b.open(&labels[pick_label(&mut rng)]);
                stack.push(Step::Close);
                for &c in children[v].iter().rev() {
                    stack.push(Step::Open(c));
                }
            }
            Step::Close => {
                b.close();
            }
        }
    }
    b.finish().expect("generator emits balanced trees")
}

/// A deterministic "bibliography" document in the style of the paper's
/// introduction example: `bib(book(author*, title)* )`.
///
/// `books` books are generated; book `i` has `1 + (i mod max_authors)`
/// authors and exactly one title (plus an optional `year` element to add some
/// label diversity).
pub fn bibliography(books: usize, max_authors: usize) -> Tree {
    let max_authors = max_authors.max(1);
    let mut b = TreeBuilder::new();
    b.open("bib");
    for i in 0..books {
        b.open("book");
        let authors = 1 + (i % max_authors);
        for _ in 0..authors {
            b.leaf("author");
        }
        b.leaf("title");
        if i % 2 == 0 {
            b.leaf("year");
        }
        b.close();
    }
    b.close();
    b.finish().expect("bibliography is balanced")
}

/// A deterministic "restaurant guide" document with wide records, matching
/// the paper's motivation that tuple width `n` "can easily get up to 10 or
/// more" (name, address, phone, …).
///
/// Each restaurant element has one child per attribute in `attributes`;
/// every `missing_every`-th restaurant drops its last attribute so that
/// queries selecting all attributes have selectivity below 1.
pub fn restaurants(count: usize, attributes: &[&str], missing_every: usize) -> Tree {
    let mut b = TreeBuilder::new();
    b.open("guide");
    for i in 0..count {
        b.open("restaurant");
        let drop_last = missing_every > 0 && (i + 1) % missing_every == 0;
        let upto = if drop_last && !attributes.is_empty() {
            attributes.len() - 1
        } else {
            attributes.len()
        };
        for attr in &attributes[..upto] {
            b.leaf(attr);
        }
        b.close();
    }
    b.close();
    b.finish().expect("restaurant guide is balanced")
}

/// A deterministic DBLP-style bibliography document of *exactly*
/// `target_nodes` nodes: a `dblp` root over a stream of publication records
/// (`article`, `inproceedings`, `phdthesis`), each carrying its natural
/// attribute children (`author+`, `title`, `year`, and a venue element).
///
/// This is the document family behind the large-document experiments
/// (E14): record kind and author counts are drawn from `seed`, so documents
/// at different `target_nodes` share the same statistical shape — flat and
/// wide like the real DBLP XML, with a label alphabet rich enough for
/// complement-bearing (`except` / `not(...)`) queries to be selective.
///
/// After the last whole record, the document is padded with `www` leaf
/// records so the node count is exact — benchmarks can report per-node
/// figures without size slop.
pub fn dblp(target_nodes: usize, seed: u64) -> Tree {
    assert!(target_nodes >= 1, "a tree needs at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TreeBuilder::new();
    b.open("dblp");
    let mut count = 1usize;
    loop {
        // Pick the next record and cost it before emitting: the record
        // element itself, its authors, title + year, and one venue child.
        let kind = rng.gen_range(0..6);
        let authors: usize = match kind {
            0..=2 => 1 + rng.gen_range(0..4usize), // article: 1–4 authors
            3..=4 => 2 + rng.gen_range(0..5usize), // inproceedings: 2–6 authors
            _ => 1,                                // phdthesis: exactly one
        };
        let record_nodes = 1 + authors + 3;
        if count + record_nodes > target_nodes {
            break;
        }
        let (record, venue) = match kind {
            0..=2 => ("article", "journal"),
            3..=4 => ("inproceedings", "booktitle"),
            _ => ("phdthesis", "school"),
        };
        b.open(record);
        for _ in 0..authors {
            b.leaf("author");
        }
        b.leaf("title");
        b.leaf("year");
        b.leaf(venue);
        b.close();
        count += record_nodes;
    }
    // Exact-size padding: cheap leaf records, like DBLP's `www` entries.
    while count < target_nodes {
        b.leaf("www");
        count += 1;
    }
    b.close();
    b.finish().expect("dblp generator emits balanced trees")
}

/// The default attribute list used by the restaurant workload (11 columns).
pub const RESTAURANT_ATTRIBUTES: [&str; 11] = [
    "name",
    "address",
    "phone",
    "fax",
    "street",
    "streetnumber",
    "district",
    "city",
    "country",
    "price",
    "foodstyle",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_trees_have_requested_size_and_are_valid() {
        for shape in [
            TreeShape::RandomAttachment,
            TreeShape::BoundedBranching { max_children: 3 },
            TreeShape::Path,
            TreeShape::Star,
            TreeShape::Complete { arity: 2 },
        ] {
            for size in [1, 2, 17, 100] {
                let t = random_tree(&TreeGenConfig {
                    size,
                    shape,
                    alphabet: 3,
                    seed: 42,
                });
                assert_eq!(t.len(), size, "{shape:?} size {size}");
                t.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TreeGenConfig {
            size: 200,
            shape: TreeShape::RandomAttachment,
            alphabet: 5,
            seed: 7,
        };
        let a = random_tree(&cfg);
        let b = random_tree(&cfg);
        assert_eq!(a.to_terms(), b.to_terms());
        let c = random_tree(&TreeGenConfig { seed: 8, ..cfg });
        assert_ne!(a.to_terms(), c.to_terms());
    }

    #[test]
    fn path_and_star_shapes() {
        let p = random_tree(&TreeGenConfig {
            size: 50,
            shape: TreeShape::Path,
            alphabet: 2,
            seed: 1,
        });
        assert_eq!(p.height(), 49);
        let s = random_tree(&TreeGenConfig {
            size: 50,
            shape: TreeShape::Star,
            alphabet: 2,
            seed: 1,
        });
        assert_eq!(s.height(), 1);
        assert_eq!(s.child_count(s.root()), 49);
    }

    #[test]
    fn complete_tree_shape() {
        let t = random_tree(&TreeGenConfig {
            size: 15,
            shape: TreeShape::Complete { arity: 2 },
            alphabet: 1,
            seed: 0,
        });
        // A perfect binary tree with 15 nodes has height 3.
        assert_eq!(t.height(), 3);
        assert_eq!(t.child_count(t.root()), 2);
    }

    #[test]
    fn bibliography_shape() {
        let t = bibliography(10, 3);
        assert_eq!(t.nodes_with_label_str("book").len(), 10);
        assert_eq!(t.nodes_with_label_str("title").len(), 10);
        assert!(t.nodes_with_label_str("author").len() >= 10);
        assert_eq!(t.label_str(t.root()), "bib");
        t.check_invariants().unwrap();
    }

    #[test]
    fn restaurants_shape_and_selectivity() {
        let t = restaurants(10, &RESTAURANT_ATTRIBUTES, 5);
        assert_eq!(t.nodes_with_label_str("restaurant").len(), 10);
        assert_eq!(t.nodes_with_label_str("name").len(), 10);
        // every 5th restaurant misses the last attribute (foodstyle)
        assert_eq!(t.nodes_with_label_str("foodstyle").len(), 8);
        t.check_invariants().unwrap();
    }

    #[test]
    fn dblp_has_exact_size_and_is_deterministic() {
        for target in [1, 2, 9, 100, 4096] {
            let t = dblp(target, 11);
            assert_eq!(t.len(), target, "target {target}");
            t.check_invariants().unwrap();
            assert_eq!(t.label_str(t.root()), "dblp");
        }
        let a = dblp(500, 7);
        let b = dblp(500, 7);
        assert_eq!(a.to_terms(), b.to_terms());
        let c = dblp(500, 8);
        assert_ne!(a.to_terms(), c.to_terms());
        // Big enough documents contain every record kind.
        let big = dblp(2000, 3);
        for label in ["article", "inproceedings", "phdthesis", "author", "title"] {
            assert!(
                !big.nodes_with_label_str(label).is_empty(),
                "missing {label}"
            );
        }
    }

    #[test]
    fn restaurants_without_missing() {
        let t = restaurants(4, &["name", "city"], 0);
        assert_eq!(t.nodes_with_label_str("city").len(), 4);
    }
}
