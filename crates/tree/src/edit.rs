//! Tree edits: insert/delete/relabel a subtree, with an [`EditDelta`]
//! describing exactly which node ranges the edit touched.
//!
//! Node ids are dense preorder indices, so any structural edit shifts the
//! ids of every node after the edited range.  The edit API embraces that:
//! each operation returns a **fresh tree** (the arena is rebuilt in one
//! O(|t|) pass — cheap next to the O(|P|·|t|³) matrix compilation the
//! delta exists to avoid) plus an [`EditDelta`] that
//!
//! * maps old ids to new ids ([`EditDelta::remap`] is a monotone shift),
//! * names the edited preorder range (`pos`, `count`),
//! * records the insertion parent, its ancestor-or-self `path` and its
//!   post-edit `siblings` — the only rows whose axis relations change
//!   beyond the id shift (see `xpath_pplbin`'s incremental maintenance),
//! * lists the `labels` whose node sets the edit touched.
//!
//! The key soundness fact the downstream consumers rely on: for every axis
//! of the paper (all of which are vertical or *sibling-local* — there is no
//! global `following`/`preceding` axis), the restriction of the axis
//! relation to pairs of surviving nodes is **unchanged** by an edit, except
//! for a small dirty set of rows derived from `parent`, `path` and
//! `siblings` ([`EditDelta::dirty_rows`]).

use crate::tree::{NodeId, Tree};
use crate::{Axis, TreeBuilder, TreeError};

const NIL: u32 = u32::MAX;

/// Which kind of edit produced an [`EditDelta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditKind {
    /// A subtree was inserted; `pos..pos+count` are **new** ids.
    Insert,
    /// A subtree was deleted; `pos..pos+count` are **old** ids.
    Delete,
    /// One node changed label; ids are unchanged (`count == 1`).
    Relabel,
}

/// The footprint of one tree edit, in terms of node-id ranges.
///
/// `pos`/`count` describe the edited preorder range: in **new** ids for
/// [`EditKind::Insert`] (the inserted subtree is the contiguous block
/// `pos..pos+count`), in **old** ids for [`EditKind::Delete`] (the deleted
/// subtree was `pos..pos+count`).  For [`EditKind::Relabel`] ids do not
/// move and `count == 1`.
///
/// `parent`, `path` and `siblings` all have ids smaller than `pos` or are
/// explicitly post-edit, so they are valid in the **new** tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditDelta {
    /// What happened.
    pub kind: EditKind,
    /// `|t|` before the edit.
    pub old_len: usize,
    /// `|t|` after the edit.
    pub new_len: usize,
    /// First preorder id of the edited range (see type docs for id space).
    pub pos: u32,
    /// Number of nodes in the edited range.
    pub count: u32,
    /// Parent of the edited range (`u32::MAX` when the root was relabelled).
    /// Its id is `< pos`, hence identical in the old and new trees.
    pub parent: u32,
    /// Ancestor-or-self chain of `parent`, root first.  All ids `< pos`.
    pub path: Vec<u32>,
    /// Children of `parent` after the edit, in sibling order (**new** ids).
    pub siblings: Vec<u32>,
    /// Labels whose `lab_a` node sets the edit touched (inserted/deleted
    /// subtree labels; `{old, new}` for a relabel).
    pub labels: Vec<String>,
}

impl EditDelta {
    /// Map an old node id to its new id (`None` if the node was deleted).
    ///
    /// The map is a monotone shift: document order among surviving nodes is
    /// preserved, which is what lets interval/CSR relation rows be patched
    /// instead of recomputed.
    #[inline]
    pub fn remap(&self, old: u32) -> Option<u32> {
        match self.kind {
            EditKind::Relabel => Some(old),
            EditKind::Insert => {
                if old < self.pos {
                    Some(old)
                } else {
                    Some(old + self.count)
                }
            }
            EditKind::Delete => {
                if old < self.pos {
                    Some(old)
                } else if old < self.pos + self.count {
                    None
                } else {
                    Some(old - self.count)
                }
            }
        }
    }

    /// Map a new node id back to its old id (`None` for freshly inserted
    /// ids).  Inverse of [`EditDelta::remap`] on surviving nodes.
    #[inline]
    pub fn preimage(&self, new: u32) -> Option<u32> {
        match self.kind {
            EditKind::Relabel => Some(new),
            EditKind::Insert => {
                if new < self.pos {
                    Some(new)
                } else if new < self.pos + self.count {
                    None
                } else {
                    Some(new - self.count)
                }
            }
            EditKind::Delete => {
                if new < self.pos {
                    Some(new)
                } else {
                    Some(new + self.count)
                }
            }
        }
    }

    /// Is `new` an id that did not exist before the edit?
    #[inline]
    pub fn is_fresh(&self, new: u32) -> bool {
        self.kind == EditKind::Insert && new >= self.pos && new < self.pos + self.count
    }

    /// The freshly inserted id range (empty unless [`EditKind::Insert`]).
    pub fn fresh_rows(&self) -> std::ops::Range<u32> {
        match self.kind {
            EditKind::Insert => self.pos..self.pos + self.count,
            _ => 0..0,
        }
    }

    /// The rows (in **new** ids, sorted, deduplicated) whose `axis` relation
    /// may differ from the remapped old relation.  Every other row of the
    /// new step relation equals its old row with [`EditDelta::remap`]
    /// applied to the columns.
    ///
    /// This is the load-bearing soundness contract of incremental matrix
    /// maintenance; `run_edit_fuzz` checks it tuple-for-tuple against full
    /// recompilation.
    pub fn dirty_rows(&self, axis: Axis) -> Vec<u32> {
        let mut rows: Vec<u32> = Vec::new();
        let fresh = self.fresh_rows();
        match self.kind {
            // Relabel changes no structure; label-footprint filtering (not
            // row dirtying) handles it.
            EditKind::Relabel => return rows,
            EditKind::Insert | EditKind::Delete => {
                match axis {
                    // A node's own id, parent and ancestors never change
                    // beyond the shift.
                    Axis::SelfAxis | Axis::Parent | Axis::Ancestor | Axis::AncestorOrSelf => {}
                    // The insertion parent gained/lost a child; its first
                    // child may have changed.
                    Axis::Child | Axis::FirstChild => {
                        if self.parent != NIL {
                            rows.push(self.parent);
                        }
                    }
                    // Every ancestor-or-self of the insertion parent
                    // gained/lost the edited range as descendants.
                    Axis::Descendant | Axis::DescendantOrSelf => {
                        rows.extend_from_slice(&self.path);
                    }
                    // Sibling axes are sibling-local: only the children of
                    // the insertion parent see different siblings.
                    Axis::FollowingSibling
                    | Axis::FollowingSiblingOrSelf
                    | Axis::PrecedingSibling
                    | Axis::PrecedingSiblingOrSelf
                    | Axis::NextSibling
                    | Axis::PrevSibling => {
                        rows.extend_from_slice(&self.siblings);
                    }
                }
            }
        }
        // Freshly inserted nodes have no old row at all: always dirty.
        rows.extend(fresh);
        rows.sort_unstable();
        rows.dedup();
        rows
    }
}

/// Iterative preorder copy of `tree` into `b`, yielding builder events; the
/// `visit` callback is told every (source node, builder id) pair as it
/// opens, and `insert_at` splices a foreign subtree into the children of
/// one node at a given child index.
struct Splice<'t> {
    subtree: &'t Tree,
    parent: NodeId,
    index: usize,
}

fn copy_tree(
    tree: &Tree,
    b: &mut TreeBuilder,
    skip: Option<NodeId>,
    relabel: Option<(NodeId, &str)>,
    splice: Option<&Splice<'_>>,
) -> Option<u32> {
    // Stack events: Open(source node) / Close / Foreign(subtree node).
    enum Ev {
        Open(NodeId),
        OpenForeign(NodeId),
        Close,
    }
    let mut spliced_at: Option<u32> = None;
    let mut stack: Vec<Ev> = vec![Ev::Open(tree.root())];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Close => {
                b.close();
            }
            Ev::Open(n) => {
                let label = match relabel {
                    Some((target, new)) if target == n => new,
                    _ => tree.label_str(n),
                };
                b.open(label);
                stack.push(Ev::Close);
                // Children (and a possible splice) push in reverse so they
                // pop in document order.
                let children: Vec<NodeId> =
                    tree.children(n).filter(|c| Some(*c) != skip).collect();
                let splice_here = splice.filter(|s| s.parent == n);
                let end = children.len();
                let insert_index = splice_here.map(|s| s.index.min(end));
                for i in (0..=end).rev() {
                    // Reverse push order: the splice at slot `i` precedes
                    // child `i` in document order, so it is pushed later.
                    if i < end {
                        stack.push(Ev::Open(children[i]));
                    }
                    if insert_index == Some(i) {
                        if let Some(s) = splice_here {
                            stack.push(Ev::OpenForeign(s.subtree.root()));
                        }
                    }
                }
            }
            Ev::OpenForeign(n) => {
                let sub = splice.expect("foreign events only exist while splicing").subtree;
                let id = b.open(sub.label_str(n));
                if n == sub.root() {
                    spliced_at = Some(id.0);
                }
                stack.push(Ev::Close);
                let children: Vec<NodeId> = sub.children(n).collect();
                for c in children.into_iter().rev() {
                    stack.push(Ev::OpenForeign(c));
                }
            }
        }
    }
    spliced_at
}

fn ancestor_or_self_path(tree: &Tree, node: NodeId) -> Vec<u32> {
    let mut path = Vec::new();
    let mut cur = Some(node);
    while let Some(n) = cur {
        path.push(n.0);
        cur = tree.parent(n);
    }
    path.reverse();
    path
}

fn subtree_labels(tree: &Tree, root: NodeId) -> Vec<String> {
    let mut labels: Vec<String> = tree
        .descendants_or_self(root)
        .into_iter()
        .map(|n| tree.label_str(n).to_string())
        .collect();
    labels.sort();
    labels.dedup();
    labels
}

impl Tree {
    /// Insert a copy of `subtree` as the `index`-th child of `parent`
    /// (clamped to the current child count), returning the edited tree and
    /// the delta.  The inserted copy occupies the contiguous **new**
    /// preorder range `delta.pos .. delta.pos + delta.count`.
    pub fn insert_subtree(
        &self,
        parent: NodeId,
        index: usize,
        subtree: &Tree,
    ) -> Result<(Tree, EditDelta), TreeError> {
        if !self.contains(parent) {
            return Err(TreeError::InvalidNode(parent.0));
        }
        let splice = Splice { subtree, parent, index };
        let mut b = TreeBuilder::new();
        let pos = copy_tree(self, &mut b, None, None, Some(&splice))
            .expect("splice parent exists, so the subtree is always copied");
        let new = b.finish().expect("copy is balanced");
        let count = subtree.len() as u32;
        let delta = EditDelta {
            kind: EditKind::Insert,
            old_len: self.len(),
            new_len: new.len(),
            pos,
            count,
            parent: parent.0,
            path: ancestor_or_self_path(self, parent),
            siblings: new.children(parent).map(|c| c.0).collect(),
            labels: subtree_labels(subtree, subtree.root()),
        };
        debug_assert_eq!(delta.new_len, delta.old_len + count as usize);
        Ok((new, delta))
    }

    /// Delete the subtree rooted at `node`, returning the edited tree and
    /// the delta.  Deleting the root is an error (the data model requires a
    /// non-empty tree).
    pub fn delete_subtree(&self, node: NodeId) -> Result<(Tree, EditDelta), TreeError> {
        if !self.contains(node) {
            return Err(TreeError::InvalidNode(node.0));
        }
        if node == self.root() {
            return Err(TreeError::EmptyTree);
        }
        let parent = self.parent(node).expect("non-root node has a parent");
        let count = self.descendants_or_self(node).len() as u32;
        let labels = subtree_labels(self, node);
        let mut b = TreeBuilder::new();
        copy_tree(self, &mut b, Some(node), None, None);
        let new = b.finish().expect("copy is balanced");
        let delta = EditDelta {
            kind: EditKind::Delete,
            old_len: self.len(),
            new_len: new.len(),
            pos: node.0,
            count,
            parent: parent.0,
            path: ancestor_or_self_path(self, parent),
            siblings: new.children(parent).map(|c| c.0).collect(),
            labels,
        };
        debug_assert_eq!(delta.old_len, delta.new_len + count as usize);
        Ok((new, delta))
    }

    /// Change the label of `node` to `label`, returning the edited tree and
    /// the delta.  Ids do not move; only the `lab` predicates of the old
    /// and new label change.
    pub fn relabel(&self, node: NodeId, label: &str) -> Result<(Tree, EditDelta), TreeError> {
        if !self.contains(node) {
            return Err(TreeError::InvalidNode(node.0));
        }
        let old_label = self.label_str(node).to_string();
        let mut b = TreeBuilder::new();
        copy_tree(self, &mut b, None, Some((node, label)), None);
        let new = b.finish().expect("copy is balanced");
        let parent = self.parent(node).map(|p| p.0).unwrap_or(NIL);
        let mut labels = vec![old_label, label.to_string()];
        labels.sort();
        labels.dedup();
        let delta = EditDelta {
            kind: EditKind::Relabel,
            old_len: self.len(),
            new_len: new.len(),
            pos: node.0,
            count: 1,
            parent,
            path: match self.parent(node) {
                Some(p) => ancestor_or_self_path(self, p),
                None => Vec::new(),
            },
            siblings: match self.parent(node) {
                Some(p) => new.children(p).map(|c| c.0).collect(),
                None => Vec::new(),
            },
            labels,
        };
        Ok((new, delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Tree {
        Tree::from_terms(s).unwrap()
    }

    #[test]
    fn insert_at_every_index() {
        let base = t("a(b(d,e),c)");
        let sub = t("x(y)");
        let b = base.nodes_with_label_str("b")[0];
        for index in 0..=3 {
            let (new, delta) = base.insert_subtree(b, index, &sub).unwrap();
            new.check_invariants().unwrap();
            assert_eq!(new.len(), base.len() + 2);
            assert_eq!(delta.kind, EditKind::Insert);
            assert_eq!(delta.count, 2);
            assert_eq!(delta.parent, b.0);
            // The inserted range really is the x(y) copy.
            assert_eq!(new.label_str(NodeId(delta.pos)), "x");
            assert_eq!(new.label_str(NodeId(delta.pos + 1)), "y");
            // Clamping: indices past the end insert at the end.
            let kids: Vec<String> = new
                .children(b)
                .map(|c| new.label_str(c).to_string())
                .collect();
            let expected_index = index.min(2);
            assert_eq!(kids[expected_index], "x");
            assert_eq!(delta.labels, vec!["x".to_string(), "y".to_string()]);
        }
    }

    #[test]
    fn insert_terms_round_trip() {
        let base = t("a(b,c)");
        let sub = t("x(y,z)");
        let c = base.nodes_with_label_str("c")[0];
        let (new, delta) = base.insert_subtree(c, 0, &sub).unwrap();
        assert_eq!(new.to_terms(), "a(b,c(x(y,z)))");
        assert_eq!(delta.pos, 3);
        assert_eq!(delta.path, vec![0, 2]);
        assert_eq!(delta.siblings, vec![3]);
    }

    #[test]
    fn delete_subtree_shifts_ids() {
        let base = t("a(b(d,e),c(f))");
        let b = base.nodes_with_label_str("b")[0];
        let (new, delta) = base.delete_subtree(b).unwrap();
        new.check_invariants().unwrap();
        assert_eq!(new.to_terms(), "a(c(f))");
        assert_eq!(delta.kind, EditKind::Delete);
        assert_eq!((delta.pos, delta.count), (1, 3));
        assert_eq!(delta.remap(0), Some(0));
        assert_eq!(delta.remap(1), None);
        assert_eq!(delta.remap(3), None);
        assert_eq!(delta.remap(4), Some(1));
        assert_eq!(delta.labels, vec!["b", "d", "e"]);
    }

    #[test]
    fn delete_root_is_an_error() {
        let base = t("a(b)");
        assert_eq!(
            base.delete_subtree(base.root()).unwrap_err(),
            TreeError::EmptyTree
        );
    }

    #[test]
    fn relabel_keeps_ids() {
        let base = t("a(b,c)");
        let c = base.nodes_with_label_str("c")[0];
        let (new, delta) = base.relabel(c, "z").unwrap();
        assert_eq!(new.to_terms(), "a(b,z)");
        assert_eq!(delta.kind, EditKind::Relabel);
        assert_eq!(delta.remap(2), Some(2));
        assert_eq!(delta.labels, vec!["c", "z"]);
        assert!(delta.dirty_rows(Axis::Descendant).is_empty());
    }

    #[test]
    fn invalid_nodes_are_rejected() {
        let base = t("a(b)");
        let bogus = NodeId(99);
        assert!(matches!(
            base.insert_subtree(bogus, 0, &base),
            Err(TreeError::InvalidNode(99))
        ));
        assert!(matches!(base.delete_subtree(bogus), Err(TreeError::InvalidNode(99))));
        assert!(matches!(base.relabel(bogus, "x"), Err(TreeError::InvalidNode(99))));
    }

    #[test]
    fn dirty_rows_cover_exactly_the_changed_step_rows() {
        // Brute-force the soundness contract: for every axis, every clean
        // row of the new step relation must equal the remapped old row.
        let base = t("a(b(d,e),c(f(g),h))");
        let sub = t("x(y)");
        let axes = [
            Axis::SelfAxis,
            Axis::Child,
            Axis::Parent,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::Ancestor,
            Axis::AncestorOrSelf,
            Axis::FollowingSibling,
            Axis::FollowingSiblingOrSelf,
            Axis::PrecedingSibling,
            Axis::PrecedingSiblingOrSelf,
            Axis::NextSibling,
            Axis::PrevSibling,
            Axis::FirstChild,
        ];
        let mut cases: Vec<(Tree, EditDelta)> = Vec::new();
        for target in base.nodes() {
            for index in 0..=2 {
                cases.push(base.insert_subtree(target, index, &sub).unwrap());
            }
            if target != base.root() {
                cases.push(base.delete_subtree(target).unwrap());
            }
        }
        for (new, delta) in cases {
            for &axis in &axes {
                let dirty = delta.dirty_rows(axis);
                for old_u in base.nodes() {
                    let Some(new_u) = delta.remap(old_u.0) else { continue };
                    if dirty.binary_search(&new_u).is_ok() {
                        continue;
                    }
                    let old_row: Vec<u32> = base
                        .axis_iter(axis, old_u)
                        .filter_map(|v| delta.remap(v.0))
                        .collect();
                    let new_row: Vec<u32> =
                        new.axis_iter(axis, NodeId(new_u)).map(|v| v.0).collect();
                    let mut old_sorted = old_row;
                    let mut new_sorted = new_row;
                    old_sorted.sort_unstable();
                    new_sorted.sort_unstable();
                    assert_eq!(
                        old_sorted, new_sorted,
                        "axis {axis:?} row {new_u} changed but was not dirty ({delta:?})"
                    );
                }
            }
        }
    }
}
