//! Table-driven axis tests (rstest-style, expressed with a local macro since
//! the build environment has no crates.io access).
//!
//! Every case names an axis, a start node and the exact expected target
//! sequence — including order, which is document order for forward axes and
//! reverse document order for upward/backward axes. The fixture tree is
//! built by hand with [`TreeBuilder`], one distinct label per node:
//!
//! ```text
//! r
//! ├── a
//! │   ├── d
//! │   ├── e
//! │   │   └── g
//! │   └── f
//! └── b
//! └── c
//!     └── h
//! ```
//!
//! (`r` has children `a`, `b`, `c`; `a` has `d`, `e`, `f`; `e` has `g`;
//! `c` has `h`.)

use xpath_tree::{Axis, NodeId, Tree, TreeBuilder};

fn fixture() -> Tree {
    let mut b = TreeBuilder::new();
    b.open("r");
    {
        b.open("a");
        b.leaf("d");
        b.open("e");
        b.leaf("g");
        b.close();
        b.leaf("f");
        b.close();
    }
    b.leaf("b");
    {
        b.open("c");
        b.leaf("h");
        b.close();
    }
    b.close();
    b.finish().expect("fixture is balanced")
}

fn by_label(t: &Tree, label: &str) -> NodeId {
    let nodes = t.nodes_with_label_str(label);
    assert_eq!(nodes.len(), 1, "fixture labels are unique ({label})");
    nodes[0]
}

fn labels(t: &Tree, nodes: &[NodeId]) -> Vec<String> {
    nodes.iter().map(|&n| t.label_str(n).to_string()).collect()
}

/// `case_name: axis, start_label => [expected labels in axis order];`
macro_rules! axis_cases {
    ($($name:ident: $axis:expr, $start:literal => [$($expect:literal),* $(,)?];)*) => {
        $(
            #[test]
            fn $name() {
                let t = fixture();
                let start = by_label(&t, $start);
                let got = labels(&t, &t.axis_nodes($axis, start));
                let want: Vec<&str> = vec![$($expect),*];
                assert_eq!(got, want, "{} from {:?}", $axis, $start);
            }
        )*
    };
}

axis_cases! {
    // self: the identity on inner, leaf and root nodes.
    self_on_root:            Axis::SelfAxis, "r" => ["r"];
    self_on_inner:           Axis::SelfAxis, "e" => ["e"];
    self_on_leaf:            Axis::SelfAxis, "g" => ["g"];

    // child: multiple children in document order; none on leaves.
    child_of_root:           Axis::Child, "r" => ["a", "b", "c"];
    child_of_inner:          Axis::Child, "a" => ["d", "e", "f"];
    child_of_unary:          Axis::Child, "e" => ["g"];
    child_of_leaf:           Axis::Child, "g" => [];

    // parent: exactly one for non-roots, empty at the root.
    parent_of_root:          Axis::Parent, "r" => [];
    parent_of_mid:           Axis::Parent, "e" => ["a"];
    parent_of_deep_leaf:     Axis::Parent, "g" => ["e"];

    // descendant (strict): full subtree in document order, without self.
    descendant_of_root:      Axis::Descendant, "r" => ["a", "d", "e", "g", "f", "b", "c", "h"];
    descendant_of_inner:     Axis::Descendant, "a" => ["d", "e", "g", "f"];
    descendant_of_leaf:      Axis::Descendant, "b" => [];

    // descendant-or-self: adds the start node first.
    descendant_or_self_inner: Axis::DescendantOrSelf, "a" => ["a", "d", "e", "g", "f"];
    descendant_or_self_leaf:  Axis::DescendantOrSelf, "h" => ["h"];

    // ancestor (strict): path to the root, nearest first.
    ancestor_of_deep_leaf:   Axis::Ancestor, "g" => ["e", "a", "r"];
    ancestor_of_child:       Axis::Ancestor, "b" => ["r"];
    ancestor_of_root:        Axis::Ancestor, "r" => [];

    // ancestor-or-self: starts with the node itself.
    ancestor_or_self_deep:   Axis::AncestorOrSelf, "g" => ["g", "e", "a", "r"];
    ancestor_or_self_root:   Axis::AncestorOrSelf, "r" => ["r"];

    // following-sibling (strict): document order, empty on the last sibling.
    following_sibling_first: Axis::FollowingSibling, "a" => ["b", "c"];
    following_sibling_mid:   Axis::FollowingSibling, "e" => ["f"];
    following_sibling_last:  Axis::FollowingSibling, "c" => [];
    following_sibling_only:  Axis::FollowingSibling, "g" => [];

    // following-sibling-or-self.
    following_or_self_first: Axis::FollowingSiblingOrSelf, "d" => ["d", "e", "f"];
    following_or_self_last:  Axis::FollowingSiblingOrSelf, "f" => ["f"];

    // preceding-sibling (strict): reverse document order (nearest first).
    preceding_sibling_last:  Axis::PrecedingSibling, "c" => ["b", "a"];
    preceding_sibling_mid:   Axis::PrecedingSibling, "e" => ["d"];
    preceding_sibling_first: Axis::PrecedingSibling, "a" => [];

    // preceding-sibling-or-self.
    preceding_or_self_last:  Axis::PrecedingSiblingOrSelf, "f" => ["f", "e", "d"];
    preceding_or_self_first: Axis::PrecedingSiblingOrSelf, "d" => ["d"];
}

/// Exhaustive coverage guard: the table above must exercise every axis of
/// the paper's surface syntax plus the four `-or-self` closures (the ten
/// axes of the evaluation algorithms).
#[test]
fn table_covers_all_query_axes() {
    let covered = [
        Axis::SelfAxis,
        Axis::Child,
        Axis::Parent,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::Ancestor,
        Axis::AncestorOrSelf,
        Axis::FollowingSibling,
        Axis::FollowingSiblingOrSelf,
        Axis::PrecedingSibling,
        Axis::PrecedingSiblingOrSelf,
    ];
    for axis in xpath_tree::axes::SURFACE_AXES {
        assert!(covered.contains(&axis), "{axis} missing from the table");
    }
}

/// Cross-check of the whole table at once: for every (axis, start) pair the
/// iterator, the O(1) `relates` predicate and the set-based
/// `axis_successors` must agree on membership.
#[test]
fn iterators_relates_and_successor_sets_agree_on_fixture() {
    use xpath_tree::NodeSet;
    let t = fixture();
    for axis in xpath_tree::axes::ALL_AXES {
        for u in t.nodes() {
            let listed: Vec<NodeId> = t.axis_nodes(axis, u);
            let member: std::collections::BTreeSet<NodeId> = listed.iter().copied().collect();
            assert_eq!(member.len(), listed.len(), "{axis} duplicates from {u}");
            let mut start = NodeSet::empty(t.len());
            start.insert(u);
            let succ = t.axis_successors(axis, &start);
            for v in t.nodes() {
                assert_eq!(axis.relates(&t, u, v), member.contains(&v), "{axis} ({u},{v})");
                assert_eq!(succ.contains(v), member.contains(&v), "{axis} S({u})∋{v}");
            }
        }
    }
}
