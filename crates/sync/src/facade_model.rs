//! `--cfg model_check` facade: constructors route to the deterministic
//! scheduler when the calling thread is inside [`crate::model::run`], and
//! fall back to plain `std` otherwise (so non-model tests keep passing in
//! the same build).  A primitive keeps the personality it was constructed
//! with; crossing one between a model run and the outside world is a bug
//! and panics loudly rather than corrupting a schedule.

use crate::model;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self as ss, LockResult, PoisonError};

const MIXED: &str =
    "xpath_sync facade primitive crossed a model-run boundary (created in one world, used in the other)";

/// Facade mutex: `std` outside model runs, scheduler-backed inside.
pub struct Mutex<T>(MutexImp<T>);

enum MutexImp<T> {
    Std(ss::Mutex<T>),
    Model(model::Mutex<T>),
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        if model::in_model() {
            Mutex(MutexImp::Model(model::Mutex::new(value)))
        } else {
            Mutex(MutexImp::Std(ss::Mutex::new(value)))
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match &self.0 {
            MutexImp::Std(m) => match m.lock() {
                Ok(g) => Ok(MutexGuard(GuardImp::Std(g))),
                Err(p) => Err(PoisonError::new(MutexGuard(GuardImp::Std(p.into_inner())))),
            },
            MutexImp::Model(m) => match m.lock() {
                Ok(g) => Ok(MutexGuard(GuardImp::Model(g))),
                Err(p) => Err(PoisonError::new(MutexGuard(GuardImp::Model(p.into_inner())))),
            },
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        match self.0 {
            MutexImp::Std(m) => m.into_inner(),
            MutexImp::Model(m) => m.into_inner(),
        }
    }

    pub fn clear_poison(&self) {
        match &self.0 {
            MutexImp::Std(m) => m.clear_poison(),
            MutexImp::Model(m) => m.clear_poison(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            MutexImp::Std(m) => m.fmt(f),
            MutexImp::Model(m) => m.fmt(f),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

/// Facade guard over either personality.
pub struct MutexGuard<'a, T>(GuardImp<'a, T>);

enum GuardImp<'a, T> {
    Std(ss::MutexGuard<'a, T>),
    Model(model::MutexGuard<'a, T>),
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.0 {
            GuardImp::Std(g) => g,
            GuardImp::Model(g) => g,
        }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.0 {
            GuardImp::Std(g) => g,
            GuardImp::Model(g) => g,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Facade condvar over either personality.
pub struct Condvar(CondvarImp);

enum CondvarImp {
    Std(ss::Condvar),
    Model(model::Condvar),
}

impl Condvar {
    pub fn new() -> Condvar {
        if model::in_model() {
            Condvar(CondvarImp::Model(model::Condvar::new()))
        } else {
            Condvar(CondvarImp::Std(ss::Condvar::new()))
        }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match (&self.0, guard.0) {
            (CondvarImp::Std(cv), GuardImp::Std(g)) => match cv.wait(g) {
                Ok(g) => Ok(MutexGuard(GuardImp::Std(g))),
                Err(p) => Err(PoisonError::new(MutexGuard(GuardImp::Std(p.into_inner())))),
            },
            (CondvarImp::Model(cv), GuardImp::Model(g)) => match cv.wait(g) {
                Ok(g) => Ok(MutexGuard(GuardImp::Model(g))),
                Err(p) => Err(PoisonError::new(MutexGuard(GuardImp::Model(p.into_inner())))),
            },
            _ => panic!("{MIXED}"),
        }
    }

    pub fn notify_one(&self) {
        match &self.0 {
            CondvarImp::Std(cv) => cv.notify_one(),
            CondvarImp::Model(cv) => cv.notify_one(),
        }
    }

    pub fn notify_all(&self) {
        match &self.0 {
            CondvarImp::Std(cv) => cv.notify_all(),
            CondvarImp::Model(cv) => cv.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            CondvarImp::Std(cv) => cv.fmt(f),
            CondvarImp::Model(cv) => cv.fmt(f),
        }
    }
}

/// Facade atomics: the subset of the `std` atomic API the workspace uses,
/// dispatching to scheduler-instrumented atomics inside model runs.
pub mod atomic {
    use crate::model;
    use std::sync::atomic as sa;

    pub use std::sync::atomic::Ordering;

    macro_rules! facade_atomic {
        ($name:ident, $std:ty, $model:ty, $prim:ty) => {
            use std::fmt;
            use std::sync::atomic::Ordering;

            pub struct $name(Imp);

            enum Imp {
                Std($std),
                Model($model),
            }

            impl $name {
                pub fn new(v: $prim) -> $name {
                    if crate::model::in_model() {
                        $name(Imp::Model(<$model>::new(v)))
                    } else {
                        $name(Imp::Std(<$std>::new(v)))
                    }
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    match &self.0 {
                        Imp::Std(a) => a.load(order),
                        Imp::Model(a) => a.load(order),
                    }
                }

                pub fn store(&self, v: $prim, order: Ordering) {
                    match &self.0 {
                        Imp::Std(a) => a.store(v, order),
                        Imp::Model(a) => a.store(v, order),
                    }
                }

                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    match &self.0 {
                        Imp::Std(a) => a.swap(v, order),
                        Imp::Model(a) => a.swap(v, order),
                    }
                }
            }

            impl fmt::Debug for $name {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    match &self.0 {
                        Imp::Std(a) => a.fmt(f),
                        Imp::Model(a) => a.fmt(f),
                    }
                }
            }
        };
    }

    macro_rules! facade_atomic_arith {
        ($name:ident, $prim:ty) => {
            impl $name {
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    match &self.0 {
                        Imp::Std(a) => a.fetch_add(v, order),
                        Imp::Model(a) => a.fetch_add(v, order),
                    }
                }

                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    match &self.0 {
                        Imp::Std(a) => a.fetch_sub(v, order),
                        Imp::Model(a) => a.fetch_sub(v, order),
                    }
                }

                pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                    match &self.0 {
                        Imp::Std(a) => a.fetch_max(v, order),
                        Imp::Model(a) => a.fetch_max(v, order),
                    }
                }
            }
        };
    }

    mod bool_imp {
        facade_atomic!(AtomicBool, super::sa::AtomicBool, super::model::AtomicBool, bool);
    }
    mod usize_imp {
        facade_atomic!(AtomicUsize, super::sa::AtomicUsize, super::model::AtomicUsize, usize);
        facade_atomic_arith!(AtomicUsize, usize);
    }
    mod u64_imp {
        facade_atomic!(AtomicU64, super::sa::AtomicU64, super::model::AtomicU64, u64);
        facade_atomic_arith!(AtomicU64, u64);
    }

    pub use bool_imp::AtomicBool;
    pub use u64_imp::AtomicU64;
    pub use usize_imp::AtomicUsize;
}

/// Scoped threads: virtual threads inside model runs, `std::thread::scope`
/// outside.
pub mod thread {
    use crate::model;

    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'a, 'scope> FnOnce(&Scope<'a, 'scope, 'env>) -> T,
    {
        if model::in_model() {
            model::thread::scope(|s| f(&Scope(ScopeImp::Model(s))))
        } else {
            std::thread::scope(|s| f(&Scope(ScopeImp::Std(s))))
        }
    }

    /// `'a` is the borrow of the underlying scope value, `'scope` the region
    /// spawned threads may borrow from (std collapses the two; the model
    /// scope is a local wrapper, so they differ there).
    pub struct Scope<'a, 'scope, 'env: 'scope>(ScopeImp<'a, 'scope, 'env>);

    enum ScopeImp<'a, 'scope, 'env: 'scope> {
        Std(&'scope std::thread::Scope<'scope, 'env>),
        Model(&'a model::thread::Scope<'scope, 'env>),
    }

    impl<'scope, 'env> Scope<'_, 'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            match &self.0 {
                ScopeImp::Std(s) => ScopedJoinHandle(HandleImp::Std(s.spawn(f))),
                ScopeImp::Model(s) => ScopedJoinHandle(HandleImp::Model(s.spawn(f))),
            }
        }
    }

    pub struct ScopedJoinHandle<'scope, T>(HandleImp<'scope, T>);

    enum HandleImp<'scope, T> {
        Std(std::thread::ScopedJoinHandle<'scope, T>),
        Model(model::thread::ScopedJoinHandle<'scope, T>),
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                HandleImp::Std(h) => h.join(),
                HandleImp::Model(h) => h.join(),
            }
        }
    }

    pub fn yield_now() {
        if model::in_model() {
            model::thread::yield_now()
        } else {
            std::thread::yield_now()
        }
    }
}
