//! Normal-build facade: `#[inline]` newtypes over `std::sync` /
//! `std::thread` with identical semantics (including poisoning).  This is
//! the personality production binaries get; the model checker is only wired
//! in under `--cfg model_check` (see `facade_model.rs`).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self as ss, LockResult, PoisonError};

/// Drop-in `std::sync::Mutex`.
pub struct Mutex<T>(ss::Mutex<T>);

impl<T> Mutex<T> {
    #[inline]
    pub fn new(value: T) -> Mutex<T> {
        Mutex(ss::Mutex::new(value))
    }

    #[inline]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match self.0.lock() {
            Ok(g) => Ok(MutexGuard(g)),
            Err(p) => Err(PoisonError::new(MutexGuard(p.into_inner()))),
        }
    }

    #[inline]
    pub fn into_inner(self) -> LockResult<T> {
        self.0.into_inner()
    }

    #[inline]
    pub fn clear_poison(&self) {
        self.0.clear_poison()
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

/// Drop-in `std::sync::MutexGuard`.
pub struct MutexGuard<'a, T>(ss::MutexGuard<'a, T>);

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Drop-in `std::sync::Condvar`.
pub struct Condvar(ss::Condvar);

impl Condvar {
    #[inline]
    pub fn new() -> Condvar {
        Condvar(ss::Condvar::new())
    }

    #[inline]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match self.0.wait(guard.0) {
            Ok(g) => Ok(MutexGuard(g)),
            Err(p) => Err(PoisonError::new(MutexGuard(p.into_inner()))),
        }
    }

    #[inline]
    pub fn notify_one(&self) {
        self.0.notify_one()
    }

    #[inline]
    pub fn notify_all(&self) {
        self.0.notify_all()
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Atomics are straight re-exports in normal builds: zero-cost and the full
/// `std` API.  Under `model_check` these become scheduling-point wrappers
/// with the subset of operations the workspace actually uses.
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Scoped threads, passthrough to `std::thread::scope`.
pub mod thread {
    /// Drop-in `std::thread::scope`.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(|s| f(&Scope(s)))
    }

    /// Drop-in `std::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        #[inline]
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.0.spawn(f))
        }
    }

    /// Drop-in `std::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        #[inline]
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    #[inline]
    pub fn yield_now() {
        std::thread::yield_now()
    }
}
