//! `xpath_sync`: the workspace's synchronisation facade + model checker.
//!
//! Production crates (`xpath_corpus`, `xpath_pplbin`) import their lock,
//! condvar, atomic and scoped-thread primitives from here instead of
//! `std::sync` / `std::thread` (a rule `xpath_lint` enforces).  The facade
//! has two personalities, selected at compile time:
//!
//! - **Normal builds** (`cargo build`/`test` with no extra flags): every
//!   type is a `#[inline]` newtype over — or a straight re-export of — its
//!   `std` counterpart, including poison semantics.  There is no scheduler,
//!   no registry, no extra state: the facade compiles to plain `std`.
//! - **`RUSTFLAGS="--cfg model_check"`**: constructors check whether the
//!   calling thread is inside [`model::run`].  Inside a run they build
//!   [`model`] primitives, so every acquire/release/wait/notify/atomic of
//!   the *real production types* becomes a deterministic scheduling point;
//!   outside a run they quietly fall back to `std`, so unrelated tests keep
//!   working in the same build.
//!
//! The [`model`] module itself (the cooperative scheduler and its mirror
//! types) is compiled unconditionally: the replica-based model tests and
//! the mutation self-tests in `crates/sync/tests/` run under a plain
//! `cargo test`, with committed failure seeds.  See `README.md`
//! ("Correctness tooling") for how to replay a failing seed.

#![forbid(unsafe_code)]

pub mod model;

#[cfg(not(model_check))]
mod facade_std;
#[cfg(not(model_check))]
use facade_std as facade;

#[cfg(model_check)]
mod facade_model;
#[cfg(model_check)]
use facade_model as facade;

pub use facade::atomic;
pub use facade::thread;
pub use facade::{Condvar, Mutex, MutexGuard};

/// Re-exported so facade users spell lock results exactly like `std`.
pub use std::sync::{LockResult, PoisonError};
