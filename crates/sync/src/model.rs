//! The deterministic cooperative scheduler behind `--cfg model_check`.
//!
//! A *model run* ([`run`]) executes a closure in a world where every
//! synchronisation operation — lock acquire/release, condvar wait/notify,
//! atomic access, thread spawn/join — is a *scheduling point*.  Virtual
//! threads are real OS threads, but a baton protocol guarantees that **at
//! most one of them is ever runnable**: at each scheduling point the running
//! thread consults the shared [`Kernel`], which picks the next thread to run
//! from a seeded pseudo-random stream.  Executions are therefore fully
//! deterministic per seed: a failing interleaving found by [`explore`] can be
//! replayed forever with [`replay`] and the same seed.
//!
//! What the kernel detects:
//!
//! - **Deadlocks and lost wakeups** — no virtual thread is runnable but some
//!   are still alive.  A consumer parked on a condvar whose producer forgot
//!   to `notify` ends up here deterministically (spurious wakeups are *off*
//!   by default precisely so a missing notify cannot be masked; turn them on
//!   via [`Config::spurious_wakeups`] to stress the wait-loop discipline
//!   instead).
//! - **Lock-order inversions** — a lockdep-style order graph records every
//!   "held `a` while acquiring `b`" edge and fails the run as soon as the
//!   graph gains a cycle, even on schedules that did not actually deadlock.
//! - **Invariant violations** — any panic in a virtual thread that the test
//!   does not itself catch (e.g. a failed `assert!`) fails the run with the
//!   panic message and the seed that produced the schedule.
//!
//! The types in this module ([`Mutex`], [`Condvar`], [`thread::scope`],
//! [`AtomicUsize`], …) mirror the `std::sync` API and are what the
//! crate-level facades dispatch to under `--cfg model_check`.  They are also
//! usable directly — that is how the always-on model tests in
//! `crates/sync/tests/` run under a plain `cargo test` with no custom cfg.
//!
//! Two caveats worth knowing before writing a model test:
//!
//! - Scheduling decisions are consumed from one seeded stream, so a
//!   *committed* seed stays meaningful only while the code under test
//!   performs the same sequence of sync operations.  Committed seeds live
//!   next to the replica tests, which are fully deterministic; tests over
//!   real production types (whose `HashMap`s have per-process random state)
//!   should assert invariants over [`explore`] instead of pinning seeds.
//! - The scheduler serialises threads, so it explores *interleavings*, not
//!   weak-memory reorderings: atomics are modelled as sequentially
//!   consistent regardless of the `Ordering` argument.

use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{
    Arc, Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard,
    Once, PoisonError,
};

/// Default per-run step budget before the kernel declares [`FailureKind::StepLimit`].
pub const DEFAULT_MAX_STEPS: u64 = 200_000;

/// Parameters of one model run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Seed of the scheduling stream.  Same seed + same sync-op sequence =
    /// same interleaving.
    pub seed: u64,
    /// Abort the run (as a failure) after this many scheduling points — the
    /// backstop against livelocks in the code under test.
    pub max_steps: u64,
    /// CHESS-style bound on *preemptive* switches (switches at points where
    /// the running thread could have continued).  `None` = unbounded.
    /// Blocking switches are never counted.
    pub preemption_bound: Option<u32>,
    /// Allow the scheduler to wake condvar waiters that were never notified
    /// (legal per POSIX and `std`).  Off by default so lost-wakeup bugs
    /// deterministically deadlock instead of being masked.
    pub spurious_wakeups: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            seed: 0,
            max_steps: DEFAULT_MAX_STEPS,
            preemption_bound: None,
            spurious_wakeups: false,
        }
    }
}

impl Config {
    /// A default config with an explicit seed.
    pub fn with_seed(seed: u64) -> Config {
        Config { seed, ..Config::default() }
    }
}

/// Why a model run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// Live threads exist but none is runnable (includes lost wakeups).
    Deadlock,
    /// The lock-order graph gained a cycle.
    LockOrderInversion,
    /// A virtual thread panicked and nobody caught it (failed invariant).
    Panic,
    /// The run exceeded [`Config::max_steps`].
    StepLimit,
}

/// A failed model run: what went wrong, where, and on which seed.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    /// Human-readable description (blocked threads, the order cycle, the
    /// panic message, …).
    pub detail: String,
    /// Virtual thread the failure was attributed to, if any.
    pub thread: Option<usize>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            FailureKind::Deadlock => "deadlock",
            FailureKind::LockOrderInversion => "lock-order inversion",
            FailureKind::Panic => "panic",
            FailureKind::StepLimit => "step limit exceeded",
        };
        match self.thread {
            Some(t) => write!(f, "{kind} (thread t{t}): {}", self.detail),
            None => write!(f, "{kind}: {}", self.detail),
        }
    }
}

/// The outcome of one model run: seed, step count, failure (if any) and the
/// full schedule trace.
#[derive(Debug)]
pub struct Report {
    pub seed: u64,
    pub steps: u64,
    pub failure: Option<Failure>,
    /// One line per scheduling event, in order.
    pub trace: Vec<String>,
}

impl Report {
    /// True when the run failed.
    pub fn failed(&self) -> bool {
        self.failure.is_some()
    }

    /// The last `n` trace lines, newline-joined — the useful tail of a
    /// failing schedule.
    pub fn trace_tail(&self, n: usize) -> String {
        let start = self.trace.len().saturating_sub(n);
        self.trace[start..].join("\n")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.failure {
            Some(fail) => write!(
                f,
                "model run FAILED (seed {}, {} steps): {fail}\n--- last schedule events ---\n{}",
                self.seed,
                self.steps,
                self.trace_tail(24)
            ),
            None => write!(f, "model run ok (seed {}, {} steps)", self.seed, self.steps),
        }
    }
}

// ---------------------------------------------------------------------------
// Seeded scheduling stream (SplitMix64, same generator family as shims/rand).
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn one_in(&mut self, n: u64) -> bool {
        self.next().is_multiple_of(n)
    }
}

// ---------------------------------------------------------------------------
// Kernel state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Status {
    Runnable,
    /// Blocked acquiring a lock; runnable once the lock is free.
    BlockedLock(usize),
    /// Parked on a condvar; runnable once notified *and* the lock is free.
    Waiting { cv: usize, lock: usize, notified: bool },
    /// Blocked joining the listed threads; runnable once all are finished.
    Joining(Vec<usize>),
    Finished,
}

struct VThread {
    status: Status,
    /// Locks currently held, in acquisition order.
    held: Vec<usize>,
    /// Payload of an uncaught user panic, for `join` / scope propagation.
    panic_payload: Option<Box<dyn Any + Send>>,
    /// Whether a `ScopedJoinHandle::join` consumed this thread's outcome.
    joined: bool,
}

struct LockState {
    owner: Option<usize>,
    poisoned: bool,
    name: String,
}

struct Sched {
    cfg: Config,
    rng: Rng,
    threads: Vec<VThread>,
    active: usize,
    alive: usize,
    steps: u64,
    preemptions: u32,
    locks: Vec<LockState>,
    cv_names: Vec<String>,
    atomic_count: usize,
    /// Lockdep edges: held `.0` while acquiring `.1`.
    lock_edges: Vec<(usize, usize)>,
    trace: Vec<String>,
    failure: Option<Failure>,
    aborting: bool,
}

impl Sched {
    fn lock_name(&self, id: usize) -> &str {
        &self.locks[id].name
    }
}

/// The shared scheduler: a meta-mutex over [`Sched`] plus the baton condvar
/// every virtual thread parks on while it is not the active one.
pub(crate) struct Kernel {
    sched: StdMutex<Sched>,
    turn: StdCondvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Kernel>, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(Arc<Kernel>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn require_current(what: &str) -> (Arc<Kernel>, usize) {
    current().unwrap_or_else(|| panic!("{what} used outside model::run"))
}

/// True while the calling thread belongs to an active model run.
pub fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Sentinel panic payload used to unwind virtual threads when a run aborts.
struct ModelAbort;

fn abort_unwind() -> ! {
    panic::panic_any(ModelAbort)
}

/// Panic messages from virtual threads are captured into the [`Report`], so
/// the default "thread panicked at ..." stderr noise is suppressed while a
/// model run is active on the panicking thread.  Installed once, process-wide,
/// delegating to the previous hook outside model runs.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !in_model() {
                prev(info);
            }
        }));
    });
}

fn payload_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Kernel {
    fn new(cfg: Config) -> Kernel {
        let rng = Rng(cfg.seed ^ 0xD6E8_FEB8_6659_FD93);
        Kernel {
            sched: StdMutex::new(Sched {
                cfg,
                rng,
                threads: Vec::new(),
                active: 0,
                alive: 0,
                steps: 0,
                preemptions: 0,
                locks: Vec::new(),
                cv_names: Vec::new(),
                atomic_count: 0,
                lock_edges: Vec::new(),
                trace: Vec::new(),
                failure: None,
                aborting: false,
            }),
            turn: StdCondvar::new(),
        }
    }

    /// Lock the meta-mutex.  Poison recovery here is about *our* test
    /// harness robustness: a panicking virtual thread unwinds through kernel
    /// calls and must not wedge the other OS threads of the run.
    fn locked(&self) -> StdMutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn trace(s: &mut Sched, line: String) {
        s.trace.push(line);
    }

    fn fail(s: &mut Sched, kind: FailureKind, thread: Option<usize>, detail: String) {
        if s.failure.is_none() {
            Self::trace(s, format!("!! {kind:?}: {detail}"));
            s.failure = Some(Failure { kind, detail, thread });
        }
        s.aborting = true;
    }

    // -- registration -------------------------------------------------------

    fn register_lock(&self, name: &str) -> usize {
        let mut s = self.locked();
        let id = s.locks.len();
        let name = if name.is_empty() { format!("lock#{id}") } else { name.to_string() };
        s.locks.push(LockState { owner: None, poisoned: false, name });
        id
    }

    fn register_cv(&self, name: &str) -> usize {
        let mut s = self.locked();
        let id = s.cv_names.len();
        let name = if name.is_empty() { format!("cv#{id}") } else { name.to_string() };
        s.cv_names.push(name);
        id
    }

    fn register_atomic(&self) -> usize {
        let mut s = self.locked();
        let id = s.atomic_count;
        s.atomic_count += 1;
        id
    }

    fn register_thread(&self, parent: usize) -> usize {
        let mut s = self.locked();
        let tid = s.threads.len();
        s.threads.push(VThread {
            status: Status::Runnable,
            held: Vec::new(),
            panic_payload: None,
            joined: false,
        });
        s.alive += 1;
        Self::trace(&mut s, format!("t{parent} spawns t{tid}"));
        tid
    }

    // -- the scheduling core ------------------------------------------------

    fn runnable(s: &Sched, tid: usize) -> bool {
        match &s.threads[tid].status {
            Status::Runnable => true,
            Status::BlockedLock(l) => s.locks[*l].owner.is_none(),
            Status::Waiting { notified, lock, .. } => *notified && s.locks[*lock].owner.is_none(),
            Status::Joining(tids) => tids
                .iter()
                .all(|&t| matches!(s.threads[t].status, Status::Finished)),
            Status::Finished => false,
        }
    }

    /// Record the lockdep edge `held -> acquiring` and fail on a cycle.
    fn note_order_edge(s: &mut Sched, held: usize, acquiring: usize, tid: usize) {
        if held == acquiring || s.lock_edges.contains(&(held, acquiring)) {
            return;
        }
        // Does `acquiring` already reach `held`?  Then adding this edge
        // closes a cycle: some other schedule can deadlock on these locks.
        let mut stack = vec![acquiring];
        let mut seen = vec![false; s.locks.len()];
        let mut cycle = false;
        while let Some(n) = stack.pop() {
            if n == held {
                cycle = true;
                break;
            }
            if seen[n] {
                continue;
            }
            seen[n] = true;
            stack.extend(s.lock_edges.iter().filter(|e| e.0 == n).map(|e| e.1));
        }
        if cycle {
            let detail = format!(
                "t{tid} acquires '{}' while holding '{}', but the reverse order was \
                 already observed — cyclic lock order can deadlock",
                s.lock_name(acquiring),
                s.lock_name(held),
            );
            Self::fail(s, FailureKind::LockOrderInversion, Some(tid), detail);
            return;
        }
        s.lock_edges.push((held, acquiring));
    }

    /// Grant whatever `tid` was blocked on and mark it runnable.
    fn grant(s: &mut Sched, tid: usize) {
        let granted_lock = match &s.threads[tid].status {
            Status::BlockedLock(l) => Some(*l),
            Status::Waiting { lock, notified: true, .. } => Some(*lock),
            _ => None,
        };
        if let Some(l) = granted_lock {
            debug_assert!(s.locks[l].owner.is_none(), "granting a held lock");
            let held = s.threads[tid].held.clone();
            for h in held {
                Self::note_order_edge(s, h, l, tid);
            }
            s.locks[l].owner = Some(tid);
            s.threads[tid].held.push(l);
            let name = s.lock_name(l).to_string();
            Self::trace(s, format!("t{tid} acquires {name}"));
        }
        s.threads[tid].status = Status::Runnable;
    }

    /// Pick the next thread to run.  `voluntary` marks a point where `me`
    /// could continue (pure preemption opportunity).
    fn pick_next(s: &mut Sched, me: usize, voluntary: bool) -> Option<usize> {
        // Optionally fire a spurious wakeup before computing runnability.
        if s.cfg.spurious_wakeups {
            let parked: Vec<usize> = (0..s.threads.len())
                .filter(|&t| {
                    matches!(s.threads[t].status, Status::Waiting { notified: false, .. })
                })
                .collect();
            if !parked.is_empty() && s.rng.one_in(8) {
                let t = parked[s.rng.below(parked.len())];
                if let Status::Waiting { notified, .. } = &mut s.threads[t].status {
                    *notified = true;
                }
                Self::trace(s, format!("t{t} wakes spuriously"));
            }
        }
        let runnable: Vec<usize> =
            (0..s.threads.len()).filter(|&t| Self::runnable(s, t)).collect();
        if runnable.is_empty() {
            return None;
        }
        if voluntary && runnable.contains(&me) {
            let budget_ok = s.cfg.preemption_bound.is_none_or(|b| s.preemptions < b);
            if budget_ok {
                let pick = runnable[s.rng.below(runnable.len())];
                if pick != me {
                    s.preemptions += 1;
                    Self::trace(s, format!("preempt t{me} -> t{pick}"));
                }
                return Some(pick);
            }
            return Some(me);
        }
        Some(runnable[s.rng.below(runnable.len())])
    }

    /// The baton hand-off: account a step, pick and wake the next thread,
    /// then park until `me` is active again.  Must be entered with `me`'s new
    /// status already recorded in `s`.
    fn reschedule(&self, me: usize, mut s: StdMutexGuard<'_, Sched>, voluntary: bool) {
        if s.aborting {
            drop(s);
            abort_unwind();
        }
        s.steps += 1;
        if s.steps > s.cfg.max_steps {
            let max = s.cfg.max_steps;
            Self::fail(
                &mut s,
                FailureKind::StepLimit,
                Some(me),
                format!("exceeded {max} scheduling points — livelock in the code under test?"),
            );
            drop(s);
            self.turn.notify_all();
            abort_unwind();
        }
        match Self::pick_next(&mut s, me, voluntary) {
            Some(next) => {
                Self::grant(&mut s, next);
                s.active = next;
            }
            None => {
                if s.alive > 0 {
                    let detail = Self::deadlock_detail(&s);
                    Self::fail(&mut s, FailureKind::Deadlock, Some(me), detail);
                    drop(s);
                    self.turn.notify_all();
                    abort_unwind();
                }
                // alive == 0: the run is over; nothing to wake.
            }
        }
        self.turn.notify_all();
        loop {
            if s.aborting {
                drop(s);
                abort_unwind();
            }
            if s.active == me && matches!(s.threads[me].status, Status::Runnable) {
                return;
            }
            s = self.turn.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn deadlock_detail(s: &Sched) -> String {
        let mut parts = Vec::new();
        for (t, th) in s.threads.iter().enumerate() {
            match &th.status {
                Status::BlockedLock(l) => {
                    let owner = s.locks[*l]
                        .owner
                        .map_or("<free>".to_string(), |o| format!("t{o}"));
                    parts.push(format!(
                        "t{t} blocked acquiring '{}' (owner {owner})",
                        s.lock_name(*l)
                    ));
                }
                Status::Waiting { cv, notified: false, .. } => {
                    parts.push(format!("t{t} parked on '{}' with no notify coming — lost wakeup?", s.cv_names[*cv]));
                }
                Status::Waiting { cv, notified: true, .. } => {
                    parts.push(format!("t{t} notified on '{}' but cannot reacquire", s.cv_names[*cv]));
                }
                Status::Joining(tids) => {
                    parts.push(format!("t{t} joining {tids:?}"));
                }
                Status::Runnable | Status::Finished => {}
            }
        }
        format!("no runnable thread; {}", parts.join("; "))
    }

    // -- operations called by the model types -------------------------------

    /// A pure preemption point (`label` feeds the trace).
    fn yield_point(&self, me: usize, label: &str) {
        let mut s = self.locked();
        if !label.is_empty() {
            Self::trace(&mut s, format!("t{me} {label}"));
        }
        self.reschedule(me, s, true);
    }

    /// Block until the lock is granted; returns its poison flag.
    fn lock_acquire(&self, me: usize, lock: usize) -> bool {
        let mut s = self.locked();
        let name = s.lock_name(lock).to_string();
        Self::trace(&mut s, format!("t{me} wants {name}"));
        s.threads[me].status = Status::BlockedLock(lock);
        self.reschedule(me, s, false);
        self.locked().locks[lock].poisoned
    }

    fn lock_release(&self, me: usize, lock: usize, panicking: bool) {
        let mut s = self.locked();
        s.locks[lock].owner = None;
        if panicking {
            s.locks[lock].poisoned = true;
        }
        s.threads[me].held.retain(|&l| l != lock);
        let name = s.lock_name(lock).to_string();
        Self::trace(
            &mut s,
            if panicking {
                format!("t{me} poisons {name} (released while panicking)")
            } else {
                format!("t{me} releases {name}")
            },
        );
        // Unwinding threads (user panic or abort) must not re-enter the
        // scheduler from a Drop impl; they keep the baton until their
        // wrapper hands it off in finish_thread.
        if !panicking && !s.aborting {
            self.reschedule(me, s, true);
        }
    }

    fn clear_poison(&self, lock: usize) {
        self.locked().locks[lock].poisoned = false;
    }

    fn lock_poisoned(&self, lock: usize) -> bool {
        self.locked().locks[lock].poisoned
    }

    /// Atomically release the lock and park on the condvar; on return the
    /// lock is reacquired.  Returns its poison flag.
    fn cv_wait(&self, me: usize, cv: usize, lock: usize) -> bool {
        let mut s = self.locked();
        debug_assert_eq!(s.locks[lock].owner, Some(me), "cv wait without the lock");
        s.locks[lock].owner = None;
        s.threads[me].held.retain(|&l| l != lock);
        s.threads[me].status = Status::Waiting { cv, lock, notified: false };
        let (cv_name, lock_name) = (s.cv_names[cv].clone(), s.lock_name(lock).to_string());
        Self::trace(&mut s, format!("t{me} waits on {cv_name} (releases {lock_name})"));
        self.reschedule(me, s, false);
        self.locked().locks[lock].poisoned
    }

    fn cv_notify(&self, me: usize, cv: usize, all: bool) {
        let mut s = self.locked();
        let parked: Vec<usize> = (0..s.threads.len())
            .filter(|&t| matches!(&s.threads[t].status, Status::Waiting { cv: c, notified: false, .. } if *c == cv))
            .collect();
        let cv_name = s.cv_names[cv].clone();
        if parked.is_empty() {
            Self::trace(&mut s, format!("t{me} notifies {cv_name} (nobody parked)"));
        } else if all {
            for &t in &parked {
                if let Status::Waiting { notified, .. } = &mut s.threads[t].status {
                    *notified = true;
                }
            }
            Self::trace(&mut s, format!("t{me} notify_all {cv_name} wakes {parked:?}"));
        } else {
            let t = parked[s.rng.below(parked.len())];
            if let Status::Waiting { notified, .. } = &mut s.threads[t].status {
                *notified = true;
            }
            Self::trace(&mut s, format!("t{me} notify_one {cv_name} wakes t{t}"));
        }
        self.reschedule(me, s, true);
    }

    /// Scheduling point before an atomic access.
    fn atomic_point(&self, me: usize, id: usize, op: &str) {
        let mut s = self.locked();
        Self::trace(&mut s, format!("t{me} atomic#{id} {op}"));
        self.reschedule(me, s, true);
    }

    /// Child-thread entry: park until first scheduled.  Returns false when
    /// the run aborted before this thread ever ran.
    fn first_schedule(&self, me: usize) -> bool {
        let mut s = self.locked();
        loop {
            if s.aborting {
                s.threads[me].status = Status::Finished;
                s.alive -= 1;
                drop(s);
                self.turn.notify_all();
                return false;
            }
            if s.active == me && matches!(s.threads[me].status, Status::Runnable) {
                return true;
            }
            s = self.turn.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Child-thread exit: record the outcome and hand the baton onward.
    fn finish_thread(&self, me: usize, panic_payload: Option<Box<dyn Any + Send>>) {
        let mut s = self.locked();
        s.threads[me].status = Status::Finished;
        s.threads[me].panic_payload = panic_payload;
        s.alive -= 1;
        Self::trace(&mut s, format!("t{me} finishes"));
        if s.aborting {
            drop(s);
            self.turn.notify_all();
            return;
        }
        match Self::pick_next(&mut s, me, false) {
            Some(next) => {
                Self::grant(&mut s, next);
                s.active = next;
            }
            None => {
                if s.alive > 0 {
                    let detail = Self::deadlock_detail(&s);
                    Self::fail(&mut s, FailureKind::Deadlock, Some(me), detail);
                }
            }
        }
        drop(s);
        self.turn.notify_all();
    }

    /// Block until every listed thread has finished.
    fn join_threads(&self, me: usize, tids: &[usize]) {
        let mut s = self.locked();
        let pending: Vec<usize> = tids
            .iter()
            .copied()
            .filter(|&t| !matches!(s.threads[t].status, Status::Finished))
            .collect();
        if pending.is_empty() {
            drop(s);
            return;
        }
        Self::trace(&mut s, format!("t{me} joins {pending:?}"));
        s.threads[me].status = Status::Joining(pending);
        self.reschedule(me, s, false);
    }

    fn take_payload(&self, tid: usize) -> Option<Box<dyn Any + Send>> {
        let mut s = self.locked();
        s.threads[tid].joined = true;
        s.threads[tid].panic_payload.take()
    }

    /// Unjoined children that died of an uncaught panic (std scope semantics:
    /// the scope itself then panics).
    fn unjoined_panic(&self, tids: &[usize]) -> Option<Box<dyn Any + Send>> {
        let mut s = self.locked();
        for &t in tids {
            if !s.threads[t].joined && s.threads[t].panic_payload.is_some() {
                return s.threads[t].panic_payload.take();
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Execute `f` as a model run under `cfg` and report the outcome.
///
/// `f` runs on the calling thread as virtual thread `t0`; any threads it
/// spawns through [`thread::scope`] become `t1..`.  Does not nest.
pub fn run<F: FnOnce()>(cfg: Config, f: F) -> Report {
    install_quiet_panic_hook();
    assert!(current().is_none(), "model::run does not nest");
    let seed = cfg.seed;
    let kernel = Arc::new(Kernel::new(cfg));
    {
        let mut s = kernel.locked();
        s.threads.push(VThread {
            status: Status::Runnable,
            held: Vec::new(),
            panic_payload: None,
            joined: true,
        });
        s.alive = 1;
        s.active = 0;
    }
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&kernel), 0)));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let mut s = kernel.locked();
    s.threads[0].status = Status::Finished;
    s.alive -= 1;
    match result {
        Ok(()) => {}
        Err(p) if p.is::<ModelAbort>() => {
            debug_assert!(s.failure.is_some(), "abort without a recorded failure");
        }
        Err(p) => {
            let msg = payload_message(p.as_ref());
            Kernel::fail(&mut s, FailureKind::Panic, Some(0), msg);
        }
    }
    Report {
        seed,
        steps: s.steps,
        failure: s.failure.clone(),
        trace: std::mem::take(&mut s.trace),
    }
}

/// Run `f` under `iterations` consecutive seeds starting from `cfg.seed`;
/// return the first failing [`Report`], or `None` if every schedule passed.
pub fn explore_with<F: Fn()>(cfg: Config, iterations: u64, f: F) -> Option<Report> {
    for i in 0..iterations {
        let mut c = cfg.clone();
        c.seed = cfg.seed + i;
        let report = run(c, &f);
        if report.failed() {
            return Some(report);
        }
    }
    None
}

/// [`explore_with`] under the default config, seeds `0..iterations`.
pub fn explore<F: Fn()>(iterations: u64, f: F) -> Option<Report> {
    explore_with(Config::default(), iterations, f)
}

/// Re-run a single committed seed (the replay half of `explore`'s find).
pub fn replay<F: FnOnce()>(seed: u64, f: F) -> Report {
    run(Config::with_seed(seed), f)
}

// ---------------------------------------------------------------------------
// Model sync primitives (mirror std::sync)
// ---------------------------------------------------------------------------

/// A model-checked mutex.  API mirrors `std::sync::Mutex`, including poison
/// semantics; every acquire/release is a scheduling point.
pub struct Mutex<T> {
    kernel: Arc<Kernel>,
    id: usize,
    storage: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// A mutex named `lock#N` in traces.  Must be created inside a model run.
    pub fn new(value: T) -> Mutex<T> {
        Mutex::named("", value)
    }

    /// A mutex with a human-readable trace/diagnostic name.
    pub fn named(name: &str, value: T) -> Mutex<T> {
        let (kernel, _) = require_current("model::Mutex::new");
        let id = kernel.register_lock(name);
        Mutex { kernel, id, storage: StdMutex::new(value) }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (kernel, me) = require_current("model::Mutex::lock");
        assert!(
            Arc::ptr_eq(&kernel, &self.kernel),
            "model::Mutex used from a different model run than it was created in"
        );
        let poisoned = kernel.lock_acquire(me, self.id);
        // The scheduler serialises virtual threads, so the storage lock is
        // always free here; it exists to hold T and mirror std's aliasing
        // guarantees without unsafe code.
        let inner = self.storage.lock().unwrap_or_else(|p| p.into_inner());
        let guard = MutexGuard { lock: self, inner: Some(inner), me };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        let poisoned = self.kernel.lock_poisoned(self.id);
        let value = self.storage.into_inner().unwrap_or_else(|p| p.into_inner());
        if poisoned {
            Err(PoisonError::new(value))
        } else {
            Ok(value)
        }
    }

    pub fn clear_poison(&self) {
        self.kernel.clear_poison(self.id);
        self.storage.clear_poison();
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("model::Mutex").field("id", &self.id).finish_non_exhaustive()
    }
}

/// Guard of a [`Mutex`]; releasing (dropping) is a scheduling point.
///
/// `inner` is `Some` for the guard's whole observable life; `Condvar::wait`
/// and `Drop` take it out exactly once while dismantling the guard.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    me: usize,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("model MutexGuard already dismantled")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("model MutexGuard already dismantled")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the storage lock before telling the kernel: the next
        // thread granted this model lock takes the storage lock itself.
        drop(self.inner.take());
        self.lock
            .kernel
            .lock_release(self.me, self.lock.id, std::thread::panicking());
    }
}

/// A model-checked condition variable mirroring `std::sync::Condvar`.
pub struct Condvar {
    kernel: Arc<Kernel>,
    id: usize,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar::named("")
    }

    /// A condvar with a human-readable trace name.
    pub fn named(name: &str) -> Condvar {
        let (kernel, _) = require_current("model::Condvar::new");
        let id = kernel.register_cv(name);
        Condvar { kernel, id }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        // Dismantle the guard without running its Drop (which would release
        // the model lock as an ordinary unlock): `cv_wait` performs the
        // atomic release-and-park itself.  The suppressed guard holds only a
        // reference and a `None`, so nothing leaks.
        let mut g = ManuallyDrop::new(guard);
        let lock: &'a Mutex<T> = g.lock;
        let me = g.me;
        drop(g.inner.take());
        assert!(
            Arc::ptr_eq(&self.kernel, &lock.kernel),
            "model::Condvar paired with a Mutex from a different run"
        );
        let poisoned = self.kernel.cv_wait(me, self.id, lock.id);
        let inner = lock.storage.lock().unwrap_or_else(|p| p.into_inner());
        let guard = MutexGuard { lock, inner: Some(inner), me };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    pub fn notify_one(&self) {
        let (kernel, me) = require_current("model::Condvar::notify_one");
        kernel.cv_notify(me, self.id, false);
    }

    pub fn notify_all(&self) {
        let (kernel, me) = require_current("model::Condvar::notify_all");
        kernel.cv_notify(me, self.id, true);
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("model::Condvar").field("id", &self.id).finish()
    }
}

// ---------------------------------------------------------------------------
// Model atomics
// ---------------------------------------------------------------------------

macro_rules! model_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Model-checked atomic: every access is a scheduling point.  The
        /// scheduler serialises threads, so all orderings behave as SeqCst.
        pub struct $name {
            kernel: Arc<Kernel>,
            id: usize,
            v: $std,
        }

        impl $name {
            pub fn new(v: $prim) -> $name {
                let (kernel, _) = require_current(concat!("model::", stringify!($name), "::new"));
                let id = kernel.register_atomic();
                $name { kernel, id, v: <$std>::new(v) }
            }

            fn point(&self, op: &str) {
                let (_, me) = require_current("model atomic access");
                self.kernel.atomic_point(me, self.id, op);
            }

            pub fn load(&self, _order: Ordering) -> $prim {
                self.point("load");
                self.v.load(Ordering::SeqCst)
            }

            pub fn store(&self, v: $prim, _order: Ordering) {
                self.point("store");
                self.v.store(v, Ordering::SeqCst)
            }

            pub fn swap(&self, v: $prim, _order: Ordering) -> $prim {
                self.point("swap");
                self.v.swap(v, Ordering::SeqCst)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("model::", stringify!($name), "(#{:?})"), self.id)
            }
        }
    };
}

model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

macro_rules! model_atomic_arith {
    ($name:ident, $prim:ty) => {
        impl $name {
            pub fn fetch_add(&self, v: $prim, _order: Ordering) -> $prim {
                self.point("fetch_add");
                self.v.fetch_add(v, Ordering::SeqCst)
            }

            pub fn fetch_sub(&self, v: $prim, _order: Ordering) -> $prim {
                self.point("fetch_sub");
                self.v.fetch_sub(v, Ordering::SeqCst)
            }

            pub fn fetch_max(&self, v: $prim, _order: Ordering) -> $prim {
                self.point("fetch_max");
                self.v.fetch_max(v, Ordering::SeqCst)
            }
        }
    };
}

model_atomic_arith!(AtomicUsize, usize);
model_atomic_arith!(AtomicU64, u64);

// ---------------------------------------------------------------------------
// Model threads (scoped, mirroring std::thread::scope)
// ---------------------------------------------------------------------------

/// Scoped virtual threads.  `scope`/`Scope::spawn`/`join` mirror
/// `std::thread::scope`; under the hood each virtual thread is a real OS
/// thread gated by the kernel baton.
pub mod thread {
    use super::*;

    /// Model equivalent of `std::thread::scope`: children are virtual
    /// threads; the scope (model-)joins them all before returning, and — as
    /// in std — re-raises the panic of any unjoined panicked child.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        let (kernel, me) = require_current("model::thread::scope");
        std::thread::scope(|s| {
            let scope = Scope {
                kernel: Arc::clone(&kernel),
                me,
                std: s,
                children: RefCell::new(Vec::new()),
            };
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
            // Regardless of how the body exited, the children must finish
            // before the std scope joins their OS threads — a virtual thread
            // can only finish while the scheduler keeps handing it the baton.
            let children = scope.children.borrow().clone();
            kernel.join_threads(me, &children);
            match result {
                Ok(v) => {
                    if let Some(p) = kernel.unjoined_panic(&children) {
                        panic::resume_unwind(p);
                    }
                    v
                }
                Err(p) => panic::resume_unwind(p),
            }
        })
    }

    /// Handle passed to the [`scope`] closure.
    pub struct Scope<'scope, 'env: 'scope> {
        pub(super) kernel: Arc<Kernel>,
        pub(super) me: usize,
        pub(super) std: &'scope std::thread::Scope<'scope, 'env>,
        pub(super) children: RefCell<Vec<usize>>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a virtual thread.  The spawn itself is a scheduling point,
        /// so the child may run before `spawn` returns to the parent.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let tid = self.kernel.register_thread(self.me);
            self.children.borrow_mut().push(tid);
            let kernel = Arc::clone(&self.kernel);
            let std_handle = self.std.spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&kernel), tid)));
                let out = if kernel.first_schedule(tid) {
                    match panic::catch_unwind(AssertUnwindSafe(f)) {
                        Ok(v) => {
                            kernel.finish_thread(tid, None);
                            Some(v)
                        }
                        Err(p) => {
                            let payload = if p.is::<ModelAbort>() { None } else { Some(p) };
                            kernel.finish_thread(tid, payload);
                            None
                        }
                    }
                } else {
                    None
                };
                CURRENT.with(|c| *c.borrow_mut() = None);
                out
            });
            self.kernel.yield_point(self.me, "yields after spawn");
            ScopedJoinHandle { kernel: Arc::clone(&self.kernel), tid, std: std_handle }
        }
    }

    /// Handle to a spawned virtual thread.
    pub struct ScopedJoinHandle<'scope, T> {
        kernel: Arc<Kernel>,
        tid: usize,
        std: std::thread::ScopedJoinHandle<'scope, Option<T>>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Model-join: parks the caller until the child finishes; returns the
        /// child's value or its panic payload, like `std`.
        pub fn join(self) -> std::thread::Result<T> {
            let (_, me) = require_current("model join");
            self.kernel.join_threads(me, &[self.tid]);
            if let Some(p) = self.kernel.take_payload(self.tid) {
                return Err(p);
            }
            let v = self
                .std
                .join()
                .expect("model thread wrappers never panic")
                .expect("finished model thread without payload has a value");
            Ok(v)
        }
    }

    /// A pure preemption point, the model `std::thread::yield_now`.
    pub fn yield_now() {
        let (kernel, me) = require_current("model yield_now");
        kernel.yield_point(me, "yield_now");
    }
}
