//! Model checks for the `BoundedQueue` protocol (`crates/corpus/src/queue.rs`)
//! plus the mutation self-tests that keep the model checker honest.
//!
//! The queue here is a line-for-line replica of the production
//! `corpus::queue::BoundedQueue` locking protocol, built directly on the
//! always-available `model::{Mutex, Condvar}` so these tests run (and the
//! committed seeds stay meaningful) under a plain `cargo test` with no
//! custom cfg.  The CI `model-check` lane additionally drives the *real*
//! `BoundedQueue` through the facade (`crates/corpus/tests/model_check.rs`).

use std::collections::VecDeque;
use xpath_sync::model::{self, Config, FailureKind};

/// Replica of `corpus::queue::BoundedQueue` on the model primitives.
///
/// `DROP_NOTIFY_ON_PUSH` is the seeded lost-wakeup mutation: the exact bug
/// class the PR 6 hammer tests could only catch with OS-scheduling luck.
struct ModelQueue<const DROP_NOTIFY_ON_PUSH: bool> {
    state: model::Mutex<State>,
    not_full: model::Condvar,
    not_empty: model::Condvar,
    capacity: usize,
}

struct State {
    items: VecDeque<u32>,
    closed: bool,
}

impl<const DROP_NOTIFY_ON_PUSH: bool> ModelQueue<DROP_NOTIFY_ON_PUSH> {
    fn new(capacity: usize) -> Self {
        ModelQueue {
            state: model::Mutex::named("queue.state", State { items: VecDeque::new(), closed: false }),
            not_full: model::Condvar::named("queue.not_full"),
            not_empty: model::Condvar::named("queue.not_empty"),
            capacity,
        }
    }

    fn lock_state(&self) -> model::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn push(&self, item: u32) {
        let mut state = self.lock_state();
        while state.items.len() >= self.capacity && !state.closed {
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        assert!(!state.closed, "push on a closed queue");
        state.items.push_back(item);
        drop(state);
        if !DROP_NOTIFY_ON_PUSH {
            self.not_empty.notify_one();
        }
    }

    fn pop(&self) -> Option<u32> {
        let mut state = self.lock_state();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn close(&self) {
        self.lock_state().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

type Queue = ModelQueue<false>;
type LostWakeupQueue = ModelQueue<true>;

/// Committed seed on which [`lost_wakeup_mutant_is_flagged`] deadlocks.
/// Replayed verbatim below; see README "Correctness tooling" for how to
/// replay by hand.
const LOST_WAKEUP_SEED: u64 = 0;

/// Producer/consumer exchange across every explored schedule: all items
/// drain, in FIFO order per producer, and nobody deadlocks at capacity.
#[test]
fn queue_delivers_everything_under_every_explored_schedule() {
    let failure = model::explore(64, || {
        let q = Queue::new(2);
        model::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut seen = Vec::new();
                while let Some(v) = q.pop() {
                    seen.push(v);
                }
                seen
            });
            for i in 0..4 {
                q.push(i);
            }
            q.close();
            let seen = consumer.join().expect("consumer does not panic");
            assert_eq!(seen, vec![0, 1, 2, 3], "FIFO order and no lost items");
        });
    });
    assert!(failure.is_none(), "{}", failure.unwrap());
}

/// Two producers + one consumer through a capacity-1 queue: the capacity
/// bound forces waits on `not_full`, exercising the notify edge at capacity.
#[test]
fn no_lost_notify_at_queue_capacity() {
    let failure = model::explore(64, || {
        let q = Queue::new(1);
        model::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut n = 0;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            });
            let producer = scope.spawn(|| {
                q.push(10);
                q.push(11);
            });
            q.push(20);
            q.push(21);
            // Close only after every producer is done — closing with pushes
            // in flight is a caller bug (push panics on closed queues).
            producer.join().expect("producer does not panic");
            q.close();
            let n = consumer.join().expect("consumer does not panic");
            assert_eq!(n, 4, "every pushed item is delivered");
        });
    });
    assert!(failure.is_none(), "{}", failure.unwrap());
}

/// Mutation self-test: dropping `notify_one` after `push` must be caught as
/// a deterministic deadlock (the consumer parks forever on `not_empty`).
#[test]
fn lost_wakeup_mutant_is_flagged() {
    let report = model::explore(64, || {
        let q = LostWakeupQueue::new(2);
        model::thread::scope(|scope| {
            let consumer = scope.spawn(|| q.pop());
            q.push(7);
            let got = consumer.join().expect("consumer does not panic");
            assert_eq!(got, Some(7));
            q.close();
        });
    })
    .expect("the model checker must flag the dropped notify_one");
    assert_eq!(report.failure.as_ref().unwrap().kind, FailureKind::Deadlock);
    assert_eq!(
        report.seed, LOST_WAKEUP_SEED,
        "first failing seed moved — update LOST_WAKEUP_SEED and README"
    );
}

/// The committed seed replays to the same deadlock, forever.
#[test]
fn lost_wakeup_seed_replays() {
    let report = model::replay(LOST_WAKEUP_SEED, || {
        let q = LostWakeupQueue::new(2);
        model::thread::scope(|scope| {
            let consumer = scope.spawn(|| q.pop());
            q.push(7);
            let got = consumer.join().expect("consumer does not panic");
            assert_eq!(got, Some(7));
            q.close();
        });
    });
    let failure = report.failure.expect("committed seed reproduces the lost wakeup");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.detail.contains("lost wakeup"),
        "deadlock report names the parked waiter: {}",
        failure.detail
    );
}

/// With spurious wakeups enabled the wait loops must still behave: a
/// spuriously woken consumer re-checks its predicate and goes back to sleep.
#[test]
fn wait_loops_survive_spurious_wakeups() {
    let cfg = Config { spurious_wakeups: true, ..Config::default() };
    let failure = model::explore_with(cfg, 64, || {
        let q = Queue::new(1);
        model::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut seen = Vec::new();
                while let Some(v) = q.pop() {
                    seen.push(v);
                }
                seen
            });
            q.push(1);
            q.push(2);
            q.close();
            assert_eq!(consumer.join().unwrap(), vec![1, 2]);
        });
    });
    assert!(failure.is_none(), "{}", failure.unwrap());
}
