//! Model checks for the live-document fork-and-swap protocol
//! (`Corpus::mutate` in `crates/corpus/src/lib.rs`): a MUTATE snapshots the
//! document under a brief lock, forks the tree and the matrix cache *outside*
//! the lock, then re-locks and swaps the new snapshot in — after a
//! generation check (`Arc::ptr_eq` on the tree) that retries the whole fork
//! if a concurrent LOAD or MUTATE replaced the document in between.
//!
//! Three properties are checked over every explored schedule, each with a
//! mutant self-test proving the checker would catch its violation:
//!
//! 1. **No torn reads** — a QUERY holds one immutable snapshot; it never
//!    observes a half-applied edit (mutant: editing rows in place).
//! 2. **No lost updates** — racing MUTATEs all land thanks to the
//!    generation-check retry (mutant: swapping without the `Arc::ptr_eq`).
//! 3. **QUERY does not block on MUTATE** — the expensive fork runs outside
//!    the lock, so a reader completes while a writer is mid-fork (shown
//!    deterministically on a committed seed).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use xpath_sync::model::{self, FailureKind};

/// Number of "matrix rows" in the replica document.  Committed snapshots
/// always hold the same value in every row, so uniformity *is* the snapshot
/// invariant: mixed values = a torn read.
const ROWS: usize = 3;

/// Replica of the corpus fork-and-swap document slot.  `GUARDED` false is
/// the lost-update mutant: the writer swaps its forked snapshot in without
/// re-checking that the snapshot it forked from is still current.
struct SwapStore<const GUARDED: bool> {
    doc: model::Mutex<(Arc<Vec<u64>>, u64)>,
}

impl<const GUARDED: bool> SwapStore<GUARDED> {
    fn new() -> Self {
        SwapStore {
            doc: model::Mutex::named("corpus.docs", (Arc::new(vec![0; ROWS]), 0)),
        }
    }

    /// QUERY: grab the snapshot under a brief lock, answer outside it.
    /// Returns `(row value, epoch)` and asserts the snapshot is not torn.
    fn query(&self) -> (u64, u64) {
        let (snapshot, epoch) = {
            let doc = self.doc.lock().unwrap();
            (Arc::clone(&doc.0), doc.1)
        };
        // Answering happens with the lock released; the edit protocol must
        // make this safe.
        model::thread::yield_now();
        for row in snapshot.iter() {
            assert_eq!(
                *row, snapshot[0],
                "torn read: a query observed a half-applied edit"
            );
        }
        (snapshot[0], epoch)
    }

    /// MUTATE: fork outside the lock, generation-check, swap, retry on a
    /// lost race — the shape of `Corpus::mutate`.
    fn mutate(&self, delta: u64) {
        loop {
            let base = {
                let doc = self.doc.lock().unwrap();
                Arc::clone(&doc.0)
            };
            // The expensive part — tree edit + matrix fork — runs with the
            // lock released; every row is a scheduling point.
            let mut next = Vec::with_capacity(ROWS);
            for row in base.iter() {
                next.push(row + delta);
                model::thread::yield_now();
            }
            let mut doc = self.doc.lock().unwrap();
            if GUARDED && !Arc::ptr_eq(&doc.0, &base) {
                continue; // lost the race: somebody swapped first, refork
            }
            doc.0 = Arc::new(next);
            doc.1 += 1;
            return;
        }
    }
}

/// Drive 2 writers × 2 readers (× 2 queries each) through the store and
/// assert the global invariants: reader epochs are monotone, and once both
/// writers joined, both edits landed.
fn drive_swap_store<const GUARDED: bool>() {
    let store = SwapStore::<GUARDED>::new();
    model::thread::scope(|scope| {
        let w1 = scope.spawn(|| store.mutate(1));
        let w2 = scope.spawn(|| store.mutate(2));
        let mut readers = Vec::new();
        for _ in 0..2 {
            readers.push(scope.spawn(|| {
                let (_, e1) = store.query();
                let (_, e2) = store.query();
                assert!(e1 <= e2, "epochs must be monotone");
                e2
            }));
        }
        w1.join().expect("writer 1 ok");
        w2.join().expect("writer 2 ok");
        for r in readers {
            r.join().expect("reader ok");
        }
    });
    let (rows, epoch) = store.doc.into_inner().unwrap();
    assert_eq!(epoch, 2, "every MUTATE must bump the epoch exactly once");
    assert_eq!(
        *rows,
        vec![3; ROWS],
        "an edit was lost: both deltas must land"
    );
}

/// Snapshot reads and guarded swaps are sound on every explored schedule.
#[test]
fn concurrent_mutate_and_query_keep_every_invariant() {
    let failure = model::explore(64, drive_swap_store::<true>);
    assert!(failure.is_none(), "{}", failure.unwrap());
}

/// Committed seed on which the unguarded swap loses an edit.
const LOST_UPDATE_SEED: u64 = 0;

/// Mutation self-test: dropping the `Arc::ptr_eq` generation check loses a
/// racing writer's edit — flagged deterministically.
#[test]
fn unguarded_swap_mutant_loses_an_update() {
    let report = model::explore(64, drive_swap_store::<false>)
        .expect("the model checker must flag the lost update");
    assert_eq!(report.failure.as_ref().unwrap().kind, FailureKind::Panic);
    assert_eq!(
        report.seed, LOST_UPDATE_SEED,
        "first failing seed moved — update LOST_UPDATE_SEED and README"
    );
}

/// The committed lost-update seed replays forever.
#[test]
fn lost_update_seed_replays() {
    let report = model::replay(LOST_UPDATE_SEED, drive_swap_store::<false>);
    assert_eq!(
        report.failure.expect("committed seed reproduces the lost update").kind,
        FailureKind::Panic
    );
}

// ---------------------------------------------------------------------------
// Torn-read mutant: editing the live document in place
// ---------------------------------------------------------------------------

/// The design fork-and-swap exists to avoid: editing the one shared copy in
/// place, row by row, while queries read it.  Readers that re-acquire the
/// lock per row (any reader not holding one snapshot for its whole answer)
/// can observe half of an edit.
fn drive_in_place_mutant() {
    let rows = model::Mutex::named("corpus.docs", vec![0u64; ROWS]);
    model::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for i in 0..ROWS {
                rows.lock().unwrap()[i] = 1; // one lock session per row
            }
        });
        let reader = scope.spawn(|| {
            let first = rows.lock().unwrap()[0];
            for i in 1..ROWS {
                let row = rows.lock().unwrap()[i];
                assert_eq!(row, first, "torn read: half-applied edit observed");
            }
        });
        writer.join().expect("writer ok");
        reader.join().expect("reader ok");
    });
}

/// Committed seed on which in-place editing tears a concurrent read.
const TORN_READ_SEED: u64 = 5;

/// Mutation self-test: in-place editing is caught as a torn read.
#[test]
fn in_place_edit_mutant_tears_reads() {
    let report = model::explore(64, drive_in_place_mutant)
        .expect("the model checker must flag the torn read");
    assert_eq!(report.failure.as_ref().unwrap().kind, FailureKind::Panic);
    assert_eq!(
        report.seed, TORN_READ_SEED,
        "first failing seed moved — update TORN_READ_SEED and README"
    );
}

/// The committed torn-read seed replays forever.
#[test]
fn torn_read_seed_replays() {
    let report = model::replay(TORN_READ_SEED, drive_in_place_mutant);
    assert_eq!(
        report.failure.expect("committed seed reproduces the tear").kind,
        FailureKind::Panic
    );
}

// ---------------------------------------------------------------------------
// QUERY does not block on MUTATE
// ---------------------------------------------------------------------------

/// Run one writer and one reader; return true when the reader completed a
/// whole query strictly inside the writer's fork window (lock released, fork
/// in progress) — the schedule that proves queries do not wait for edits.
fn reader_overlaps_fork(seed: u64) -> bool {
    let mut overlapped = false;
    let report = model::replay(seed, || {
        let store = SwapStore::<true>::new();
        let forking = model::AtomicBool::new(false);
        let overlap = model::AtomicBool::new(false);
        model::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                // Inline mutate with the fork window instrumented.
                let base = {
                    let doc = store.doc.lock().unwrap();
                    Arc::clone(&doc.0)
                };
                forking.store(true, Ordering::SeqCst);
                let mut next = Vec::with_capacity(ROWS);
                for row in base.iter() {
                    next.push(row + 1);
                    model::thread::yield_now();
                }
                forking.store(false, Ordering::SeqCst);
                let mut doc = store.doc.lock().unwrap();
                assert!(Arc::ptr_eq(&doc.0, &base), "single writer never races");
                doc.0 = Arc::new(next);
                doc.1 += 1;
            });
            let reader = scope.spawn(|| {
                let before = forking.load(Ordering::SeqCst);
                store.query();
                let after = forking.load(Ordering::SeqCst);
                if before && after {
                    overlap.store(true, Ordering::SeqCst);
                }
            });
            writer.join().expect("writer ok");
            reader.join().expect("reader ok");
        });
        overlapped = overlap.load(Ordering::SeqCst);
    });
    assert!(!report.failed(), "{report}");
    overlapped
}

/// Committed seed whose schedule runs a full QUERY inside the MUTATE fork
/// window — queries never wait for an edit to finish.
const NON_BLOCKING_SEED: u64 = 8;

#[test]
fn query_completes_while_a_mutate_is_mid_fork() {
    assert!(
        reader_overlaps_fork(NON_BLOCKING_SEED),
        "seed no longer overlaps — update NON_BLOCKING_SEED and README"
    );
}
