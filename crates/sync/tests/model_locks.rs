//! Model checks for the workspace's lock disciplines:
//!
//! - `SharedMatrixStore` shard locking with the clear-on-poison recovery
//!   policy (a poisoned shard clears its cache instead of killing workers),
//! - the session-pool / plan-cache lock order in `corpus` (no nesting in the
//!   real protocol; the inverted-nesting mutant is flagged as a lock-order
//!   inversion),
//! - the PR 6 work-queue poisoning wedge, reproduced as a deterministic
//!   committed-seed schedule: a worker that panics while holding the queue
//!   lock poisons it, and `.lock().unwrap()`-style handling then kills every
//!   other worker that touches the queue.

use std::collections::VecDeque;
use xpath_sync::model::{self, FailureKind};

/// Committed seed on which [`pr6_poison_wedge_seed_is_flagged`] reproduces
/// the PR 6 wedge (secondary worker killed by a poisoned work queue).
const PR6_POISON_WEDGE_SEED: u64 = 2;

// ---------------------------------------------------------------------------
// SharedMatrixStore shard locking + clear-on-poison policy
// ---------------------------------------------------------------------------

/// Replica of one `SharedMatrixStore` shard: a cache map guarded by a mutex.
/// `shard()` mirrors the production recovery policy: on poison, clear the
/// cache (it may be mid-update and inconsistent) and keep serving.
struct ShardedStore {
    shards: Vec<model::Mutex<Vec<u64>>>,
}

impl ShardedStore {
    fn new(n: usize) -> Self {
        ShardedStore {
            shards: (0..n)
                .map(|i| model::Mutex::named(&format!("store.shard[{i}]"), Vec::new()))
                .collect(),
        }
    }

    fn shard(&self, key: u64) -> model::MutexGuard<'_, Vec<u64>> {
        let m = &self.shards[(key as usize) % self.shards.len()];
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                // Clear-on-poison: the panicking writer may have left a
                // half-built cache entry behind; drop the cache, not the
                // worker.
                let mut g = poisoned.into_inner();
                g.clear();
                m.clear_poison();
                g
            }
        }
    }

    fn eval(&self, key: u64) {
        self.shard(key).push(key);
    }
}

/// A worker panicking while holding a shard poisons only that shard, and the
/// next worker through recovers by clearing the cache — no schedule kills a
/// healthy worker and the store keeps answering.
#[test]
fn poisoned_shard_clears_cache_and_keeps_serving() {
    let failure = model::explore(64, || {
        let store = ShardedStore::new(2);
        model::thread::scope(|scope| {
            let crasher = scope.spawn(|| {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut g = store.shard(0);
                    g.push(999); // half-built entry...
                    panic!("evaluation blew up mid-update");
                }));
                assert!(result.is_err());
            });
            let healthy = scope.spawn(|| {
                store.eval(1); // other shard: never sees the poison
                store.eval(2); // same shard as the crasher (2 % 2 == 0)
            });
            crasher.join().expect("crash is contained");
            healthy.join().expect("healthy worker must survive the poisoned shard");
        });
        // After recovery the poisoned shard serves fresh state: no
        // half-built 999 entry survives if the recovery path ran.
        let g = store.shard(0);
        assert!(
            !g.contains(&999),
            "clear-on-poison must drop the half-built entry"
        );
    });
    assert!(failure.is_none(), "{}", failure.unwrap());
}

// ---------------------------------------------------------------------------
// Session pool / plan cache lock order
// ---------------------------------------------------------------------------

/// Replica of the `corpus` session-pool + plan-cache discipline.  The real
/// protocol never holds both locks at once (`INVERTED` = false): the plan
/// cache is consulted, the guard dropped, then the session pool taken.  The
/// mutant nests them in opposite orders on two threads — a textbook ABBA
/// deadlock the lockdep graph must flag even on schedules where the threads
/// never actually collide.
fn drive_pool_and_cache<const INVERTED: bool>() {
    let pool = model::Mutex::named("corpus.session_pool", 0u32);
    let plans = model::Mutex::named("corpus.plan_cache", 0u32);
    model::thread::scope(|scope| {
        let a = scope.spawn(|| {
            if INVERTED {
                let _p = pool.lock().unwrap();
                let _c = plans.lock().unwrap();
            } else {
                {
                    let _c = plans.lock().unwrap();
                }
                let _p = pool.lock().unwrap();
            }
        });
        let b = scope.spawn(|| {
            // Both personalities take plans → pool here; only thread A's
            // mutant order differs.
            if INVERTED {
                let _c = plans.lock().unwrap();
                let _p = pool.lock().unwrap();
            } else {
                {
                    let _c = plans.lock().unwrap();
                }
                let _p = pool.lock().unwrap();
            }
        });
        a.join().expect("a ok");
        b.join().expect("b ok");
    });
}

/// The real discipline (never hold both) is clean on every schedule.
#[test]
fn session_pool_and_plan_cache_have_no_lock_order_inversion() {
    let failure = model::explore(64, drive_pool_and_cache::<false>);
    assert!(failure.is_none(), "{}", failure.unwrap());
}

/// Mutation self-test: nesting the two locks in opposite orders is flagged
/// as a lock-order inversion by the lockdep graph — on the *first* seed,
/// because the edge cycle is detected without needing the unlucky
/// interleaving that actually deadlocks.
#[test]
fn inverted_nesting_mutant_is_flagged() {
    let report = model::explore(64, drive_pool_and_cache::<true>)
        .expect("the model checker must flag the ABBA nesting");
    let failure = report.failure.as_ref().unwrap();
    assert!(
        matches!(failure.kind, FailureKind::LockOrderInversion | FailureKind::Deadlock),
        "unexpected failure kind: {failure}"
    );
    assert_eq!(report.seed, 0, "first failing seed moved — update the doc comment");
}

// ---------------------------------------------------------------------------
// PR 6: the work-queue poisoning wedge
// ---------------------------------------------------------------------------

/// Replica of the PR 6-era work queue whose lock handling `unwrap()`s: once
/// any worker panics while holding the state lock, every subsequent
/// `lock().unwrap()` panics too and the whole pool wedges.  `RECOVERS` true
/// is today's code (poison recovered via `into_inner`).
struct WedgeQueue<const RECOVERS: bool> {
    state: model::Mutex<VecDeque<u32>>,
}

impl<const RECOVERS: bool> WedgeQueue<RECOVERS> {
    fn new() -> Self {
        WedgeQueue { state: model::Mutex::named("queue.state", VecDeque::new()) }
    }

    fn lock_state(&self) -> model::MutexGuard<'_, VecDeque<u32>> {
        if RECOVERS {
            self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
        } else {
            // The PR 6 bug: poison propagates as a panic into whichever
            // innocent worker touches the queue next.
            self.state.lock().unwrap()
        }
    }

    fn push(&self, item: u32) {
        let mut state = self.lock_state();
        assert!(item != 13, "injected fault while holding the queue lock");
        state.push_back(item);
    }

    fn pop(&self) -> Option<u32> {
        self.lock_state().pop_front()
    }
}

fn drive_wedge<const RECOVERS: bool>() {
    let q = WedgeQueue::<RECOVERS>::new();
    model::thread::scope(|scope| {
        let faulty = scope.spawn(|| {
            q.push(1);
            // The injected fault fires while the guard is live → poison.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| q.push(13)));
            assert!(result.is_err());
        });
        let innocent = scope.spawn(|| {
            // A second worker draining the queue must never be killed by a
            // fault it didn't cause.
            let _ = q.pop();
            let _ = q.pop();
        });
        faulty.join().expect("fault is contained to the faulty worker");
        innocent.join().expect("innocent worker wedged by queue poison");
    });
}

/// Today's recovery policy survives the injected fault on every schedule.
#[test]
fn recovering_queue_survives_poison_on_every_schedule() {
    let failure = model::explore(64, drive_wedge::<true>);
    assert!(failure.is_none(), "{}", failure.unwrap());
}

/// The PR 6 wedge, rediscovered deterministically: on the committed seed the
/// innocent worker runs after the fault and dies on `lock().unwrap()`.
#[test]
fn pr6_poison_wedge_seed_is_flagged() {
    let report = model::explore(64, drive_wedge::<false>)
        .expect("the model checker must rediscover the PR 6 wedge");
    assert_eq!(report.failure.as_ref().unwrap().kind, FailureKind::Panic);
    assert_eq!(
        report.seed, PR6_POISON_WEDGE_SEED,
        "first failing seed moved — update PR6_POISON_WEDGE_SEED and README"
    );
    let replay = model::replay(PR6_POISON_WEDGE_SEED, drive_wedge::<false>);
    assert_eq!(replay.failure.expect("replays").kind, FailureKind::Panic);
}
