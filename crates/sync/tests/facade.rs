//! Smoke tests for the facade in its default (std) personality: drop-in
//! `std::sync` semantics, including poisoning, so porting a crate onto
//! `xpath_sync` changes nothing in normal builds.

use xpath_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use xpath_sync::{thread, Condvar, Mutex};

#[test]
fn mutex_roundtrip_and_into_inner() {
    let m = Mutex::new(41);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 42);
    assert_eq!(m.into_inner().unwrap(), 42);
}

#[test]
fn mutex_poisons_on_panic_and_recovers() {
    let m = Mutex::new(0);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _g = m.lock().unwrap();
        panic!("poison it");
    }));
    assert!(caught.is_err());
    // Poison is observable and recoverable, exactly like std.
    let g = m.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    assert_eq!(*g, 0);
    drop(g);
    m.clear_poison();
    assert!(m.lock().is_ok(), "clear_poison restores the Ok path");
}

#[test]
fn condvar_wakes_waiter_across_scoped_threads() {
    let slot: Mutex<Option<u32>> = Mutex::new(None);
    let ready = Condvar::new();
    thread::scope(|scope| {
        let waiter = scope.spawn(|| {
            let mut g = slot.lock().unwrap();
            while g.is_none() {
                g = ready.wait(g).unwrap();
            }
            g.unwrap()
        });
        *slot.lock().unwrap() = Some(7);
        ready.notify_one();
        assert_eq!(waiter.join().unwrap(), 7);
    });
}

#[test]
fn atomics_behave_like_std() {
    let b = AtomicBool::new(false);
    b.store(true, Ordering::SeqCst);
    assert!(b.load(Ordering::SeqCst));
    assert!(b.swap(false, Ordering::SeqCst));

    let n = AtomicUsize::new(1);
    assert_eq!(n.fetch_add(2, Ordering::SeqCst), 1);
    assert_eq!(n.load(Ordering::SeqCst), 3);

    let w = AtomicU64::new(10);
    assert_eq!(w.fetch_sub(4, Ordering::SeqCst), 10);
    assert_eq!(w.fetch_max(100, Ordering::SeqCst), 6);
    assert_eq!(w.load(Ordering::SeqCst), 100);
}

#[test]
fn scoped_spawn_borrows_from_environment() {
    let data = [1u64, 2, 3, 4];
    let total = thread::scope(|scope| {
        let left = scope.spawn(|| data[..2].iter().sum::<u64>());
        let right = scope.spawn(|| data[2..].iter().sum::<u64>());
        left.join().unwrap() + right.join().unwrap()
    });
    assert_eq!(total, 10);
}
