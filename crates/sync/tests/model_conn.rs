//! Model checks for the `Conn` slot-queue protocol
//! (`crates/corpus/src/protocol.rs`): pipelined requests are assigned
//! sequence slots in arrival order, workers complete them in *any* order,
//! and responses must be released strictly in sequence order.
//!
//! Also reproduces, as a deterministic committed-seed schedule, the PR 7
//! pre-batching reactor bug: dispatching each pipelined command of one
//! connection as its own job lets two workers execute a connection's
//! commands out of order.

use std::collections::VecDeque;
use xpath_sync::model::{self, FailureKind};

/// Replica of the `Conn` response slot queue.  `ORDERED` false is the
/// mutation: completed slots are released immediately instead of waiting for
/// the queue front — out-of-order responses under pipelining.
struct SlotQueue<const ORDERED: bool> {
    slots: VecDeque<(u64, Option<u64>)>,
    released: Vec<u64>,
}

impl<const ORDERED: bool> SlotQueue<ORDERED> {
    fn new() -> Self {
        SlotQueue { slots: VecDeque::new(), released: Vec::new() }
    }

    fn begin(&mut self, seq: u64) {
        self.slots.push_back((seq, None));
    }

    fn complete(&mut self, seq: u64, result: u64) {
        if ORDERED {
            let slot = self
                .slots
                .iter_mut()
                .find(|(s, _)| *s == seq)
                .expect("completing an unknown sequence slot");
            slot.1 = Some(result);
            while let Some((_, Some(_))) = self.slots.front() {
                let (_, result) = self.slots.pop_front().expect("front exists");
                self.released.push(result.expect("front is complete"));
            }
        } else {
            // Mutant: release on completion, ignoring the slot order.
            self.slots.retain(|(s, _)| *s != seq);
            self.released.push(result);
        }
    }
}

/// Committed seed on which [`reordering_mutant_is_flagged`] releases out of
/// order.
const CONN_REORDER_SEED: u64 = 0;

/// Committed seed on which [`pr7_per_command_dispatch_reorders_execution`]
/// executes a connection's pipelined commands out of order — the PR 7 bug.
const PR7_DISPATCH_SEED: u64 = 0;

fn drive_slot_queue<const ORDERED: bool>() {
    let conn = model::Mutex::named("conn", SlotQueue::<ORDERED>::new());
    {
        let mut c = conn.lock().unwrap();
        for seq in 0..4 {
            c.begin(seq);
        }
    }
    model::thread::scope(|scope| {
        // Two workers complete disjoint halves of the pipeline in whatever
        // order the scheduler explores.
        let w1 = scope.spawn(|| {
            conn.lock().unwrap().complete(1, 1);
            conn.lock().unwrap().complete(2, 2);
        });
        let w2 = scope.spawn(|| {
            conn.lock().unwrap().complete(3, 3);
            conn.lock().unwrap().complete(0, 0);
        });
        w1.join().expect("worker 1 ok");
        w2.join().expect("worker 2 ok");
    });
    let c = conn.lock().unwrap();
    assert_eq!(
        c.released,
        vec![0, 1, 2, 3],
        "pipelined responses must be released in sequence order"
    );
    assert!(c.slots.is_empty(), "every slot drains");
}

/// FIFO-per-connection response order holds on every explored schedule.
#[test]
fn responses_release_in_sequence_order_under_every_schedule() {
    let failure = model::explore(64, drive_slot_queue::<true>);
    assert!(failure.is_none(), "{}", failure.unwrap());
}

/// Mutation self-test: releasing completed slots immediately (skipping the
/// front-of-queue gate) must be flagged.
#[test]
fn reordering_mutant_is_flagged() {
    let report = model::explore(64, drive_slot_queue::<false>)
        .expect("the model checker must flag out-of-order release");
    assert_eq!(report.failure.as_ref().unwrap().kind, FailureKind::Panic);
    assert_eq!(
        report.seed, CONN_REORDER_SEED,
        "first failing seed moved — update CONN_REORDER_SEED and README"
    );
}

/// The committed reordering seed replays forever.
#[test]
fn conn_reorder_seed_replays() {
    let report = model::replay(CONN_REORDER_SEED, drive_slot_queue::<false>);
    assert_eq!(
        report.failure.expect("committed seed reproduces the reorder").kind,
        FailureKind::Panic
    );
}

// ---------------------------------------------------------------------------
// PR 7: pre-batching reactor dispatch
// ---------------------------------------------------------------------------

/// Replica of the reactor's dispatch decision.  Each connection carries
/// pipelined commands; jobs are dispatched to a worker pool.
///
/// - `BATCHED` (the PR 7 fix): a connection is dispatched as *one* job
///   executing its commands back to back, so per-connection order holds.
/// - pre-batching mutant: every command becomes its own job; two workers can
///   pick up commands 0 and 1 of the same connection and execute them in
///   either order.
fn drive_dispatch<const BATCHED: bool>() {
    let jobs: model::Mutex<VecDeque<(u32, u64)>> = model::Mutex::named("reactor.jobs", VecDeque::new());
    let executed: model::Mutex<Vec<(u32, u64)>> = model::Mutex::named("conn.executed", Vec::new());
    {
        let mut j = jobs.lock().unwrap();
        if BATCHED {
            // One job per connection; seq within the job preserved by the
            // executing worker (encoded: seq = u64::MAX means "run both").
            j.push_back((0, u64::MAX));
        } else {
            j.push_back((0, 0));
            j.push_back((0, 1));
        }
    }
    model::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..2 {
            workers.push(scope.spawn(|| {
                loop {
                    let job = jobs.lock().unwrap().pop_front();
                    match job {
                        Some((conn, u64::MAX)) => {
                            executed.lock().unwrap().push((conn, 0));
                            executed.lock().unwrap().push((conn, 1));
                        }
                        Some((conn, seq)) => executed.lock().unwrap().push((conn, seq)),
                        None => break,
                    }
                }
            }));
        }
        for w in workers {
            w.join().expect("worker ok");
        }
    });
    let log = executed.lock().unwrap();
    let conn0: Vec<u64> = log.iter().filter(|(c, _)| *c == 0).map(|(_, s)| *s).collect();
    assert_eq!(
        conn0,
        vec![0, 1],
        "a connection's pipelined commands must execute in sequence order"
    );
}

/// The batched dispatch (PR 7 fix) preserves order on every schedule.
#[test]
fn batched_dispatch_preserves_per_connection_order() {
    let failure = model::explore(64, drive_dispatch::<true>);
    assert!(failure.is_none(), "{}", failure.unwrap());
}

/// The pre-batching dispatch reorders execution — caught deterministically
/// on the committed seed instead of by fuzzing luck.
#[test]
fn pr7_per_command_dispatch_reorders_execution() {
    let report = model::explore(64, drive_dispatch::<false>)
        .expect("the model checker must rediscover the PR 7 reordering bug");
    assert_eq!(report.failure.as_ref().unwrap().kind, FailureKind::Panic);
    assert_eq!(
        report.seed, PR7_DISPATCH_SEED,
        "first failing seed moved — update PR7_DISPATCH_SEED and README"
    );
    // And the committed seed replays.
    let replay = model::replay(PR7_DISPATCH_SEED, drive_dispatch::<false>);
    assert_eq!(replay.failure.expect("replays").kind, FailureKind::Panic);
}
