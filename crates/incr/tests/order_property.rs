//! Property tests for the order-maintenance labels: random edit scripts on
//! a [`LiveDoc`] must agree, pair-for-pair, with the naive oracle that
//! renumbers the whole tree after every edit (the tree's own pre/post
//! integers).  A second property pins the amortized relabel bound on a
//! deliberately tiny tag universe so the dyadic-window machinery actually
//! runs.

use proptest::prelude::*;
use std::sync::Arc;
use xpath_incr::{LiveDoc, OrderMaintenance};
use xpath_tree::Tree;

/// One step of a random edit script, in "percentage coordinates" that get
/// resolved against the current tree size when applied.
#[derive(Debug, Clone)]
enum Step {
    /// (parent %, child index %, subtree shape choice)
    Insert(u8, u8, u8),
    /// (node %) — skipped when it resolves to the root.
    Delete(u8),
    /// (node %, new label choice)
    Relabel(u8, u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..100, 0u8..100, 0u8..4).prop_map(|(p, i, s)| Step::Insert(p, i, s)),
        (0u8..100).prop_map(Step::Delete),
        (0u8..100, 0u8..4).prop_map(|(n, l)| Step::Relabel(n, l)),
    ]
}

const SUBTREES: [&str; 4] = ["x", "x(y)", "x(y,z)", "x(y(z),w)"];
const LABELS: [&str; 4] = ["a", "b", "c", "d"];

fn apply(doc: &mut LiveDoc, step: &Step) {
    let n = doc.len() as u32;
    match *step {
        Step::Insert(p, i, s) => {
            let parent = xpath_tree::NodeId(p as u32 * n / 100);
            let arity = doc.tree().children(parent).count();
            let index = (i as usize * (arity + 1)) / 100;
            let sub = Tree::from_terms(SUBTREES[s as usize % 4]).unwrap();
            doc.insert_subtree(parent, index, &sub).unwrap();
        }
        Step::Delete(v) => {
            let node = xpath_tree::NodeId(v as u32 * n / 100);
            if node != doc.tree().root() {
                doc.delete_subtree(node).unwrap();
            }
        }
        Step::Relabel(v, l) => {
            let node = xpath_tree::NodeId(v as u32 * n / 100);
            doc.relabel(node, LABELS[l as usize % 4]).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every step of a random edit script, O(1) order-tag comparisons
    /// agree with the full-renumber oracle on all node pairs.
    #[test]
    fn random_edit_scripts_match_the_full_renumber_oracle(
        steps in prop::collection::vec(step_strategy(), 1..25)
    ) {
        let mut doc = LiveDoc::new(Arc::new(
            Tree::from_terms("a(b(c,d),e(f),g)").unwrap(),
        ));
        for step in &steps {
            apply(&mut doc, step);
            doc.check_against_tree().unwrap();
        }
    }

    /// In a tiny universe the relabel machinery runs for real, and the
    /// total number of tag reassignments stays within the amortized
    /// O(log u) per insertion bound (u = universe size).
    #[test]
    fn relabel_counts_stay_within_the_amortized_bound(
        positions in prop::collection::vec(0u8..100, 1..60)
    ) {
        let bits = 10u32;
        let mut om = OrderMaintenance::with_universe_bits(bits);
        let mut order = vec![om.insert_first()];
        for &p in &positions {
            let at = p as usize * order.len() / 100;
            let slot = if at == 0 {
                om.insert_first()
            } else {
                om.insert_after(order[at - 1])
            };
            order.insert(at, slot);
            om.check_invariants().unwrap();
        }
        for w in order.windows(2) {
            prop_assert!(om.precedes(w[0], w[1]));
        }
        // Each insertion can trigger at most one window relabel touching at
        // most universe/4 items, but amortized the cost is O(bits) per
        // insertion; allow a generous constant.
        let inserts = (positions.len() + 1) as u64;
        prop_assert!(
            om.relabel_count() <= 8 * bits as u64 * inserts,
            "relabels {} exceed amortized bound for {} inserts",
            om.relabel_count(),
            inserts
        );
    }
}
