//! Incremental document infrastructure for live XPath serving.
//!
//! The answering pipeline compiles queries into binary-relation matrices
//! keyed by node ids (`xpath_pplbin`).  Those ids are dense preorder
//! indices, which makes the matrices compact but means a single tree edit
//! shifts every id after the edit point.  This crate provides the two
//! pieces that make edits affordable anyway:
//!
//! * [`order::OrderMaintenance`] — list-labeled order tags supporting O(1)
//!   precedence queries that survive insertions and deletions with only
//!   amortized-local relabeling (no global renumber);
//! * [`live::LiveDoc`] — a tree wrapped in an Euler tour of order tags, so
//!   document-order and ancestor comparisons stay valid across
//!   `insert_subtree` / `delete_subtree` / `relabel` edits.
//!
//! The tree-edit primitives themselves ([`xpath_tree::EditDelta`] and the
//! `Tree::insert_subtree` family) live in `xpath_tree`; the matrix-side
//! consumption of an [`xpath_tree::EditDelta`] (row-range invalidation,
//! epoch-stamped snapshots) lives in `xpath_pplbin` and `xpath_corpus`.

#![forbid(unsafe_code)]

pub mod live;
pub mod order;

pub use live::LiveDoc;
pub use order::{OrderMaintenance, Slot};
