//! Live documents: a tree plus order-maintenance labels that survive edits.
//!
//! A [`LiveDoc`] pairs the current [`Tree`] snapshot with an Euler-tour
//! order-maintenance list: every node owns two slots, an *open* (preorder)
//! and a *close* (postorder) event, nested like balanced parentheses.  This
//! recovers exactly the two comparisons the paper's Interval relations are
//! built on —
//!
//! * document order: `u < v` iff `open(u)` precedes `open(v)`;
//! * ancestorship: `a` is an ancestor of `d` iff `open(a)` precedes
//!   `open(d)` and `close(d)` precedes `close(a)` —
//!
//! but, unlike raw pre/post integers, both survive
//! [`LiveDoc::insert_subtree`] / [`LiveDoc::delete_subtree`] without
//! touching the labels of any unedited node: an insert splices the edited
//! range's `2·count` events into the tour, a delete unlinks them, and a
//! relabel touches nothing.  The slots of untouched nodes keep their tags
//! (up to the amortized list-labeling relabels), so order comparisons taken
//! before an edit remain valid after it.
//!
//! Node ids, by contrast, do shift (they are dense preorder indices); the
//! `LiveDoc` re-indexes its slot table through [`EditDelta::remap`] — an
//! O(|t|) pointer shuffle, not a relabeling.

use crate::order::{OrderMaintenance, Slot};
use std::sync::Arc;
use xpath_tree::{EditDelta, NodeId, Tree, TreeError};

/// A document that supports edits while keeping O(1) order and ancestor
/// comparisons stable.
#[derive(Debug, Clone)]
pub struct LiveDoc {
    tree: Arc<Tree>,
    order: OrderMaintenance,
    /// Per node (indexed by current `NodeId`): (open slot, close slot).
    slots: Vec<(Slot, Slot)>,
    /// Edits applied so far.
    edits: u64,
}

impl LiveDoc {
    /// Wrap a tree, building its Euler tour.
    pub fn new(tree: Arc<Tree>) -> LiveDoc {
        let mut order = OrderMaintenance::new();
        let mut slots: Vec<Option<(Slot, Slot)>> = vec![None; tree.len()];
        // Build the tour iteratively: open events in preorder, each close
        // event after the node's last descendant's close.
        enum Ev {
            Open(NodeId),
            Close(NodeId),
        }
        let mut stack = vec![Ev::Open(tree.root())];
        let mut last: Option<Slot> = None;
        while let Some(ev) = stack.pop() {
            let (node, is_open) = match ev {
                Ev::Open(n) => (n, true),
                Ev::Close(n) => (n, false),
            };
            let slot = match last {
                None => order.insert_first(),
                Some(prev) => order.insert_after(prev),
            };
            last = Some(slot);
            if is_open {
                slots[node.index()] = Some((slot, slot));
                stack.push(Ev::Close(node));
                let children: Vec<NodeId> = tree.children(node).collect();
                for c in children.into_iter().rev() {
                    stack.push(Ev::Open(c));
                }
            } else {
                let entry = slots[node.index()].as_mut().expect("open precedes close");
                entry.1 = slot;
            }
        }
        let slots = slots
            .into_iter()
            .map(|s| s.expect("every node gets both events"))
            .collect();
        LiveDoc { tree, order, slots, edits: 0 }
    }

    /// The current tree snapshot (cheap `Arc` clone).
    pub fn shared_tree(&self) -> Arc<Tree> {
        Arc::clone(&self.tree)
    }

    /// The current tree snapshot.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Always false (trees are non-empty).
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Edits applied so far.
    pub fn edit_count(&self) -> u64 {
        self.edits
    }

    /// Total order-label reassignments so far (amortized-bound accounting).
    pub fn relabel_count(&self) -> u64 {
        self.order.relabel_count()
    }

    /// Does `a` precede `b` in document order?  O(1), stable across edits.
    #[inline]
    pub fn doc_before(&self, a: NodeId, b: NodeId) -> bool {
        self.order
            .precedes(self.slots[a.index()].0, self.slots[b.index()].0)
    }

    /// Is `anc` a strict ancestor of `desc`?  O(1), stable across edits.
    #[inline]
    pub fn is_ancestor(&self, desc: NodeId, anc: NodeId) -> bool {
        let (open_a, close_a) = self.slots[anc.index()];
        let (open_d, close_d) = self.slots[desc.index()];
        self.order.precedes(open_a, open_d) && self.order.precedes(close_d, close_a)
    }

    /// Insert a copy of `subtree` as the `index`-th child of `parent`;
    /// splices `2·subtree.len()` fresh events into the tour and leaves
    /// every other node's labels untouched.
    pub fn insert_subtree(
        &mut self,
        parent: NodeId,
        index: usize,
        subtree: &Tree,
    ) -> Result<EditDelta, TreeError> {
        let (new_tree, delta) = self.tree.insert_subtree(parent, index, subtree)?;
        let new_tree = Arc::new(new_tree);

        // The inserted events splice in immediately after either the
        // parent's open event (index 0) or the previous sibling's close.
        let new_root = NodeId(delta.pos);
        let anchor = match new_tree.prev_sibling(new_root) {
            // The previous sibling's id is < pos, hence valid in the old
            // slot table too.
            Some(prev) => self.slots[prev.index()].1,
            None => self.slots[parent.index()].0,
        };

        // Rebuild the slot table through the remap, leaving holes for the
        // fresh range.
        let mut slots: Vec<Option<(Slot, Slot)>> = vec![None; new_tree.len()];
        for (old, &pair) in self.slots.iter().enumerate() {
            let new = delta
                .remap(old as u32)
                .expect("insert deletes no nodes");
            slots[new as usize] = Some(pair);
        }
        // Walk the inserted range (a contiguous preorder block in the new
        // tree) building its Euler tour after `anchor`.
        enum Ev {
            Open(NodeId),
            Close(NodeId),
        }
        let mut stack = vec![Ev::Open(new_root)];
        let mut last = anchor;
        while let Some(ev) = stack.pop() {
            let (node, is_open) = match ev {
                Ev::Open(n) => (n, true),
                Ev::Close(n) => (n, false),
            };
            let slot = self.order.insert_after(last);
            last = slot;
            if is_open {
                slots[node.index()] = Some((slot, slot));
                stack.push(Ev::Close(node));
                let children: Vec<NodeId> = new_tree.children(node).collect();
                for c in children.into_iter().rev() {
                    stack.push(Ev::Open(c));
                }
            } else {
                let entry = slots[node.index()].as_mut().expect("open precedes close");
                entry.1 = slot;
            }
        }
        self.slots = slots
            .into_iter()
            .map(|s| s.expect("every node keeps or gains a slot pair"))
            .collect();
        self.tree = new_tree;
        self.edits += 1;
        Ok(delta)
    }

    /// Delete the subtree rooted at `node`; unlinks its events and leaves
    /// every other node's labels untouched.
    pub fn delete_subtree(&mut self, node: NodeId) -> Result<EditDelta, TreeError> {
        let (new_tree, delta) = self.tree.delete_subtree(node)?;
        let new_tree = Arc::new(new_tree);
        let mut slots: Vec<Option<(Slot, Slot)>> = vec![None; new_tree.len()];
        for (old, &pair) in self.slots.iter().enumerate() {
            match delta.remap(old as u32) {
                Some(new) => slots[new as usize] = Some(pair),
                None => {
                    self.order.delete(pair.0);
                    self.order.delete(pair.1);
                }
            }
        }
        self.slots = slots
            .into_iter()
            .map(|s| s.expect("every surviving node keeps its slot pair"))
            .collect();
        self.tree = new_tree;
        self.edits += 1;
        Ok(delta)
    }

    /// Change the label of `node`; ids and order labels are untouched.
    pub fn relabel(&mut self, node: NodeId, label: &str) -> Result<EditDelta, TreeError> {
        let (new_tree, delta) = self.tree.relabel(node, label)?;
        self.tree = Arc::new(new_tree);
        self.edits += 1;
        Ok(delta)
    }

    /// Check that the order labels agree with the tree's pre/post numbers
    /// (the naive full-renumber oracle); tests only.
    pub fn check_against_tree(&self) -> Result<(), String> {
        let t = &self.tree;
        for a in t.nodes() {
            for b in t.nodes() {
                if a == b {
                    continue;
                }
                let expected = t.preorder(a) < t.preorder(b);
                if self.doc_before(a, b) != expected {
                    return Err(format!("doc order disagrees at ({a}, {b})"));
                }
                let expected_anc = t.is_ancestor(b, a);
                if self.is_ancestor(b, a) != expected_anc {
                    return Err(format!("ancestor test disagrees at ({a}, {b})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_tree::EditKind;

    fn live(s: &str) -> LiveDoc {
        LiveDoc::new(Arc::new(Tree::from_terms(s).unwrap()))
    }

    #[test]
    fn fresh_doc_matches_tree_numbers() {
        let d = live("a(b(d,e),c(f(g),h))");
        d.check_against_tree().unwrap();
    }

    #[test]
    fn edits_keep_order_and_ancestors_consistent() {
        let mut d = live("a(b(d,e),c)");
        let sub = Tree::from_terms("x(y,z)").unwrap();
        let b = d.tree().nodes_with_label_str("b")[0];
        let delta = d.insert_subtree(b, 1, &sub).unwrap();
        assert_eq!(delta.kind, EditKind::Insert);
        d.check_against_tree().unwrap();

        let x = d.tree().nodes_with_label_str("x")[0];
        d.relabel(x, "w").unwrap();
        d.check_against_tree().unwrap();

        let w = d.tree().nodes_with_label_str("w")[0];
        let delta = d.delete_subtree(w).unwrap();
        assert_eq!(delta.kind, EditKind::Delete);
        d.check_against_tree().unwrap();
        assert_eq!(d.edit_count(), 3);
        assert_eq!(d.tree().to_terms(), "a(b(d,e),c)");
    }

    #[test]
    fn untouched_nodes_keep_their_tags_across_an_insert() {
        let mut d = live("a(b,c,d)");
        let before: Vec<u64> = (0..4)
            .map(|i| d.order.tag(d.slots[i].0))
            .collect();
        let sub = Tree::from_terms("x").unwrap();
        d.insert_subtree(d.tree().root(), 1, &sub).unwrap();
        // Old nodes a,b,c,d now have ids 0,1,3,4 — but identical tags.
        for (old, new) in [(0usize, 0usize), (1, 1), (2, 3), (3, 4)] {
            assert_eq!(d.order.tag(d.slots[new].0), before[old]);
        }
    }
}
